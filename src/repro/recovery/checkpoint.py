"""Checkpoint stores.

A checkpoint is a single JSON document capturing everything the
warehouse owns: view definitions and extents, the resolved-unit history
(installed and skipped), the UMQ contents (by reference, for
observability), the snapshot-cache entries with their version stamps,
and — crucially — ``journal_seq``, the last journal sequence number the
checkpoint subsumes.  Recovery loads the latest checkpoint and replays
only journal entries with ``seq > journal_seq``, which is what makes
replay idempotent when a crash lands anywhere inside the
save → truncate window.

Stores are pluggable like journal sinks: in-memory for tests, an
atomically-replaced JSON file for real durability.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Protocol


class CheckpointStore(Protocol):
    def save(self, state: dict) -> int:
        """Persist the checkpoint; returns the bytes written."""
        ...

    def load(self) -> dict | None:
        """The latest checkpoint, or None if none was ever taken."""
        ...


class MemoryCheckpointStore:
    """In-memory store; round-trips through JSON for strict isolation
    (a recovered run must not alias live Table objects)."""

    def __init__(self) -> None:
        self._state: str | None = None

    def save(self, state: dict) -> int:
        encoded = json.dumps(state, separators=(",", ":"), sort_keys=True)
        self._state = encoded
        return len(encoded.encode("utf-8"))

    def load(self) -> dict | None:
        if self._state is None:
            return None
        return json.loads(self._state)


class FileCheckpointStore:
    """Atomic single-file store: write to a temp file, then rename."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def save(self, state: dict) -> int:
        encoded = json.dumps(state, separators=(",", ":"), sort_keys=True)
        data = encoded.encode("utf-8")
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return len(data)

    def load(self) -> dict | None:
        if not self.path.exists():
            return None
        text = self.path.read_text(encoding="utf-8")
        if not text.strip():
            return None
        return json.loads(text)
