"""Write-ahead maintenance journal.

The :class:`MaintenanceJournal` registers as a UMQ mutation listener
(the PR 2 listener protocol) so every queue mutation — receive,
head/unit removal, front requeue, reorder/batch merge — lands in the
journal, and the managers call :meth:`record_install` *before* applying
a unit's effects to any extent (write-ahead rule) and
:meth:`record_skip` when a policy drops a unit.

Entries carry a monotone ``seq`` number that is never reset — not by
checkpoint truncation and not by recovery (the successor journal
continues from ``start_seq``).  Checkpoints remember the last journaled
``seq``; replay applies only entries newer than that, which makes replay
idempotent: a crash landing between checkpoint save and journal
truncation merely leaves stale entries that the seq filter skips.

Install entries also carry the **committed-update watermark**: for each
source, the largest ``n`` such that updates ``1..n`` are all resolved
(installed or skipped).  The watermark is monotone by construction and
is what bounds which snapshot-cache entries survive recovery.

Sinks are pluggable: :class:`MemoryJournalSink` for tests,
:class:`FileJournalSink` (append-only JSONL) for real durability.
Every append is charged to the cost model as *busy time only* — journal
writes never advance the virtual clock, so an armed journal does not
perturb the maintenance timeline it protects.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Protocol

from .codec import Ref, effect_to_json, refs_of


def _encode(entry: dict) -> str:
    return json.dumps(entry, separators=(",", ":"), sort_keys=True)


class JournalSink(Protocol):
    """Append-only storage for journal entries."""

    def append(self, entry: dict) -> int:
        """Persist one entry; returns the bytes written."""
        ...

    def entries(self) -> list[dict]:
        """All entries currently retained, in append order."""
        ...

    def truncate(self) -> None:
        """Drop all retained entries (called at checkpoint)."""
        ...


class MemoryJournalSink:
    """In-memory sink for tests; still accounts bytes like the file."""

    def __init__(self) -> None:
        self._entries: list[dict] = []

    def append(self, entry: dict) -> int:
        self._entries.append(entry)
        return len(_encode(entry).encode("utf-8")) + 1  # +1 newline

    def entries(self) -> list[dict]:
        return list(self._entries)

    def truncate(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class FileJournalSink:
    """Append-only JSONL file, fsync'd per entry for real durability."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists():
            self.path.touch()

    def append(self, entry: dict) -> int:
        line = _encode(entry) + "\n"
        data = line.encode("utf-8")
        with open(self.path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        return len(data)

    def entries(self) -> list[dict]:
        out = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    def truncate(self) -> None:
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_bytes(b"")
        os.replace(tmp, self.path)

    def __len__(self) -> int:
        return len(self.entries())


class MaintenanceJournal:
    """UMQ listener + install recorder writing through a sink.

    ``resolved`` seeds the per-source resolved-seqno sets (from the
    checkpoint this journal succeeds); the watermark advances over them.
    """

    def __init__(
        self,
        sink: JournalSink,
        engine,
        start_seq: int = 1,
        resolved: Iterable[Ref] = (),
    ):
        self.sink = sink
        self.engine = engine
        self.last_seq = start_seq - 1
        self.installs_since_checkpoint = 0
        self.installed_units_since: list[list[Ref]] = []
        self.skipped_units_since: list[list[Ref]] = []
        self._resolved: dict[str, set[int]] = {}
        self._watermark: dict[str, int] = {}
        for source, seqno in resolved:
            self._resolved.setdefault(source, set()).add(seqno)
        for source in self._resolved:
            self._advance_watermark(source)

    # ------------------------------------------------------------------
    # watermark
    # ------------------------------------------------------------------

    def _advance_watermark(self, source: str) -> None:
        seen = self._resolved.get(source, set())
        mark = self._watermark.get(source, 0)
        while mark + 1 in seen:
            mark += 1
        self._watermark[source] = mark

    def watermark(self) -> dict[str, int]:
        """Per-source contiguous committed-update prefix."""
        return dict(self._watermark)

    def _resolve(self, unit) -> None:
        for message in unit:
            self._resolved.setdefault(message.source, set()).add(
                message.seqno
            )
        for message in unit:
            self._advance_watermark(message.source)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _write(self, entry: dict) -> None:
        self.last_seq += 1
        entry["seq"] = self.last_seq
        written = self.sink.append(entry)
        metrics = self.engine.metrics
        metrics.journal_entries += 1
        metrics.journal_bytes += written
        # Busy time only: journalling must not move the virtual clock,
        # or an armed journal would change the maintenance timeline.
        metrics.charge(
            "journal", self.engine.cost_model.journal_append(written)
        )

    def record_install(self, unit, outcomes) -> None:
        """WAL entry for a unit install — written *before* any apply."""
        self._resolve(unit)
        self._write(
            {
                "kind": "install",
                "refs": refs_of(unit),
                "effects": [effect_to_json(outcome) for outcome in outcomes],
                "watermark": self.watermark(),
            }
        )
        self.installed_units_since.append(
            [(message.source, message.seqno) for message in unit]
        )
        self.installs_since_checkpoint += 1

    def record_skip(self, unit) -> None:
        """A policy dropped the unit (SKIP); resolves it like an install."""
        self._resolve(unit)
        self._write(
            {
                "kind": "skip",
                "refs": refs_of(unit),
                "watermark": self.watermark(),
            }
        )
        self.skipped_units_since.append(
            [(message.source, message.seqno) for message in unit]
        )
        self.installs_since_checkpoint += 1

    def roll_since(self) -> tuple[list[list[Ref]], list[list[Ref]]]:
        """Hand the since-checkpoint unit lists to the caller and reset."""
        installed = self.installed_units_since
        skipped = self.skipped_units_since
        self.installed_units_since = []
        self.skipped_units_since = []
        self.installs_since_checkpoint = 0
        return installed, skipped

    # ------------------------------------------------------------------
    # UMQ listener protocol (PR 2)
    # ------------------------------------------------------------------

    def umq_received(self, message) -> None:
        self._write(
            {"kind": "receive", "ref": [message.source, message.seqno]}
        )

    def umq_removed_head(self, unit) -> None:
        self._write({"kind": "remove", "refs": refs_of(unit)})

    def umq_removed_unit(self, unit, index: int) -> None:
        self._write(
            {"kind": "remove", "refs": refs_of(unit), "index": index}
        )

    def umq_requeued_front(self, unit) -> None:
        self._write({"kind": "requeue", "refs": refs_of(unit)})

    def umq_reordered(self, units) -> None:
        self._write(
            {"kind": "reorder", "units": [refs_of(unit) for unit in units]}
        )
