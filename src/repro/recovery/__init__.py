"""Crash recovery for the warehouse (durable journal + checkpoints).

The warehouse — UMQ, dependency substrate, materialized extents,
in-flight workers, snapshot cache — is volatile; the sources and their
update logs are not (they are autonomous systems of their own).  This
package makes the warehouse crash-recoverable:

* :mod:`.journal` — write-ahead maintenance journal (UMQ mutations,
  per-unit install commits, committed-update watermark) through
  pluggable sinks;
* :mod:`.checkpoint` — periodic snapshots of extents + UMQ + resolved
  history + cache stamps, with journal truncation;
* :mod:`.crash` — seeded crash plans killing the scheduler at named
  points woven through the maintenance loops;
* :mod:`.recover` — :func:`~repro.recovery.recover.simulate_crash` and
  :func:`~repro.recovery.recover.recover`, with idempotent replay so a
  crash during recovery is also safe.
"""

from .checkpoint import (
    CheckpointStore,
    FileCheckpointStore,
    MemoryCheckpointStore,
)
from .codec import (
    definition_from_json,
    definition_to_json,
    delta_from_json,
    delta_to_json,
    table_from_json,
    table_to_json,
)
from .crash import CRASH_POINTS, CrashInjector, CrashPlan, SchedulerCrash
from .journal import (
    FileJournalSink,
    JournalSink,
    MaintenanceJournal,
    MemoryJournalSink,
)
from .recover import (
    RecoveredWarehouse,
    RecoveryError,
    RecoveryHarness,
    RecoveryReport,
    recover,
    simulate_crash,
)

__all__ = [
    "CRASH_POINTS",
    "CheckpointStore",
    "CrashInjector",
    "CrashPlan",
    "FileCheckpointStore",
    "FileJournalSink",
    "JournalSink",
    "MaintenanceJournal",
    "MemoryCheckpointStore",
    "MemoryJournalSink",
    "RecoveredWarehouse",
    "RecoveryError",
    "RecoveryHarness",
    "RecoveryReport",
    "SchedulerCrash",
    "definition_from_json",
    "definition_to_json",
    "delta_from_json",
    "delta_to_json",
    "recover",
    "simulate_crash",
    "table_from_json",
    "table_to_json",
]
