"""Warehouse crash injection.

The scheduler calls :meth:`SimEngine.crash_point` at named points woven
through the serial step loop, the parallel dispatch/commit-drain, the
manager's install path, and the checkpoint/replay machinery.  A
:class:`CrashInjector` armed with a seeded :class:`CrashPlan` counts the
hits on its target point and, on the configured occurrence, raises
:class:`SchedulerCrash` — killing the warehouse mid-flight exactly
there.  With no injector installed every crash point is a no-op.

A crash kills *only the warehouse*: the virtual clock, the sources and
their update logs, and the scheduled workload commits all survive (see
:func:`repro.recovery.recover.simulate_crash`).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

#: Every named crash point, in rough execution order.  The property
#: tests sweep this tuple exhaustively; adding a point to the code
#: without registering it here would silently shrink the sweep.
CRASH_POINTS: tuple[str, ...] = (
    # serial scheduler step
    "serial.pre_detect",
    "serial.pre_maintain",
    "serial.pre_commit",
    "serial.post_commit",
    # manager install (serial + parallel, single- and multi-view)
    "install.pre_journal",
    "install.post_journal",
    "install.post_apply",
    # parallel scheduler dispatch / commit drain
    "parallel.pre_dispatch",
    "parallel.post_dispatch",
    "parallel.pre_install",
    "parallel.post_install",
    # checkpointing
    "checkpoint.pre",
    "checkpoint.mid",
    "checkpoint.post",
    # recovery replay (a crash *during recovery* must also be safe)
    "recover.replay",
)


class SchedulerCrash(Exception):
    """The warehouse process died at a crash point.

    Deliberately not a :class:`SourceError` subclass: the maintenance
    machinery catches broken-query and availability errors, and a crash
    must tear straight through all of it to the run loop.
    """

    def __init__(self, point: str, hit: int, at: float):
        super().__init__(f"warehouse crashed at {point} (hit {hit}, t={at:g})")
        self.point = point
        self.hit = hit
        self.at = at


@dataclass(frozen=True)
class CrashPlan:
    """Kill the scheduler on the ``hit``-th arrival at ``point``."""

    point: str
    hit: int = 1

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {self.point!r}")
        if self.hit < 1:
            raise ValueError("hit must be >= 1")

    @classmethod
    def random(
        cls,
        seed: int,
        points: tuple[str, ...] = CRASH_POINTS,
        max_hit: int = 3,
    ) -> "CrashPlan":
        """A seeded plan; the same seed reproduces the same plan."""
        rng = random.Random(seed)
        return cls(rng.choice(list(points)), rng.randint(1, max_hit))

    def describe(self) -> str:
        return f"crash@{self.point}#{self.hit}"


class CrashInjector:
    """Counts crash-point hits and fires the plan exactly once.

    After firing the injector disarms itself so recovery and the resumed
    run are not re-killed; :meth:`arm` re-arms it with a fresh plan (the
    crash-during-replay tests use this to kill recovery itself).
    """

    def __init__(self, plan: CrashPlan | None):
        self.plan = plan
        self.counts: Counter[str] = Counter()
        self.fired: SchedulerCrash | None = None
        self.armed = plan is not None

    def arm(self, plan: CrashPlan) -> None:
        """Re-arm with a fresh plan and a fresh hit count."""
        self.plan = plan
        self.counts = Counter()
        self.fired = None
        self.armed = True

    def on_point(self, name: str, now: float) -> None:
        self.counts[name] += 1
        if not self.armed or self.plan is None or name != self.plan.point:
            return
        if self.counts[name] == self.plan.hit:
            self.armed = False
            self.fired = SchedulerCrash(name, self.plan.hit, now)
            raise self.fired
