"""Crash simulation, the recovery harness, and ``recover()``.

Crash model
-----------

Only the *warehouse* dies.  The engine world — virtual clock, sources
with their full update logs, scheduled workload commits, fault
machinery — survives.  :func:`simulate_crash` models the death: it
purges every warehouse-owned event from the engine queue (in-flight
wrapper deliveries, worker resumptions, round trips), severs all source
subscriptions (the dead warehouse's wrappers), and drops the volatile
snapshot cache.  What remains durable is exactly the journal sink and
the checkpoint store.

Recovery
--------

:func:`recover` rebuilds a live warehouse from durable state:

1. load the latest checkpoint; replay journal entries with
   ``seq > checkpoint.journal_seq`` over its view extents (write-ahead
   install entries carry the per-view effects);
2. the union of checkpointed + replayed install/skip refs is the
   **resolved set**; every source-log message outside it is re-enqueued
   (covering units lost from the UMQ, units orphaned on dead workers,
   and deliveries purged in flight) — correction re-derives any legal
   order, so re-enqueueing sorted by commit time is sound (Theorem 2);
3. schema history is re-derived from the resolved install units' own
   messages (the logs survive), so translation of old pending updates
   behaves exactly as live;
4. snapshot-cache entries are restored only up to the committed-update
   watermark; anything newer is invalidated;
5. a fresh scheduler + journal + checkpoint are installed; the recovery
   checkpoint truncates the journal.

Replay mutates nothing durable until that final checkpoint, and the
``seq`` filter makes re-replay a no-op — so a crash *during* recovery
(injected at ``recover.replay`` or the checkpoint points) is handled by
simply crashing the half-built warehouse and running ``recover`` again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .checkpoint import CheckpointStore
from .codec import (
    Ref,
    definition_from_json,
    definition_to_json,
    delta_from_json,
    table_from_json,
    table_to_json,
)
from .crash import SchedulerCrash  # noqa: F401  (re-export convenience)
from .journal import JournalSink, MaintenanceJournal


class RecoveryError(Exception):
    """Recovery is impossible (e.g. no checkpoint was ever taken)."""


def simulate_crash(engine) -> int:
    """Kill the warehouse: purge its events, subscriptions, and cache.

    Idempotent — crashing an already-dead warehouse changes nothing.
    Returns the number of purged in-flight events.
    """
    from ..sim.engine import WAREHOUSE_OWNER

    purged = engine.purge_owned_events(WAREHOUSE_OWNER)
    for source in engine.sources.values():
        source.clear_subscribers()
    if engine.snapshot_cache is not None:
        engine.snapshot_cache.clear()
    if engine.selfmaint is not None:
        engine.selfmaint.clear()
    return purged


def _contiguous_watermark(resolved: set[Ref], sources) -> dict[str, int]:
    """Largest per-source n with 1..n all resolved."""
    by_source: dict[str, set[int]] = {}
    for source, seqno in resolved:
        by_source.setdefault(source, set()).add(seqno)
    marks = {}
    for name in sources:
        seen = by_source.get(name, set())
        mark = 0
        while mark + 1 in seen:
            mark += 1
        marks[name] = mark
    return marks


@dataclass
class RecoveryReport:
    """What one ``recover()`` call did."""

    at: float
    crash_point: str | None
    checkpoint_seq: int
    replayed_entries: int
    replayed_installs: int
    replayed_skips: int
    reenqueued: int
    cache_restored: int
    cache_dropped: int
    watermark: dict[str, int] = field(default_factory=dict)
    #: auxiliary self-maintenance replicas restored / dropped (stamped
    #: past the committed watermark) at recovery
    aux_restored: int = 0
    aux_dropped: int = 0

    def describe(self) -> str:
        return (
            f"recovered@{self.at:g} from ckpt#{self.checkpoint_seq} "
            f"(+{self.replayed_installs} installs, "
            f"+{self.replayed_skips} skips replayed, "
            f"{self.reenqueued} re-enqueued)"
        )


@dataclass
class RecoveredWarehouse:
    """The live replacement stack handed back by ``recover()``."""

    manager: object
    scheduler: object
    harness: "RecoveryHarness"
    report: RecoveryReport


class RecoveryHarness:
    """Owns the journal + checkpoint lifecycle for one warehouse epoch.

    One harness serves one (manager, scheduler) incarnation; each
    ``recover()`` builds a successor harness whose journal continues the
    sequence numbering and whose base unit lists accumulate everything
    resolved in previous epochs.
    """

    def __init__(
        self,
        engine,
        manager,
        scheduler,
        sink: JournalSink,
        store: CheckpointStore,
        *,
        checkpoint_every: int = 8,
        strategy=None,
        parallel_workers: int | None = None,
        batch_policy=None,
        mkb=None,
        start_seq: int = 1,
        base_installed_units: list[list[Ref]] | None = None,
        base_skipped_units: list[list[Ref]] | None = None,
    ):
        self.engine = engine
        self.manager = manager
        self.scheduler = scheduler
        self.sink = sink
        self.store = store
        self.checkpoint_every = checkpoint_every
        self.strategy = strategy
        self.parallel_workers = parallel_workers
        self.batch_policy = batch_policy
        self.mkb = mkb
        self.base_installed_units = list(base_installed_units or [])
        self.base_skipped_units = list(base_skipped_units or [])
        resolved = [
            ref
            for unit in self.base_installed_units + self.base_skipped_units
            for ref in unit
        ]
        self.journal = MaintenanceJournal(
            sink, engine, start_seq=start_seq, resolved=resolved
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attach(self, force_checkpoint: bool = False) -> None:
        """Wire the journal into the live stack.

        Writes a genesis checkpoint if the store is empty (so recovery
        is possible from the very first crash), or unconditionally when
        ``force_checkpoint`` (the recovery checkpoint, which truncates
        the replayed journal)."""
        self.manager.umq.add_listener(self.journal)
        self.manager.journal = self.journal
        self.scheduler.recovery = self
        if force_checkpoint or self.store.load() is None:
            self.checkpoint()

    def detach(self) -> None:
        self.manager.umq.remove_listener(self.journal)
        self.manager.journal = None
        self.scheduler.recovery = None

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def _managers(self) -> list:
        return getattr(self.manager, "managers", None) or [self.manager]

    def installed_refs(self) -> frozenset[Ref]:
        """Every (source, seqno) installed across all epochs so far."""
        units = self.base_installed_units + self.journal.installed_units_since
        return frozenset(ref for unit in units for ref in unit)

    def skipped_refs(self) -> frozenset[Ref]:
        units = self.base_skipped_units + self.journal.skipped_units_since
        return frozenset(ref for unit in units for ref in unit)

    def maybe_checkpoint(self) -> None:
        if self.journal.installs_since_checkpoint >= self.checkpoint_every:
            self.checkpoint()

    def _build_state(self) -> tuple[dict, int]:
        """The checkpoint document and its billable tuple count."""
        views = []
        tuples = 0
        for manager in self._managers():
            views.append(
                {
                    "definition": definition_to_json(manager.view),
                    "extent": table_to_json(manager.mv.extent),
                }
            )
            tuples += len(manager.mv.extent)
        cache = []
        if self.engine.snapshot_cache is not None:
            for entry in self.engine.snapshot_cache.export_entries():
                source, key, version, table = entry
                cache.append([source, key, version, table_to_json(table)])
                tuples += len(table)
        aux = []
        if self.engine.selfmaint is not None:
            for entry in self.engine.selfmaint.export_entries():
                source, relation, version, columns, table = entry
                aux.append(
                    [source, relation, version, list(columns),
                     table_to_json(table)]
                )
                tuples += len(table)
        installed = (
            self.base_installed_units + self.journal.installed_units_since
        )
        skipped = self.base_skipped_units + self.journal.skipped_units_since
        state = {
            "journal_seq": self.journal.last_seq,
            "at": self.engine.clock.now,
            "multi": len(self._managers()) > 1
            or hasattr(self.manager, "managers"),
            "views": views,
            "installed_units": [
                [list(ref) for ref in unit] for unit in installed
            ],
            "skipped_units": [
                [list(ref) for ref in unit] for unit in skipped
            ],
            "umq": [
                [[m.source, m.seqno] for m in unit.messages]
                for unit in self.manager.umq.units
            ],
            "cache": cache,
            "aux": aux,
        }
        return state, tuples

    def checkpoint(self) -> None:
        """Snapshot durable state, then truncate the journal.

        Crash-window analysis: a crash before ``save`` loses nothing; a
        crash between ``save`` and ``truncate`` leaves stale journal
        entries whose ``seq <= journal_seq`` replay skips; a crash after
        ``truncate`` is a clean checkpoint."""
        engine = self.engine
        engine.crash_point("checkpoint.pre")
        state, tuples = self._build_state()
        self.store.save(state)
        engine.crash_point("checkpoint.mid")
        self.sink.truncate()
        installed, skipped = self.journal.roll_since()
        self.base_installed_units.extend(installed)
        self.base_skipped_units.extend(skipped)
        engine.metrics.checkpoints_taken += 1
        engine.metrics.charge(
            "checkpoint", engine.cost_model.checkpoint(tuples)
        )
        engine.crash_point("checkpoint.post")

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self) -> RecoveredWarehouse:
        return recover(self)


def recover(harness: RecoveryHarness) -> RecoveredWarehouse:
    """Rebuild a live warehouse from checkpoint + journal replay."""
    from ..core.parallel import ParallelScheduler
    from ..core.scheduler import DynoScheduler
    from ..core.strategies import PESSIMISTIC
    from ..maintenance.batch import combine_schema_changes, schema_changes_of
    from ..views.manager import ViewManager
    from ..views.multi import MultiViewManager
    from ..views.umq import MaintenanceUnit

    engine = harness.engine
    state = harness.store.load()
    if state is None:
        raise RecoveryError("no checkpoint to recover from")

    # ------------------------------------------------------------- replay
    base_seq = state["journal_seq"]
    all_entries = harness.sink.entries()
    max_seq = max([base_seq] + [entry["seq"] for entry in all_entries])
    fresh = [entry for entry in all_entries if entry["seq"] > base_seq]

    view_states = [
        [definition_from_json(v["definition"]), table_from_json(v["extent"])]
        for v in state["views"]
    ]
    installed_units: list[list[Ref]] = [
        [tuple(ref) for ref in unit] for unit in state["installed_units"]
    ]
    skipped_units: list[list[Ref]] = [
        [tuple(ref) for ref in unit] for unit in state["skipped_units"]
    ]
    replayed_installs = replayed_skips = 0
    for entry in fresh:
        kind = entry["kind"]
        if kind not in ("install", "skip"):
            continue
        engine.crash_point("recover.replay")
        refs = [tuple(ref) for ref in entry["refs"]]
        if kind == "install":
            for view_state, effect in zip(view_states, entry["effects"]):
                if effect["kind"] == "replace":
                    view_state[0] = definition_from_json(
                        effect["definition"]
                    )
                    view_state[1] = table_from_json(effect["extent"])
                elif effect["kind"] == "delta":
                    view_state[1].apply_delta(
                        delta_from_json(effect["delta"])
                    )
            installed_units.append(refs)
            replayed_installs += 1
        else:
            skipped_units.append(refs)
            replayed_skips += 1

    metrics = engine.metrics
    metrics.recoveries += 1
    metrics.replayed_entries += len(fresh)
    metrics.charge("replay", engine.cost_model.replay(len(fresh)))

    resolved: set[Ref] = {
        ref for unit in installed_units for ref in unit
    } | {ref for unit in skipped_units for ref in unit}

    # ------------------------------------------------- rebuild warehouse
    definitions = [vs[0] for vs in view_states]
    extents = [vs[1] for vs in view_states]
    if state["multi"]:
        manager = MultiViewManager(
            engine,
            definitions,
            mkb=harness.mkb,
            initial_extents={
                definition.name: extent
                for definition, extent in zip(definitions, extents)
            },
        )
    else:
        manager = ViewManager(
            engine,
            definitions[0],
            mkb=harness.mkb,
            initial_extent=extents[0],
        )
    managers = getattr(manager, "managers", None) or [manager]

    # Schema lineage: re-derive each installed unit's combined changes
    # from its own messages (still in the surviving source logs) — the
    # identical pure computation the live install ran.
    for unit_refs in installed_units:
        messages = [
            engine.sources[source].log[seqno - 1]
            for source, seqno in unit_refs
        ]
        unit = MaintenanceUnit(list(messages))
        if not unit.has_schema_change:
            continue
        combined = combine_schema_changes(schema_changes_of(unit))
        for view_manager in managers:
            for source, change in combined:
                view_manager.schema_history.record(source, change)

    # Re-enqueue everything unresolved, in commit order: lost UMQ units,
    # units orphaned on dead workers, deliveries purged in flight.
    pending = [
        message
        for source in engine.sources.values()
        for message in source.log
        if (message.source, message.seqno) not in resolved
    ]
    pending.sort(key=lambda m: (m.committed_at, m.seqno, m.source))
    for message in pending:
        manager.umq.receive(message)

    # Snapshot cache: only entries at or below the committed watermark
    # survive; newer stamps may outrun what the recovered warehouse has
    # maintained, so they are invalidated.
    watermark = _contiguous_watermark(resolved, engine.sources)
    cache_restored = cache_dropped = 0
    if engine.snapshot_cache is not None and state.get("cache"):
        keep = []
        for source, key, version, table_json in state["cache"]:
            if version <= watermark.get(source, 0):
                keep.append(
                    (source, key, version, table_from_json(table_json))
                )
                cache_restored += 1
            else:
                cache_dropped += 1
        engine.snapshot_cache.restore_entries(keep)

    # Auxiliary self-maintenance replicas: same watermark rule as the
    # cache.  Requirements are re-registered from the *recovered* view
    # definitions first, so restore_entries drops any replica whose
    # columns no longer cover the (possibly rewritten) view's needs.
    aux_restored = aux_dropped = 0
    if engine.selfmaint is not None:
        for view_manager in managers:
            engine.selfmaint.register_view(view_manager.view.query)
        keep = []
        for source, relation, version, columns, table_json in state.get(
            "aux", []
        ):
            if version <= watermark.get(source, 0):
                keep.append(
                    (
                        source,
                        relation,
                        version,
                        tuple(columns),
                        table_from_json(table_json),
                    )
                )
            else:
                aux_dropped += 1
        aux_restored = engine.selfmaint.restore_entries(keep)
        aux_dropped += len(keep) - aux_restored

    strategy = harness.strategy or PESSIMISTIC
    if harness.parallel_workers:
        scheduler = ParallelScheduler(
            manager,
            strategy,
            workers=harness.parallel_workers,
            batch_policy=harness.batch_policy,
        )
    else:
        scheduler = DynoScheduler(
            manager, strategy, batch_policy=harness.batch_policy
        )

    successor = RecoveryHarness(
        engine,
        manager,
        scheduler,
        harness.sink,
        harness.store,
        checkpoint_every=harness.checkpoint_every,
        strategy=harness.strategy,
        parallel_workers=harness.parallel_workers,
        batch_policy=harness.batch_policy,
        mkb=harness.mkb,
        start_seq=max_seq + 1,
        base_installed_units=installed_units,
        base_skipped_units=skipped_units,
    )
    # The recovery checkpoint: persists the rebuilt state and truncates
    # the replayed journal.  Crash points inside fire like any other —
    # a crash here is recovered by running recover() again.
    successor.attach(force_checkpoint=True)

    injector = engine.crash_injector
    crash_point = (
        injector.fired.point
        if injector is not None and injector.fired is not None
        else None
    )
    report = RecoveryReport(
        at=engine.clock.now,
        crash_point=crash_point,
        checkpoint_seq=base_seq,
        replayed_entries=len(fresh),
        replayed_installs=replayed_installs,
        replayed_skips=replayed_skips,
        reenqueued=len(pending),
        cache_restored=cache_restored,
        cache_dropped=cache_dropped,
        watermark=watermark,
        aux_restored=aux_restored,
        aux_dropped=aux_dropped,
    )
    return RecoveredWarehouse(manager, scheduler, successor, report)
