"""JSON codecs for durable maintenance state.

Everything the journal and the checkpoints persist is encoded through
these helpers into plain JSON values (lists, dicts, scalars) so the same
record survives the in-memory sinks used by tests and the append-only
JSONL / checkpoint files used for real durability.

Design notes:

* tables and deltas serialize as ``[row-as-list, count]`` pairs — bag
  semantics with signed counts round-trips exactly (Python's ``json``
  emits ``repr``-faithful floats, so float attributes survive);
* view definitions serialize as *sourced* SQL text (``source.Relation
  alias`` FROM items — the rendering the parser consumes; the AST's own
  ``sql()`` drops source qualifiers for single-engine execution) plus
  the version counter; :func:`~repro.relational.sql.parse_view` is the
  decoder, and the roundtrip is pinned by the repo's SQL-roundtrip
  property tests;
* update messages are persisted *by reference* — ``[source, seqno]`` —
  because source logs survive a warehouse crash (only the warehouse
  dies); replay re-reads the message from ``source.log[seqno - 1]``.
"""

from __future__ import annotations

from ..relational.delta import Delta
from ..relational.predicate import TRUE
from ..relational.query import SPJQuery
from ..relational.schema import RelationSchema
from ..relational.table import Table
from ..relational.types import AttributeType
from ..relational.sql import parse_view
from ..views.definition import ViewDefinition

Ref = tuple[str, int]


# ----------------------------------------------------------------------
# message references
# ----------------------------------------------------------------------


def ref_of(message) -> list:
    """``(source, seqno)`` — enough to re-read the message from the log."""
    return [message.source, message.seqno]


def refs_of(unit) -> list[list]:
    return [ref_of(message) for message in unit]


def decode_refs(data: list) -> list[Ref]:
    return [(source, seqno) for source, seqno in data]


# ----------------------------------------------------------------------
# schemas / tables / deltas
# ----------------------------------------------------------------------


def schema_to_json(schema: RelationSchema) -> dict:
    return {
        "name": schema.name,
        "attributes": [
            [attribute.name, attribute.type.value]
            for attribute in schema.attributes
        ],
    }


def schema_from_json(data: dict) -> RelationSchema:
    return RelationSchema.of(
        data["name"],
        [(name, AttributeType(kind)) for name, kind in data["attributes"]],
    )


def table_to_json(table: Table) -> dict:
    return {
        "schema": schema_to_json(table.schema),
        "rows": [[list(row), count] for row, count in table.items()],
    }


def table_from_json(data: dict) -> Table:
    table = Table(schema_from_json(data["schema"]))
    for row, count in data["rows"]:
        table.insert(tuple(row), count)
    return table


def delta_to_json(delta: Delta) -> dict:
    return {
        "schema": schema_to_json(delta.schema),
        "rows": [[list(row), count] for row, count in delta.items()],
    }


def delta_from_json(data: dict) -> Delta:
    delta = Delta(schema_from_json(data["schema"]))
    for row, count in data["rows"]:
        delta.add(tuple(row), count)
    return delta


# ----------------------------------------------------------------------
# view definitions
# ----------------------------------------------------------------------


def sourced_sql(query: SPJQuery) -> str:
    """Render with ``source.Relation alias`` FROM items.

    ``SPJQuery.sql()`` drops the source qualifier (it renders plain SQL
    for a single engine, e.g. the SQLite backend), which the distributed
    grammar of :func:`parse_query` cannot re-read; this rendering is the
    parseable one.
    """
    select = ", ".join(ref.qualified() for ref in query.projection)
    from_clause = ", ".join(
        f"{ref.source}.{ref.relation} {ref.alias}"
        for ref in query.relations
    )
    terms = [join.sql() for join in query.joins]
    if query.selection is not TRUE:
        terms.append(query.selection.sql())
    sql = f"SELECT {select} FROM {from_clause}"
    if terms:
        sql += " WHERE " + " AND ".join(terms)
    return sql


def definition_to_json(definition: ViewDefinition) -> dict:
    return {
        "sql": (
            f"CREATE VIEW {definition.name} AS "
            f"{sourced_sql(definition.query)}"
        ),
        "version": definition.version,
    }


def definition_from_json(data: dict) -> ViewDefinition:
    name, query = parse_view(data["sql"])
    return ViewDefinition(name, query, version=data["version"])


# ----------------------------------------------------------------------
# install effects (the journal's WAL payload per view)
# ----------------------------------------------------------------------


def effect_to_json(outcome) -> dict:
    """Serialize one view's :class:`MaintenanceOutcome` effect.

    Exactly mirrors ``ViewManager.apply_outcome``'s three shapes:
    definition+extent replace, delta refresh, or no effect.  The
    schema-change lineage is *not* serialized — replay re-derives it
    from the unit's messages (still in the surviving source logs), which
    is the same pure ``combine_schema_changes`` computation the live
    install ran.
    """
    if outcome.extent is not None and outcome.definition is not None:
        return {
            "kind": "replace",
            "definition": definition_to_json(outcome.definition),
            "extent": table_to_json(outcome.extent),
        }
    if outcome.delta is not None and not outcome.delta.is_empty():
        return {"kind": "delta", "delta": delta_to_json(outcome.delta)}
    return {"kind": "noop"}
