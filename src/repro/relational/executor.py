"""Bag-semantics evaluator for SPJ queries.

The executor joins bound tables with hash joins, pushing single-relation
selection conjuncts down to the scans, and produces a counted result: a
row that can be derived in *k* ways appears with multiplicity *k*.
Multiplicities are what make incremental maintenance correct under
duplicates (Griffin & Libkin).

The executor is deliberately independent of *where* tables come from: the
view manager binds some aliases to source query answers and some to
deltas, then evaluates locally.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .delta import Row
from .errors import AmbiguousAttributeError, QueryError, UnknownAttributeError
from .predicate import (
    TRUE,
    AttrRef,
    Conjunction,
    InPredicate,
    Predicate,
    conjunction,
)
from .query import JoinCondition, SPJQuery
from .schema import Attribute, RelationSchema
from .table import Table


@dataclass
class _Intermediate:
    """A partially joined result: column layout plus counted rows."""

    columns: list[AttrRef]
    rows: Counter
    #: lazy memo: attribute name -> every column position carrying it
    #: (unqualified-ref resolution used to re-scan ``columns`` per call)
    _by_name: dict[str, list[int]] | None = None
    #: lazy memo: qualified column -> position (``columns.index`` is an
    #: O(columns) linear scan per reference otherwise)
    _positions: dict[AttrRef, int] | None = None

    def positions_by_name(self) -> dict[str, list[int]]:
        if self._by_name is None:
            by_name: dict[str, list[int]] = {}
            for index, column in enumerate(self.columns):
                by_name.setdefault(column.name, []).append(index)
            self._by_name = by_name
        return self._by_name

    def index_of(self, ref: AttrRef) -> int:
        if ref.relation is None:
            matches = self.positions_by_name().get(ref.name, ())
            if not matches:
                raise UnknownAttributeError(ref.name)
            if len(matches) > 1:
                raise AmbiguousAttributeError(
                    f"attribute {ref.name!r} is ambiguous"
                )
            return matches[0]
        if self._positions is None:
            self._positions = {
                column: index
                for index, column in enumerate(self.columns)
            }
        position = self._positions.get(ref)
        if position is None:
            raise UnknownAttributeError(ref.name, ref.relation)
        return position


def _single_alias_conjuncts(
    selection: Predicate,
) -> tuple[dict[str, list[Predicate]], list[Predicate]]:
    """Split a selection into per-alias pushdown terms and residual terms."""
    conjuncts: list[Predicate]
    if isinstance(selection, Conjunction):
        conjuncts = list(selection.children)
    elif selection is TRUE:
        conjuncts = []
    else:
        conjuncts = [selection]

    pushdown: dict[str, list[Predicate]] = {}
    residual: list[Predicate] = []
    for term in conjuncts:
        aliases = {ref.relation for ref in term.references()}
        if len(aliases) == 1 and None not in aliases:
            pushdown.setdefault(next(iter(aliases)), []).append(term)
        else:
            residual.append(term)
    return pushdown, residual


def _scan(
    alias: str,
    table: Table,
    predicates: list[Predicate],
) -> _Intermediate:
    """Scan one table, applying pushed-down selection conjuncts.

    When one of the conjuncts is a small IN-list on an attribute, the
    table's hash index answers it directly and the remaining conjuncts
    filter only the candidates — the indexed-probe fast path that makes
    maintenance queries cheap on large relations.
    """
    columns = [
        AttrRef(alias, attribute.name) for attribute in table.schema
    ]
    predicate = conjunction(predicates)
    positions = {column: index for index, column in enumerate(columns)}

    probe = _pick_probe(table, alias, predicates)
    if probe is not None:
        attribute_name, values = probe
        rows: Counter = Counter()
        for row, count in table.probe(attribute_name, values):
            if predicate is TRUE or predicate.evaluate(
                _row_binding(row, positions)
            ):
                rows[row] += count
        return _Intermediate(columns, rows)

    def binding_for(row: Row):
        def binding(ref: AttrRef):
            if ref.relation is None:
                candidates = [
                    index
                    for column, index in positions.items()
                    if column.name == ref.name
                ]
                if len(candidates) != 1:
                    raise AmbiguousAttributeError(ref.name)
                return row[candidates[0]]
            index = positions.get(ref)
            if index is None:
                raise UnknownAttributeError(ref.name, ref.relation)
            return row[index]

        return binding

    rows: Counter = Counter()
    for row, count in table.items():
        if predicate is TRUE or predicate.evaluate(binding_for(row)):
            rows[row] += count
    return _Intermediate(columns, rows)


def _pick_probe(
    table: Table,
    alias: str,
    predicates: list[Predicate],
) -> tuple[str, frozenset] | None:
    """Choose the most selective usable IN-list, if probing pays off."""
    best: tuple[str, frozenset] | None = None
    for predicate in predicates:
        if not isinstance(predicate, InPredicate):
            continue
        ref = predicate.attr
        if ref.relation not in (None, alias):
            continue
        if ref.name not in table.schema:
            continue
        if best is None or len(predicate.values) < len(best[1]):
            best = (ref.name, predicate.values)
    if best is None:
        return None
    # Probing only pays when the IN-list is much smaller than the table
    # (index maintenance is charged to mutations either way).
    if len(best[1]) * 4 >= max(table.distinct_count(), 1):
        return None
    return best


def _row_binding(row: Row, positions: dict[AttrRef, int]):
    def binding(ref: AttrRef):
        if ref.relation is None:
            candidates = [
                index
                for column, index in positions.items()
                if column.name == ref.name
            ]
            if len(candidates) != 1:
                raise AmbiguousAttributeError(ref.name)
            return row[candidates[0]]
        index = positions.get(ref)
        if index is None:
            raise UnknownAttributeError(ref.name, ref.relation)
        return row[index]

    return binding


def _hash_join(
    left: _Intermediate,
    right: _Intermediate,
    conditions: list[JoinCondition],
) -> _Intermediate:
    """Equi-join two intermediates on the given conditions.

    With no conditions this degrades to a bag cartesian product.
    """
    left_aliases = {column.relation for column in left.columns}
    left_keys: list[int] = []
    right_keys: list[int] = []
    for condition in conditions:
        if condition.left.relation in left_aliases:
            left_ref, right_ref = condition.left, condition.right
        else:
            left_ref, right_ref = condition.right, condition.left
        left_keys.append(left.index_of(left_ref))
        right_keys.append(right.index_of(right_ref))

    columns = left.columns + right.columns
    joined: Counter = Counter()
    if not conditions:
        for left_row, left_count in left.rows.items():
            for right_row, right_count in right.rows.items():
                joined[left_row + right_row] += left_count * right_count
        return _Intermediate(columns, joined)

    index: dict[tuple, list[tuple[Row, int]]] = {}
    for right_row, right_count in right.rows.items():
        key = tuple(right_row[position] for position in right_keys)
        index.setdefault(key, []).append((right_row, right_count))

    for left_row, left_count in left.rows.items():
        key = tuple(left_row[position] for position in left_keys)
        for right_row, right_count in index.get(key, ()):
            joined[left_row + right_row] += left_count * right_count
    return _Intermediate(columns, joined)


def _result_schema(
    query: SPJQuery,
    schemas: dict[str, RelationSchema],
    projection_columns: list[AttrRef],
) -> RelationSchema:
    """Derive the output schema, qualifying names only on collision."""
    names = [column.name for column in projection_columns]
    attributes: list[Attribute] = []
    used: set[str] = set()
    for column in projection_columns:
        schema = schemas[column.relation]  # resolved refs are qualified
        attribute = schema.attribute(column.name)
        if names.count(column.name) > 1:
            attribute = attribute.renamed(f"{column.relation}_{column.name}")
        if attribute.name in used:
            suffix = 2
            while f"{attribute.name}_{suffix}" in used:
                suffix += 1
            attribute = attribute.renamed(f"{attribute.name}_{suffix}")
        used.add(attribute.name)
        attributes.append(attribute)
    return RelationSchema("result", tuple(attributes))


def execute(query: SPJQuery, tables: dict[str, Table]) -> Table:
    """Evaluate ``query`` with each alias bound to a table.

    Dispatches to the active executor: the compiled/columnar kernel
    (:mod:`repro.relational.plan`, the default) or this module's naive
    row-at-a-time evaluator (:func:`execute_naive`, the semantic
    oracle).  Both raise identical schema errors and return identical
    bags — proven by ``tests/property/test_executor_equivalence.py``.
    """
    if _executor_mode == "compiled":
        from .plan import execute_compiled

        return execute_compiled(query, tables)
    return execute_naive(query, tables)


_executor_mode = "compiled"


def set_executor_mode(mode: str) -> None:
    """Select the evaluator behind :func:`execute`.

    ``"compiled"`` (default) uses the plan-compiling columnar kernel;
    ``"naive"`` the original row-at-a-time evaluator.  Virtual-clock
    costs are charged by the simulation layer from the cost model, so
    the mode can never perturb simulated results — only wall time.
    """
    global _executor_mode
    if mode not in ("compiled", "naive"):
        raise ValueError(f"unknown executor mode {mode!r}")
    _executor_mode = mode


def executor_mode() -> str:
    return _executor_mode


def execute_naive(query: SPJQuery, tables: dict[str, Table]) -> Table:
    """The reference evaluator: straightforward, per-row, uncompiled.

    Kept verbatim as the oracle the compiled kernel is proven against.
    Raises :class:`UnknownAttributeError` /
    :class:`~repro.relational.errors.UnknownRelationError`-style schema
    errors when the bound tables no longer provide what the query asks
    for — the engine-level manifestation of a broken query.
    """
    for ref in query.relations:
        if ref.alias not in tables:
            raise QueryError(f"alias {ref.alias!r} not bound to a table")

    pushdown, residual = _single_alias_conjuncts(query.selection)

    # Greedy connected join order: start from the first relation, always
    # fold in a relation reachable via a join condition when one exists.
    remaining = list(query.aliases)
    current_alias = remaining.pop(0)
    intermediate = _scan(
        current_alias,
        tables[current_alias],
        pushdown.get(current_alias, []),
    )
    joined_aliases = {current_alias}
    pending_joins = list(query.joins)

    while remaining:
        applicable: list[JoinCondition] = []
        chosen: str | None = None
        for alias in remaining:
            applicable = [
                join
                for join in pending_joins
                if join.touches(alias)
                and join.other_side(alias).relation in joined_aliases
            ]
            if applicable:
                chosen = alias
                break
        if chosen is None:
            chosen = remaining[0]
            applicable = []
        remaining.remove(chosen)
        right = _scan(chosen, tables[chosen], pushdown.get(chosen, []))
        intermediate = _hash_join(intermediate, right, applicable)
        joined_aliases.add(chosen)
        for join in applicable:
            pending_joins.remove(join)

    # Residual join conditions (e.g. cycles in the join graph) and
    # multi-relation selection terms are applied as filters.
    filters: list[Predicate] = residual + [
        _join_as_predicate(join) for join in pending_joins
    ]
    predicate = conjunction(filters)
    if predicate is not TRUE:
        kept: Counter = Counter()
        for row, count in intermediate.rows.items():
            binding = _binding(intermediate, row)
            if predicate.evaluate(binding):
                kept[row] += count
        intermediate.rows = kept

    # Resolve (possibly unqualified) projection refs to concrete columns.
    projection_columns = [
        intermediate.columns[intermediate.index_of(ref)]
        for ref in query.projection
    ]
    positions = [intermediate.index_of(ref) for ref in query.projection]
    schema = _result_schema(
        query,
        {alias: table.schema for alias, table in tables.items()},
        projection_columns,
    )
    result = Table(schema)
    for row, count in intermediate.rows.items():
        projected = tuple(row[position] for position in positions)
        result.insert(projected, count)
    return result


def _join_as_predicate(join: JoinCondition) -> Predicate:
    from .predicate import AttrComparison

    return AttrComparison(join.left, "=", join.right)


def _binding(intermediate: _Intermediate, row: Row):
    def binding(ref: AttrRef):
        return row[intermediate.index_of(ref)]

    return binding
