"""Compiled query plans and the columnar hash-join kernel.

This is the wall-clock performance layer of the relational engine.  The
naive evaluator (:func:`repro.relational.executor.execute_naive`)
re-derives everything per call and per row: it rebuilds ``positions``
dicts, resolves attribute references through closure-allocating
*bindings*, extracts join keys with per-row generator expressions and
re-validates every projected value on result insertion.  Under bag
semantics all of that is pure interpretation overhead — counted distinct
rows mean one kernel application per *distinct* row, so the work that
remains is exactly the part worth compiling.

A :class:`CompiledPlan` precomputes, once per ``(SPJQuery, schema
epoch)``:

* the greedy connected join order and every intermediate column layout
  (identical to the naive executor's, so results and error behavior
  match bag-for-bag);
* selection/join predicates as *closed-over Python functions* indexing
  rows directly — no per-row ``AttrRef`` dict bindings;
* join/probe key extractors as :func:`operator.itemgetter` (C-speed);
* the projection itemgetter and the result schema.

Execution then runs a **columnar hash join** over distinct ``(row,
count)`` pairs, multiplying multiplicities in bulk, and materializes
the result through :meth:`Table.from_counts` (rows coming out of
validated tables are not re-validated on the way back in).

**Error parity with the oracle.**  A reference that no longer resolves
(the engine-level face of a broken query) must raise the same exception
class at the same stage as the naive evaluator — scan-predicate errors
per filtered row, join-condition errors at the join step, residual
errors per row, projection errors after filtering.  Compilation
therefore never fails on a dangling reference: it produces a *deferred
raiser* installed at the stage where the naive evaluator would have
raised.  ``tests/property/test_executor_equivalence.py`` proves the
equivalence over random queries × bag tables × deltas × schema changes.

**Plan-cache invalidation rule (schema epoch).**  Schemas are immutable
values: every physical schema change replaces a table's
:class:`RelationSchema` with a new object (and bumps
``Table.schema_epoch``).  Plans are cached under ``(query, bound schema
tuple)``, so a schema change can never serve a stale plan — the old
epoch's entry simply ages out of the LRU.
"""

from __future__ import annotations

import operator
from collections import Counter, OrderedDict

from .errors import (
    AmbiguousAttributeError,
    QueryError,
    RelationalError,
    UnknownAttributeError,
)
from .executor import _result_schema, _single_alias_conjuncts
from .predicate import (
    AttrComparison,
    AttrRef,
    Comparison,
    Conjunction,
    InPredicate,
    Negation,
    Predicate,
    TruePredicate,
    _COMPARATORS,
    conjunction,
)
from .query import JoinCondition, SPJQuery
from .schema import RelationSchema
from .table import Table

#: default bound on resident compiled plans (LRU eviction)
DEFAULT_MAX_PLANS = 512


# ----------------------------------------------------------------------
# reference resolution
# ----------------------------------------------------------------------


def _resolver(columns: list[AttrRef]):
    """Position resolver over a column layout.

    Mirrors ``_Intermediate.index_of`` exactly: unqualified names resolve
    through a name→positions map (Unknown on zero, Ambiguous on many),
    qualified references through a column→position map.
    """
    positions = {column: index for index, column in enumerate(columns)}
    by_name: dict[str, list[int]] = {}
    for index, column in enumerate(columns):
        by_name.setdefault(column.name, []).append(index)

    def resolve(ref: AttrRef) -> int:
        if ref.relation is None:
            matches = by_name.get(ref.name, ())
            if not matches:
                raise UnknownAttributeError(ref.name)
            if len(matches) > 1:
                raise AmbiguousAttributeError(
                    f"attribute {ref.name!r} is ambiguous"
                )
            return matches[0]
        position = positions.get(ref)
        if position is None:
            raise UnknownAttributeError(ref.name, ref.relation)
        return position

    return resolve


# ----------------------------------------------------------------------
# predicate compilation
# ----------------------------------------------------------------------


def _raiser(exc: RelationalError):
    """A per-row filter that raises where the naive binding would have."""

    def deferred(row, _exc=exc):
        raise _exc

    return deferred


def _compile_filter(predicate: Predicate, resolve):
    """Compile to ``row -> bool`` (``None`` means "accepts everything").

    Resolution failures become deferred raisers at the granularity the
    naive evaluator exhibits: per conjunct, so an earlier ``False``
    conjunct still short-circuits past a dangling reference.
    """
    if isinstance(predicate, Conjunction):
        filters = []
        for child in predicate.children:
            compiled = _compile_filter_deferred(child, resolve)
            if compiled is not None:
                filters.append(compiled)
        if not filters:
            return None
        if len(filters) == 1:
            return filters[0]
        filters = tuple(filters)

        def conjunction_filter(row, _filters=filters):
            for accept in _filters:
                if not accept(row):
                    return False
            return True

        return conjunction_filter
    return _compile_filter_deferred(predicate, resolve)


def _compile_filter_deferred(predicate: Predicate, resolve):
    try:
        return _compile_leaf(predicate, resolve)
    except RelationalError as exc:
        return _raiser(exc)


def _compile_leaf(predicate: Predicate, resolve):
    if isinstance(predicate, TruePredicate):
        return None
    if isinstance(predicate, Conjunction):
        return _compile_filter(predicate, resolve)
    if isinstance(predicate, Comparison):
        # Resolve first: the naive binding is invoked before the
        # NULL-operand check, so a dangling reference outranks it.
        position = resolve(predicate.attr)
        if predicate.value is None:
            return lambda row: False
        compare = _COMPARATORS[predicate.op]

        def comparison(
            row, _position=position, _compare=compare, _value=predicate.value
        ):
            actual = row[_position]
            return actual is not None and _compare(actual, _value)

        return comparison
    if isinstance(predicate, AttrComparison):
        left = resolve(predicate.left)
        right = resolve(predicate.right)
        compare = _COMPARATORS[predicate.op]

        def attr_comparison(
            row, _left=left, _right=right, _compare=compare
        ):
            left_value = row[_left]
            if left_value is None:
                return False
            right_value = row[_right]
            return right_value is not None and _compare(
                left_value, right_value
            )

        return attr_comparison
    if isinstance(predicate, InPredicate):
        position = resolve(predicate.attr)

        def membership(row, _position=position, _values=predicate.values):
            return row[_position] in _values

        return membership
    if isinstance(predicate, Negation):
        child = _compile_leaf(predicate.child, resolve)
        if child is None:
            return lambda row: False
        return lambda row, _child=child: not _child(row)
    # Unknown predicate subclass: fall back to its own evaluate() with a
    # positional binding (slow path, exact semantics).
    def generic(row, _predicate=predicate, _resolve=resolve):
        return _predicate.evaluate(lambda ref: row[_resolve(ref)])

    return generic


# ----------------------------------------------------------------------
# plan structure
# ----------------------------------------------------------------------


class _ScanStage:
    """One base-table scan: pushed-down filter plus probe candidates."""

    __slots__ = ("alias", "filter", "probes")

    def __init__(self, alias, filter_, probes):
        self.alias = alias
        self.filter = filter_
        self.probes = probes  # tuple of (attribute name, value frozenset)

    def run(self, table: Table) -> dict:
        accept = self.filter
        probe = self._choose_probe(table)
        if probe is not None:
            attribute_name, values = probe
            rows: dict = {}
            get = rows.get
            for row, count in table.probe(attribute_name, values):
                if accept is None or accept(row):
                    rows[row] = get(row, 0) + count
            return rows
        counts = table._counts  # package-internal: zero-copy scan
        if accept is None:
            return counts
        return {row: count for row, count in counts.items() if accept(row)}

    def _choose_probe(self, table: Table):
        """Same selectivity rule as the naive ``_pick_probe``."""
        best = None
        for attribute_name, values in self.probes:
            if best is None or len(values) < len(best[1]):
                best = (attribute_name, values)
        if best is None:
            return None
        if len(best[1]) * 4 >= max(table.distinct_count(), 1):
            return None
        return best


class _JoinStage:
    """Fold one scanned relation into the accumulated intermediate."""

    __slots__ = ("scan", "left_key", "right_key", "error")

    def __init__(self, scan, left_key, right_key, error):
        self.scan = scan
        self.left_key = left_key
        self.right_key = right_key
        self.error = error

    def run(self, left_rows: dict, right_rows: dict) -> dict:
        if self.error is not None:
            raise self.error
        joined: dict = {}
        get = joined.get
        if self.left_key is None:  # bag cartesian product
            for left_row, left_count in left_rows.items():
                for right_row, right_count in right_rows.items():
                    row = left_row + right_row
                    joined[row] = get(row, 0) + left_count * right_count
            return joined
        # Columnar build: one bucket per distinct key holding parallel
        # row/count columns, multiplied in bulk at probe time.
        right_key = self.right_key
        index: dict = {}
        for right_row, right_count in right_rows.items():
            key = right_key(right_row)
            bucket = index.get(key)
            if bucket is None:
                index[key] = ([right_row], [right_count])
            else:
                bucket[0].append(right_row)
                bucket[1].append(right_count)
        left_key = self.left_key
        for left_row, left_count in left_rows.items():
            bucket = index.get(left_key(left_row))
            if bucket is None:
                continue
            bucket_rows, bucket_counts = bucket
            if len(bucket_rows) == 1:
                row = left_row + bucket_rows[0]
                joined[row] = get(row, 0) + left_count * bucket_counts[0]
            else:
                for right_row, right_count in zip(
                    bucket_rows, bucket_counts
                ):
                    row = left_row + right_row
                    joined[row] = get(row, 0) + left_count * right_count
        return joined


class CompiledPlan:
    """A fully resolved execution strategy for one (query, schemas)."""

    __slots__ = (
        "query",
        "first_scan",
        "join_stages",
        "residual",
        "projection_error",
        "project",
        "result_schema",
    )

    def __init__(
        self,
        query,
        first_scan,
        join_stages,
        residual,
        projection_error,
        project,
        result_schema,
    ):
        self.query = query
        self.first_scan = first_scan
        self.join_stages = join_stages
        self.residual = residual
        self.projection_error = projection_error
        self.project = project
        self.result_schema = result_schema

    def execute(self, tables: dict[str, Table]) -> Table:
        """Evaluate against tables bound to the compiled schemas.

        The caller (plan cache) guarantees each table's schema equals
        the one the plan was compiled for.
        """
        rows = self.first_scan.run(tables[self.first_scan.alias])
        for stage in self.join_stages:
            right_rows = stage.scan.run(tables[stage.scan.alias])
            rows = stage.run(rows, right_rows)
        accept = self.residual
        if accept is not None:
            rows = {row: count for row, count in rows.items() if accept(row)}
        if self.projection_error is not None:
            raise self.projection_error
        project = self.project
        projected: Counter = Counter()
        get = projected.get
        for row, count in rows.items():
            key = project(row)
            projected[key] = get(key, 0) + count
        return Table.from_counts(self.result_schema, projected)


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------


def _itemgetter(positions: list[int]):
    if len(positions) == 1:
        position = positions[0]
        return lambda row, _position=position: row[_position]
    return operator.itemgetter(*positions)


def _compile_scan(
    alias: str,
    schema: RelationSchema,
    predicates: list[Predicate],
) -> tuple[_ScanStage, list[AttrRef]]:
    columns = [AttrRef(alias, attribute.name) for attribute in schema]
    resolve = _resolver(columns)
    accept = _compile_filter(conjunction(predicates), resolve)
    probes = tuple(
        (predicate.attr.name, predicate.values)
        for predicate in predicates
        if isinstance(predicate, InPredicate)
        and predicate.attr.relation in (None, alias)
        and predicate.attr.name in schema
    )
    return _ScanStage(alias, accept, probes), columns


def compile_plan(
    query: SPJQuery, schemas: dict[str, RelationSchema]
) -> CompiledPlan:
    """Compile ``query`` against per-alias relation schemas.

    Replicates the naive executor's greedy connected join order and
    column layouts exactly; see the module docstring for the deferred
    error discipline.
    """
    pushdown, residual_terms = _single_alias_conjuncts(query.selection)

    remaining = list(query.aliases)
    first_alias = remaining.pop(0)
    first_scan, columns = _compile_scan(
        first_alias, schemas[first_alias], pushdown.get(first_alias, [])
    )
    joined_aliases = {first_alias}
    pending_joins = list(query.joins)
    join_stages: list[_JoinStage] = []

    while remaining:
        applicable: list[JoinCondition] = []
        chosen: str | None = None
        for alias in remaining:
            applicable = [
                join
                for join in pending_joins
                if join.touches(alias)
                and join.other_side(alias).relation in joined_aliases
            ]
            if applicable:
                chosen = alias
                break
        if chosen is None:
            chosen = remaining[0]
            applicable = []
        remaining.remove(chosen)
        scan, right_columns = _compile_scan(
            chosen, schemas[chosen], pushdown.get(chosen, [])
        )
        left_key = right_key = None
        error = None
        if applicable:
            resolve_left = _resolver(columns)
            resolve_right = _resolver(right_columns)
            left_positions: list[int] = []
            right_positions: list[int] = []
            try:
                for condition in applicable:
                    if condition.left.relation in joined_aliases:
                        left_ref, right_ref = condition.left, condition.right
                    else:
                        left_ref, right_ref = condition.right, condition.left
                    left_positions.append(resolve_left(left_ref))
                    right_positions.append(resolve_right(right_ref))
                left_key = _itemgetter(left_positions)
                right_key = _itemgetter(right_positions)
            except RelationalError as exc:
                # Raised when the join stage runs — after the right
                # side's scan, exactly like the naive executor.
                error = exc
        join_stages.append(_JoinStage(scan, left_key, right_key, error))
        columns = columns + right_columns
        joined_aliases.add(chosen)
        for join in applicable:
            pending_joins.remove(join)

    resolve_final = _resolver(columns)
    residual_filters: list[Predicate] = residual_terms + [
        AttrComparison(join.left, "=", join.right) for join in pending_joins
    ]
    residual = _compile_filter(conjunction(residual_filters), resolve_final)

    projection_error = None
    project = None
    result_schema = None
    try:
        positions = [resolve_final(ref) for ref in query.projection]
    except RelationalError as exc:
        projection_error = exc
    else:
        project = _itemgetter(positions)
        if len(positions) == 1:
            # itemgetter with one key returns a scalar; rows are tuples
            position = positions[0]
            project = lambda row, _position=position: (row[_position],)
        projection_columns = [columns[position] for position in positions]
        result_schema = _result_schema(query, schemas, projection_columns)

    return CompiledPlan(
        query,
        first_scan,
        tuple(join_stages),
        residual,
        projection_error,
        project,
        result_schema,
    )


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------


class PlanCache:
    """LRU of compiled plans keyed by ``(query, bound schema tuple)``.

    Immutable schemas *are* the epoch: any physical schema change swaps
    a table's schema object, so the lookup key changes and the stale
    plan can never be served (it ages out of the LRU).
    """

    __slots__ = ("max_plans", "_plans", "hits", "misses", "evictions")

    def __init__(self, max_plans: int = DEFAULT_MAX_PLANS) -> None:
        self.max_plans = max(1, max_plans)
        self._plans: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def plan_for(
        self, query: SPJQuery, tables: dict[str, Table]
    ) -> CompiledPlan:
        key = (query, tuple(tables[alias].schema for alias in query.aliases))
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            self._plans.move_to_end(key)
            return plan
        self.misses += 1
        plan = compile_plan(
            query,
            {alias: tables[alias].schema for alias in query.aliases},
        )
        self._plans[key] = plan
        while len(self._plans) > self.max_plans:
            self._plans.popitem(last=False)
            self.evictions += 1
        return plan

    def clear(self) -> None:
        self._plans.clear()

    def stats(self) -> dict[str, int]:
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: the process-wide plan cache used by :func:`execute_compiled`
PLAN_CACHE = PlanCache()


def clear_plan_cache() -> None:
    PLAN_CACHE.clear()


def plan_cache_stats() -> dict[str, int]:
    return PLAN_CACHE.stats()


def execute_compiled(query: SPJQuery, tables: dict[str, Table]) -> Table:
    """Evaluate ``query`` through the compiled/columnar kernel.

    Drop-in replacement for the naive ``execute``: same results (bag
    equality *and* result schema), same exception classes at the same
    stages.
    """
    for ref in query.relations:
        if ref.alias not in tables:
            raise QueryError(f"alias {ref.alias!r} not bound to a table")
    return PLAN_CACHE.plan_for(query, tables).execute(tables)
