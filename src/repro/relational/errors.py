"""Exception hierarchy for the reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
The relational layer distinguishes *schema* problems (the query refers to
metadata that does not exist — the raw material of the paper's broken-query
anomaly) from *data* problems (e.g. deleting a tuple that is not present).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class RelationalError(ReproError):
    """Base class for errors raised by the relational engine."""


class SchemaError(RelationalError):
    """A schema definition or schema operation is invalid."""


class UnknownRelationError(SchemaError):
    """A query or operation referenced a relation that does not exist."""

    def __init__(self, relation: str, source: str | None = None) -> None:
        self.relation = relation
        self.source = source
        where = f" at source {source!r}" if source else ""
        super().__init__(f"unknown relation {relation!r}{where}")


class UnknownAttributeError(SchemaError):
    """A query or operation referenced an attribute that does not exist."""

    def __init__(self, attribute: str, relation: str | None = None) -> None:
        self.attribute = attribute
        self.relation = relation
        where = f" in relation {relation!r}" if relation else ""
        super().__init__(f"unknown attribute {attribute!r}{where}")


class DuplicateAttributeError(SchemaError):
    """Two attributes in one schema share a name."""


class DuplicateRelationError(SchemaError):
    """Two relations in one catalog share a name."""


class TypeMismatchError(RelationalError):
    """A value does not match the declared attribute type."""


class ArityError(RelationalError):
    """A tuple's width does not match its schema."""


class DataError(RelationalError):
    """A data-level operation failed (e.g. deleting an absent tuple)."""


class AmbiguousAttributeError(SchemaError):
    """An unqualified attribute name matched more than one relation."""


class QueryError(RelationalError):
    """A query is malformed independent of any particular schema state."""
