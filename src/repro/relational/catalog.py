"""Per-source catalogs of tables.

A :class:`Catalog` is the metadata+data dictionary of one data source:
named tables, created/dropped/renamed as a unit.  All lookups raise
:class:`~repro.relational.errors.UnknownRelationError` when the relation
is absent — the signal that a maintenance query built from outdated
schema knowledge has broken.
"""

from __future__ import annotations

from typing import Iterator

from .errors import DuplicateRelationError, UnknownRelationError
from .schema import RelationSchema
from .table import Table


class Catalog:
    """A mutable dictionary of relations owned by one source."""

    def __init__(self, source_name: str = "") -> None:
        self.source_name = source_name
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create(self, schema: RelationSchema) -> Table:
        if schema.name in self._tables:
            raise DuplicateRelationError(
                f"relation {schema.name!r} already exists"
                + (f" at source {self.source_name!r}" if self.source_name else "")
            )
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def add_table(self, table: Table) -> None:
        if table.schema.name in self._tables:
            raise DuplicateRelationError(
                f"relation {table.schema.name!r} already exists"
            )
        self._tables[table.schema.name] = table

    def drop(self, relation_name: str) -> Table:
        """Drop and return the table (callers may keep it as a snapshot)."""
        table = self.table(relation_name)
        del self._tables[relation_name]
        return table

    def rename(self, old: str, new: str) -> None:
        table = self.table(old)
        if new in self._tables:
            raise DuplicateRelationError(f"relation {new!r} already exists")
        del self._tables[old]
        table.schema = table.schema.renamed(new)
        self._tables[new] = table

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def table(self, relation_name: str) -> Table:
        try:
            return self._tables[relation_name]
        except KeyError:
            raise UnknownRelationError(
                relation_name, self.source_name or None
            ) from None

    def schema(self, relation_name: str) -> RelationSchema:
        return self.table(relation_name).schema

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def snapshot(self) -> "Catalog":
        """A deep copy of all tables (used by the consistency oracle)."""
        duplicate = Catalog(self.source_name)
        for name, table in self._tables.items():
            duplicate._tables[name] = table.copy()
        return duplicate
