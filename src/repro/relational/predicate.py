"""Predicate AST for selections and join conditions.

Predicates are immutable trees over :class:`AttrRef` leaves.  Besides
evaluation, every node supports two introspection operations the view
manager relies on:

* ``references()`` — which attributes the predicate touches.  This is how
  dependency detection decides whether a schema change *conflicts* with
  the view (Definition 3 only draws a concurrent-dependency edge when the
  changed metadata is "included in the view query").
* ``substituted()`` — rewriting attribute references, used by view
  synchronization when relations or attributes are renamed or replaced.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Mapping

from .errors import QueryError
from .types import Value


@dataclass(frozen=True)
class AttrRef:
    """A (possibly qualified) reference to a relation attribute.

    ``relation`` is the *alias* of a relation in the enclosing query, or
    ``None`` for an unqualified reference that the executor resolves.
    """

    relation: str | None
    name: str

    def qualified(self) -> str:
        return f"{self.relation}.{self.name}" if self.relation else self.name

    def with_relation(self, relation: str) -> "AttrRef":
        return AttrRef(relation, self.name)

    def renamed(self, name: str) -> "AttrRef":
        return AttrRef(self.relation, name)

    def __str__(self) -> str:
        return self.qualified()


Substitution = Mapping[AttrRef, AttrRef]
Binding = Callable[[AttrRef], Value]

_COMPARATORS: dict[str, Callable[[Value, Value], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate:
    """Abstract base of all predicate nodes."""

    def evaluate(self, binding: Binding) -> bool:
        raise NotImplementedError

    def references(self) -> frozenset[AttrRef]:
        raise NotImplementedError

    def substituted(self, substitution: Substitution) -> "Predicate":
        raise NotImplementedError

    def sql(self) -> str:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return conjunction([self, other])


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The neutral predicate; selects everything."""

    def evaluate(self, binding: Binding) -> bool:
        return True

    def references(self) -> frozenset[AttrRef]:
        return frozenset()

    def substituted(self, substitution: Substitution) -> Predicate:
        return self

    def sql(self) -> str:
        return "TRUE"


TRUE = TruePredicate()


def _render_value(value: Value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if value is None:
        return "NULL"
    return str(value)


@dataclass(frozen=True)
class Comparison(Predicate):
    """``attr op constant`` comparison."""

    attr: AttrRef
    op: str
    value: Value

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, binding: Binding) -> bool:
        actual = binding(self.attr)
        if actual is None or self.value is None:
            # SQL three-valued logic collapsed to False for NULL operands,
            # except IS-style equality on two NULLs which we do not need.
            return False
        return _COMPARATORS[self.op](actual, self.value)

    def references(self) -> frozenset[AttrRef]:
        return frozenset({self.attr})

    def substituted(self, substitution: Substitution) -> Predicate:
        return Comparison(
            substitution.get(self.attr, self.attr), self.op, self.value
        )

    def sql(self) -> str:
        return f"{self.attr.qualified()} {self.op} {_render_value(self.value)}"


@dataclass(frozen=True)
class AttrComparison(Predicate):
    """``attr op attr`` comparison (equi-joins use op '=')."""

    left: AttrRef
    op: str
    right: AttrRef

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, binding: Binding) -> bool:
        left = binding(self.left)
        right = binding(self.right)
        if left is None or right is None:
            return False
        return _COMPARATORS[self.op](left, right)

    def references(self) -> frozenset[AttrRef]:
        return frozenset({self.left, self.right})

    def substituted(self, substitution: Substitution) -> Predicate:
        return AttrComparison(
            substitution.get(self.left, self.left),
            self.op,
            substitution.get(self.right, self.right),
        )

    def sql(self) -> str:
        return f"{self.left.qualified()} {self.op} {self.right.qualified()}"


@dataclass(frozen=True)
class InPredicate(Predicate):
    """``attr IN (v1, v2, ...)`` — the workhorse of maintenance queries.

    When the view manager probes a source for tuples joining with a delta,
    it ships the delta's join values as an IN list (the "individual source
    queries" of Definition 1).
    """

    attr: AttrRef
    values: frozenset

    def evaluate(self, binding: Binding) -> bool:
        return binding(self.attr) in self.values

    def references(self) -> frozenset[AttrRef]:
        return frozenset({self.attr})

    def substituted(self, substitution: Substitution) -> Predicate:
        return InPredicate(
            substitution.get(self.attr, self.attr), self.values
        )

    def sql(self) -> str:
        rendered = ", ".join(
            _render_value(value) for value in sorted(self.values, key=repr)
        )
        return f"{self.attr.qualified()} IN ({rendered})"


@dataclass(frozen=True)
class Conjunction(Predicate):
    """AND of child predicates."""

    children: tuple[Predicate, ...]

    def evaluate(self, binding: Binding) -> bool:
        return all(child.evaluate(binding) for child in self.children)

    def references(self) -> frozenset[AttrRef]:
        refs: frozenset[AttrRef] = frozenset()
        for child in self.children:
            refs |= child.references()
        return refs

    def substituted(self, substitution: Substitution) -> Predicate:
        return conjunction(
            [child.substituted(substitution) for child in self.children]
        )

    def sql(self) -> str:
        return " AND ".join(child.sql() for child in self.children)


@dataclass(frozen=True)
class Negation(Predicate):
    """NOT of a child predicate."""

    child: Predicate

    def evaluate(self, binding: Binding) -> bool:
        return not self.child.evaluate(binding)

    def references(self) -> frozenset[AttrRef]:
        return self.child.references()

    def substituted(self, substitution: Substitution) -> Predicate:
        return Negation(self.child.substituted(substitution))

    def sql(self) -> str:
        return f"NOT ({self.child.sql()})"


def conjunction(predicates: list[Predicate]) -> Predicate:
    """AND a list of predicates, flattening and dropping TRUE."""
    flattened: list[Predicate] = []
    for predicate in predicates:
        if isinstance(predicate, TruePredicate):
            continue
        if isinstance(predicate, Conjunction):
            flattened.extend(predicate.children)
        else:
            flattened.append(predicate)
    if not flattened:
        return TRUE
    if len(flattened) == 1:
        return flattened[0]
    return Conjunction(tuple(flattened))


def attr(relation: str | None, name: str | None = None) -> AttrRef:
    """Convenience constructor: ``attr("S", "SID")`` or ``attr("SID")``."""
    if name is None:
        return AttrRef(None, relation)  # type: ignore[arg-type]
    return AttrRef(relation, name)
