"""Select-project-join query AST.

A :class:`SPJQuery` is pure data: relation references (each naming the
*source* that owns the relation, matching the paper's distributed
setting), equi-join conditions, a selection predicate and a projection
list.  The view definition, maintenance queries and compensation queries
are all SPJ queries; the executor (:mod:`repro.relational.executor`)
evaluates them against bags of rows.

The AST supports the structural rewrites view synchronization needs:
renaming relations/attributes, replacing a relation wholesale, dropping
attributes from the projection and pruning join conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .errors import QueryError, UnknownAttributeError
from .predicate import (
    TRUE,
    AttrRef,
    Predicate,
    Substitution,
    conjunction,
)


@dataclass(frozen=True)
class RelationRef:
    """A relation in a query: which source owns it, its name, its alias."""

    source: str
    relation: str
    alias: str

    def sql(self) -> str:
        if self.alias == self.relation:
            return self.relation
        return f"{self.relation} {self.alias}"


@dataclass(frozen=True)
class JoinCondition:
    """Equi-join between two attributes of different relations."""

    left: AttrRef
    right: AttrRef

    def __post_init__(self) -> None:
        if self.left.relation is None or self.right.relation is None:
            raise QueryError(
                "join conditions must use qualified attribute references"
            )

    def references(self) -> frozenset[AttrRef]:
        return frozenset({self.left, self.right})

    def touches(self, alias: str) -> bool:
        return alias in (self.left.relation, self.right.relation)

    def attr_of(self, alias: str) -> AttrRef:
        if self.left.relation == alias:
            return self.left
        if self.right.relation == alias:
            return self.right
        raise QueryError(f"join {self.sql()} does not touch alias {alias!r}")

    def other_side(self, alias: str) -> AttrRef:
        if self.left.relation == alias:
            return self.right
        if self.right.relation == alias:
            return self.left
        raise QueryError(f"join {self.sql()} does not touch alias {alias!r}")

    def substituted(self, substitution: Substitution) -> "JoinCondition":
        return JoinCondition(
            substitution.get(self.left, self.left),
            substitution.get(self.right, self.right),
        )

    def sql(self) -> str:
        return f"{self.left.qualified()} = {self.right.qualified()}"


@dataclass(frozen=True)
class SPJQuery:
    """A select-project-join query over distributed relations."""

    relations: tuple[RelationRef, ...]
    projection: tuple[AttrRef, ...]
    joins: tuple[JoinCondition, ...] = ()
    selection: Predicate = TRUE

    def __post_init__(self) -> None:
        if not self.relations:
            raise QueryError("a query needs at least one relation")
        aliases = [ref.alias for ref in self.relations]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate aliases in query: {aliases}")
        known = set(aliases)
        for ref in self.all_attribute_refs():
            if ref.relation is not None and ref.relation not in known:
                raise QueryError(
                    f"attribute {ref.qualified()} references unknown "
                    f"alias {ref.relation!r}"
                )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(ref.alias for ref in self.relations)

    def relation_ref(self, alias: str) -> RelationRef:
        for ref in self.relations:
            if ref.alias == alias:
                return ref
        raise QueryError(f"no relation with alias {alias!r}")

    def sources(self) -> frozenset[str]:
        return frozenset(ref.source for ref in self.relations)

    def relations_of_source(self, source: str) -> tuple[RelationRef, ...]:
        return tuple(ref for ref in self.relations if ref.source == source)

    def all_attribute_refs(self) -> frozenset[AttrRef]:
        """Every attribute the query mentions anywhere."""
        refs = set(self.projection)
        refs |= self.selection.references()
        for join in self.joins:
            refs |= join.references()
        return frozenset(refs)

    def references_relation(self, source: str, relation: str) -> bool:
        return any(
            ref.source == source and ref.relation == relation
            for ref in self.relations
        )

    def references_attribute(
        self, source: str, relation: str, attribute: str
    ) -> bool:
        """Does the query mention ``relation.attribute`` at ``source``?"""
        aliases = {
            ref.alias
            for ref in self.relations
            if ref.source == source and ref.relation == relation
        }
        if not aliases:
            return False
        return any(
            ref.relation in aliases and ref.name == attribute
            for ref in self.all_attribute_refs()
        )

    def joins_touching(self, alias: str) -> tuple[JoinCondition, ...]:
        return tuple(join for join in self.joins if join.touches(alias))

    # ------------------------------------------------------------------
    # structural rewrites (used by view synchronization)
    # ------------------------------------------------------------------

    def with_relation_renamed(
        self, source: str, old: str, new: str
    ) -> "SPJQuery":
        """Rename a base relation; aliases (and thus attr refs) survive."""
        relations = tuple(
            replace(ref, relation=new)
            if ref.source == source and ref.relation == old
            else ref
            for ref in self.relations
        )
        return replace(self, relations=relations)

    def with_relation_replaced(
        self, alias: str, replacement: RelationRef
    ) -> "SPJQuery":
        """Swap the relation behind ``alias`` for another (same alias)."""
        if replacement.alias != alias:
            raise QueryError(
                "replacement must keep the alias so attribute references "
                f"remain valid (got {replacement.alias!r} for {alias!r})"
            )
        relations = tuple(
            replacement if ref.alias == alias else ref
            for ref in self.relations
        )
        return replace(self, relations=relations)

    def with_attribute_renamed(
        self, alias: str, old: str, new: str
    ) -> "SPJQuery":
        """Rename every reference ``alias.old`` to ``alias.new``."""
        target = AttrRef(alias, old)
        substitution = {target: AttrRef(alias, new)}
        return self.substituted(substitution)

    def substituted(self, substitution: Substitution) -> "SPJQuery":
        projection = tuple(
            substitution.get(ref, ref) for ref in self.projection
        )
        joins = tuple(join.substituted(substitution) for join in self.joins)
        selection = self.selection.substituted(substitution)
        return replace(
            self, projection=projection, joins=joins, selection=selection
        )

    def without_projection_attribute(self, target: AttrRef) -> "SPJQuery":
        """Drop one attribute from the projection (view evolution)."""
        projection = tuple(ref for ref in self.projection if ref != target)
        if not projection:
            raise QueryError("cannot drop the last projected attribute")
        return replace(self, projection=projection)

    def without_relation(self, alias: str) -> "SPJQuery":
        """Remove a relation plus every join/projection/selection term
        touching it.  This is the last-resort view evolution when a
        dropped relation has no replacement."""
        relations = tuple(ref for ref in self.relations if ref.alias != alias)
        if not relations:
            raise QueryError("cannot remove the only relation of a query")
        joins = tuple(
            join for join in self.joins if not join.touches(alias)
        )
        projection = tuple(
            ref for ref in self.projection if ref.relation != alias
        )
        if not projection:
            raise QueryError(
                f"removing alias {alias!r} would empty the projection"
            )
        selection = _prune_selection(self.selection, alias)
        return SPJQuery(relations, projection, joins, selection)

    def with_extra_selection(self, predicate: Predicate) -> "SPJQuery":
        return replace(
            self, selection=conjunction([self.selection, predicate])
        )

    # ------------------------------------------------------------------
    # validation against live schemas
    # ------------------------------------------------------------------

    def validate_against(self, schemas: dict[str, "object"]) -> None:
        """Check all attribute refs resolve in ``schemas`` (alias→schema).

        Raises :class:`UnknownAttributeError` on the first dangling
        reference; used by tests and the consistency oracle.
        """
        for ref in self.all_attribute_refs():
            if ref.relation is None:
                continue
            schema = schemas.get(ref.relation)
            if schema is None:
                raise QueryError(f"no schema bound for alias {ref.relation!r}")
            if ref.name not in schema:  # type: ignore[operator]
                raise UnknownAttributeError(ref.name, ref.relation)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def sql(self) -> str:
        select = ", ".join(ref.qualified() for ref in self.projection)
        from_clause = ", ".join(ref.sql() for ref in self.relations)
        where_terms = [join.sql() for join in self.joins]
        if self.selection is not TRUE:
            where_terms.append(self.selection.sql())
        sql = f"SELECT {select} FROM {from_clause}"
        if where_terms:
            sql += " WHERE " + " AND ".join(where_terms)
        return sql


def _prune_selection(predicate: Predicate, alias: str) -> Predicate:
    """Drop conjuncts of ``predicate`` that mention ``alias``.

    Only safe for conjunctive selections; anything non-conjunctive that
    touches the alias is dropped wholesale (view evolution is allowed to
    produce a non-equivalent view, see footnote 1 of the paper).
    """
    from .predicate import Conjunction

    def touches(p: Predicate) -> bool:
        return any(ref.relation == alias for ref in p.references())

    if isinstance(predicate, Conjunction):
        kept = [child for child in predicate.children if not touches(child)]
        return conjunction(kept)
    if touches(predicate):
        return TRUE
    return predicate
