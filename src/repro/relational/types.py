"""Attribute types for the in-memory relational engine.

The engine is deliberately small: four scalar types cover everything the
paper's testbed needs (integer keys, floating-point prices, string titles,
boolean flags).  Each type knows how to validate and coerce Python values,
and how to produce a deterministic default used when a schema change adds
an attribute to an existing relation.
"""

from __future__ import annotations

import enum
from typing import Any

from .errors import TypeMismatchError

#: Python value kinds the engine stores.  ``None`` is allowed for every type
#: and represents SQL NULL (used e.g. as the default for added attributes).
Value = int | float | str | bool | None


class AttributeType(enum.Enum):
    """Scalar type of a relation attribute."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    def validate(self, value: Value) -> Value:
        """Return ``value`` if it conforms to this type, else raise.

        Integers are accepted for FLOAT attributes (and widened), matching
        the usual numeric promotion of SQL engines.  ``bool`` is *not*
        accepted for INT despite being an ``int`` subclass in Python —
        silently storing ``True`` in an integer column is a classic bug.
        """
        if value is None:
            return None
        if self is AttributeType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(f"expected INT, got {value!r}")
            return value
        if self is AttributeType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(f"expected FLOAT, got {value!r}")
            return float(value)
        if self is AttributeType.STRING:
            if not isinstance(value, str):
                raise TypeMismatchError(f"expected STRING, got {value!r}")
            return value
        if self is AttributeType.BOOL:
            if not isinstance(value, bool):
                raise TypeMismatchError(f"expected BOOL, got {value!r}")
            return value
        raise AssertionError(f"unhandled type {self}")  # pragma: no cover

    def default(self) -> Value:
        """Deterministic default used when an attribute is added."""
        return None

    @classmethod
    def infer(cls, value: Any) -> "AttributeType":
        """Infer the attribute type of a Python value.

        Used by convenience constructors that build schemas from sample
        rows (tests and examples); production schemas are declared
        explicitly.
        """
        if isinstance(value, bool):
            return cls.BOOL
        if isinstance(value, int):
            return cls.INT
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, str):
            return cls.STRING
        raise TypeMismatchError(f"cannot infer attribute type for {value!r}")

    def sql_name(self) -> str:
        """Render the type as it would appear in a DDL statement."""
        return {
            AttributeType.INT: "INTEGER",
            AttributeType.FLOAT: "REAL",
            AttributeType.STRING: "VARCHAR",
            AttributeType.BOOL: "BOOLEAN",
        }[self]
