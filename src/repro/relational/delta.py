"""Signed multisets of tuples (deltas).

Incremental view maintenance works on *deltas*: bags of tuples with signed
multiplicities, where a positive count means insertions and a negative
count means deletions.  Deltas are the lingua franca of this library —
source data updates, maintenance query answers after compensation, and
view refreshes are all deltas.

The representation follows the counting algebra of Griffin & Libkin
("Incremental Maintenance of Views with Duplicates", SIGMOD 1995), which
the paper's maintenance substrate [1, 20] builds on.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from .errors import ArityError
from .rows import intern_row
from .schema import RelationSchema

Row = tuple


class Delta:
    """A signed bag of rows over one schema.

    Counts may be any nonzero integer; entries whose count reaches zero are
    removed eagerly so that two deltas are equal iff they have the same
    net effect.
    """

    __slots__ = ("schema", "_counts")

    def __init__(
        self,
        schema: RelationSchema,
        counts: dict[Row, int] | None = None,
    ) -> None:
        self.schema = schema
        self._counts: Counter[Row] = Counter()
        if counts:
            for row, count in counts.items():
                self.add(row, count)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def insertion(cls, schema: RelationSchema, rows: Iterable[Row]) -> "Delta":
        delta = cls(schema)
        for row in rows:
            delta.add(row, 1)
        return delta

    @classmethod
    def deletion(cls, schema: RelationSchema, rows: Iterable[Row]) -> "Delta":
        delta = cls(schema)
        for row in rows:
            delta.add(row, -1)
        return delta

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, row: Row, count: int = 1) -> None:
        """Accumulate ``count`` occurrences of ``row`` (negative = delete)."""
        if len(row) != self.schema.arity:
            raise ArityError(
                f"row of width {len(row)} does not match schema "
                f"{self.schema.name!r} of arity {self.schema.arity}"
            )
        if count == 0:
            return
        # Intern through the shared row pool: the same distinct row
        # recurs across deltas, cache patches, journal replays and shard
        # replicas, and an identical object makes every downstream dict
        # lookup an identity hit.
        row = intern_row(tuple(row))
        new_count = self._counts[row] + count
        if new_count == 0:
            del self._counts[row]
        else:
            self._counts[row] = new_count

    def merge(self, other: "Delta") -> None:
        """Accumulate another delta of the same arity into this one."""
        if other.schema.arity != self.schema.arity:
            raise ArityError(
                f"cannot merge delta of arity {other.schema.arity} into "
                f"delta of arity {self.schema.arity}"
            )
        for row, count in other.items():
            self.add(row, count)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[Row, int]]:
        return iter(self._counts.items())

    def count(self, row: Row) -> int:
        return self._counts.get(tuple(row), 0)

    def rows(self) -> Iterator[Row]:
        """Each row repeated ``abs(count)`` times, sign ignored."""
        for row, count in self._counts.items():
            for _ in range(abs(count)):
                yield row

    @property
    def insertions(self) -> "Delta":
        """The positive part of this delta."""
        positive = Delta(self.schema)
        for row, count in self._counts.items():
            if count > 0:
                positive.add(row, count)
        return positive

    @property
    def deletions(self) -> "Delta":
        """The negative part, returned with positive counts."""
        negative = Delta(self.schema)
        for row, count in self._counts.items():
            if count < 0:
                negative.add(row, -count)
        return negative

    def is_empty(self) -> bool:
        return not self._counts

    def __len__(self) -> int:
        """Number of distinct rows with a nonzero net count."""
        return len(self._counts)

    def net_size(self) -> int:
        """Sum of absolute multiplicities (total tuple traffic)."""
        return sum(abs(count) for count in self._counts.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Delta):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:  # pragma: no cover - deltas are not hashable
        raise TypeError("Delta is mutable and unhashable")

    def __repr__(self) -> str:
        preview = dict(list(self._counts.items())[:4])
        suffix = "..." if len(self._counts) > 4 else ""
        return f"Delta({self.schema.name!r}, {preview}{suffix})"

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------

    def negated(self) -> "Delta":
        """The delta with all counts negated (undo)."""
        flipped = Delta(self.schema)
        for row, count in self._counts.items():
            flipped.add(row, -count)
        return flipped

    def copy(self) -> "Delta":
        duplicate = Delta(self.schema)
        duplicate._counts = Counter(self._counts)
        return duplicate

    def scaled(self, factor: int) -> "Delta":
        scaled = Delta(self.schema)
        for row, count in self._counts.items():
            scaled.add(row, count * factor)
        return scaled
