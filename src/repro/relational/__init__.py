"""In-memory relational engine: the storage/query substrate.

This package implements everything the paper's Oracle8i testbed provided:
typed schemas, bag-semantics tables, deltas with signed multiplicities,
an SPJ query AST with the structural rewrites view synchronization needs,
and a hash-join executor.
"""

from .catalog import Catalog
from .delta import Delta, Row
from .errors import (
    AmbiguousAttributeError,
    ArityError,
    DataError,
    DuplicateAttributeError,
    DuplicateRelationError,
    QueryError,
    RelationalError,
    ReproError,
    SchemaError,
    TypeMismatchError,
    UnknownAttributeError,
    UnknownRelationError,
)
from .executor import (
    execute,
    execute_naive,
    executor_mode,
    set_executor_mode,
)
from .plan import (
    CompiledPlan,
    PlanCache,
    clear_plan_cache,
    compile_plan,
    execute_compiled,
    plan_cache_stats,
)
from .predicate import (
    TRUE,
    AttrComparison,
    AttrRef,
    Comparison,
    Conjunction,
    InPredicate,
    Negation,
    Predicate,
    attr,
    conjunction,
)
from .query import JoinCondition, RelationRef, SPJQuery
from .rows import (
    clear_pool,
    intern_row,
    interning_enabled,
    pool_stats,
    set_interning,
)
from .schema import Attribute, RelationSchema
from .sql import parse_query, parse_view
from .table import Table
from .types import AttributeType, Value

__all__ = [
    "AmbiguousAttributeError",
    "ArityError",
    "AttrComparison",
    "AttrRef",
    "Attribute",
    "AttributeType",
    "Catalog",
    "Comparison",
    "CompiledPlan",
    "Conjunction",
    "DataError",
    "Delta",
    "DuplicateAttributeError",
    "DuplicateRelationError",
    "InPredicate",
    "JoinCondition",
    "Negation",
    "PlanCache",
    "Predicate",
    "QueryError",
    "RelationRef",
    "RelationSchema",
    "RelationalError",
    "ReproError",
    "Row",
    "SPJQuery",
    "SchemaError",
    "TRUE",
    "Table",
    "TypeMismatchError",
    "UnknownAttributeError",
    "UnknownRelationError",
    "Value",
    "attr",
    "clear_plan_cache",
    "clear_pool",
    "compile_plan",
    "conjunction",
    "execute",
    "execute_compiled",
    "execute_naive",
    "executor_mode",
    "intern_row",
    "interning_enabled",
    "parse_query",
    "parse_view",
    "plan_cache_stats",
    "pool_stats",
    "set_executor_mode",
    "set_interning",
]
