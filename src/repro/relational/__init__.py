"""In-memory relational engine: the storage/query substrate.

This package implements everything the paper's Oracle8i testbed provided:
typed schemas, bag-semantics tables, deltas with signed multiplicities,
an SPJ query AST with the structural rewrites view synchronization needs,
and a hash-join executor.
"""

from .catalog import Catalog
from .delta import Delta, Row
from .errors import (
    AmbiguousAttributeError,
    ArityError,
    DataError,
    DuplicateAttributeError,
    DuplicateRelationError,
    QueryError,
    RelationalError,
    ReproError,
    SchemaError,
    TypeMismatchError,
    UnknownAttributeError,
    UnknownRelationError,
)
from .executor import execute
from .predicate import (
    TRUE,
    AttrComparison,
    AttrRef,
    Comparison,
    Conjunction,
    InPredicate,
    Negation,
    Predicate,
    attr,
    conjunction,
)
from .query import JoinCondition, RelationRef, SPJQuery
from .schema import Attribute, RelationSchema
from .sql import parse_query, parse_view
from .table import Table
from .types import AttributeType, Value

__all__ = [
    "AmbiguousAttributeError",
    "ArityError",
    "AttrComparison",
    "AttrRef",
    "Attribute",
    "AttributeType",
    "Catalog",
    "Comparison",
    "Conjunction",
    "DataError",
    "Delta",
    "DuplicateAttributeError",
    "DuplicateRelationError",
    "InPredicate",
    "JoinCondition",
    "Negation",
    "Predicate",
    "QueryError",
    "RelationRef",
    "RelationSchema",
    "RelationalError",
    "ReproError",
    "Row",
    "SPJQuery",
    "SchemaError",
    "TRUE",
    "Table",
    "TypeMismatchError",
    "UnknownAttributeError",
    "UnknownRelationError",
    "Value",
    "attr",
    "conjunction",
    "execute",
    "parse_query",
    "parse_view",
]
