"""A small SQL front-end for the SPJ query AST.

The engine's native interface is the typed AST in
:mod:`repro.relational.query`; this module adds the convenience of
defining views from SQL text, covering exactly the paper's query class
(select-project-join with conjunctive predicates):

    CREATE VIEW BookInfo AS
    SELECT S.Store, I.Book, I.Price
    FROM retailer.Store S, retailer.Item I, library.Catalog C
    WHERE S.SID = I.SID AND I.Book = C.Title AND I.Price < 100

Because relations live at *named sources*, the FROM clause qualifies
each relation with its source (``source.Relation [alias]``).  Rendering
(the inverse direction) lives on the AST itself (`SPJQuery.sql()`).
"""

from __future__ import annotations

import re
from typing import Iterator

from .errors import QueryError
from .predicate import (
    AttrComparison,
    AttrRef,
    Comparison,
    InPredicate,
    Predicate,
    conjunction,
)
from .query import JoinCondition, RelationRef, SPJQuery

_TOKEN = re.compile(
    r"""
    \s*(
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),.*])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "create", "view", "as", "select", "from", "where", "and", "in",
    "true", "not",
}


class _Tokens:
    """A peekable token stream."""

    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._position = 0

    def peek(self) -> tuple[str, str] | None:
        if self._position >= len(self._tokens):
            return None
        return self._tokens[self._position]

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of SQL input")
        self._position += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        kind, value = self.next()
        if kind != "name" or value.lower() != keyword:
            raise QueryError(f"expected {keyword.upper()!r}, got {value!r}")

    def expect_punct(self, punct: str) -> None:
        kind, value = self.next()
        if kind != "punct" or value != punct:
            raise QueryError(f"expected {punct!r}, got {value!r}")

    def accept_punct(self, punct: str) -> bool:
        token = self.peek()
        if token and token[0] == "punct" and token[1] == punct:
            self._position += 1
            return True
        return False

    def accept_keyword(self, keyword: str) -> bool:
        token = self.peek()
        if token and token[0] == "name" and token[1].lower() == keyword:
            self._position += 1
            return True
        return False

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return bool(
            token
            and token[0] == "name"
            and token[1].lower() in keywords
        )


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                return
            raise QueryError(f"cannot tokenize SQL at: {remainder[:20]!r}")
        position = match.end()
        for kind in ("string", "number", "name", "op", "punct"):
            value = match.group(kind)
            if value is not None:
                yield kind, value
                break


def parse_view(text: str) -> tuple[str, SPJQuery]:
    """Parse ``CREATE VIEW name AS SELECT ...``; returns (name, query)."""
    tokens = _Tokens(text)
    tokens.expect_keyword("create")
    tokens.expect_keyword("view")
    kind, name = tokens.next()
    if kind != "name":
        raise QueryError(f"expected view name, got {name!r}")
    tokens.expect_keyword("as")
    return name, _parse_select(tokens)


def parse_query(text: str) -> SPJQuery:
    """Parse a bare ``SELECT ...`` statement."""
    return _parse_select(_Tokens(text))


def _parse_select(tokens: _Tokens) -> SPJQuery:
    tokens.expect_keyword("select")
    projection = _parse_projection(tokens)
    tokens.expect_keyword("from")
    relations = _parse_from(tokens)
    predicates: list[Predicate] = []
    joins: list[JoinCondition] = []
    if tokens.accept_keyword("where"):
        _parse_where(tokens, joins, predicates)
    if tokens.peek() is not None:
        raise QueryError(f"trailing tokens after query: {tokens.peek()}")
    return SPJQuery(
        relations=tuple(relations),
        projection=tuple(projection),
        joins=tuple(joins),
        selection=conjunction(predicates),
    )


def _parse_projection(tokens: _Tokens) -> list[AttrRef]:
    projection: list[AttrRef] = []
    while True:
        projection.append(_parse_attr_ref(tokens))
        if not tokens.accept_punct(","):
            return projection


def _parse_attr_ref(tokens: _Tokens) -> AttrRef:
    kind, first = tokens.next()
    if kind != "name":
        raise QueryError(f"expected attribute reference, got {first!r}")
    if tokens.accept_punct("."):
        kind, second = tokens.next()
        if kind != "name":
            raise QueryError(f"expected attribute name, got {second!r}")
        return AttrRef(first, second)
    return AttrRef(None, first)


def _parse_from(tokens: _Tokens) -> list[RelationRef]:
    relations: list[RelationRef] = []
    while True:
        kind, source = tokens.next()
        if kind != "name":
            raise QueryError(f"expected source name, got {source!r}")
        tokens.expect_punct(".")
        kind, relation = tokens.next()
        if kind != "name":
            raise QueryError(f"expected relation name, got {relation!r}")
        alias = relation
        token = tokens.peek()
        if (
            token
            and token[0] == "name"
            and token[1].lower() not in _KEYWORDS
        ):
            alias = tokens.next()[1]
        relations.append(RelationRef(source, relation, alias))
        if not tokens.accept_punct(","):
            return relations


def _parse_where(
    tokens: _Tokens,
    joins: list[JoinCondition],
    predicates: list[Predicate],
) -> None:
    while True:
        _parse_condition(tokens, joins, predicates)
        if not tokens.accept_keyword("and"):
            return


def _parse_condition(
    tokens: _Tokens,
    joins: list[JoinCondition],
    predicates: list[Predicate],
) -> None:
    left = _parse_attr_ref(tokens)
    if tokens.accept_keyword("in"):
        tokens.expect_punct("(")
        values = []
        while True:
            values.append(_parse_literal(tokens))
            if not tokens.accept_punct(","):
                break
        tokens.expect_punct(")")
        predicates.append(InPredicate(left, frozenset(values)))
        return

    kind, op = tokens.next()
    if kind != "op":
        raise QueryError(f"expected comparison operator, got {op!r}")
    if op == "<>":
        op = "!="

    token = tokens.peek()
    if token is None:
        raise QueryError("unexpected end of condition")
    if token[0] == "name" and token[1].lower() not in _KEYWORDS:
        right = _parse_attr_ref(tokens)
        if op == "=" and left.relation and right.relation:
            joins.append(JoinCondition(left, right))
        else:
            predicates.append(AttrComparison(left, op, right))
        return
    predicates.append(Comparison(left, op, _parse_literal(tokens)))


def _parse_literal(tokens: _Tokens):
    kind, value = tokens.next()
    if kind == "string":
        return value[1:-1].replace("''", "'")
    if kind == "number":
        return float(value) if "." in value else int(value)
    if kind == "name" and value.lower() == "true":
        return True
    if kind == "name" and value.lower() == "false":
        return False
    raise QueryError(f"expected literal, got {value!r}")
