"""Mutable bag-semantics tables.

A :class:`Table` pairs a :class:`~repro.relational.schema.RelationSchema`
with a counted multiset of rows.  Bag semantics (not set semantics) is the
right substrate for incremental view maintenance: deltas carry
multiplicities, and a join of deltas must multiply counts.

Tables also implement the *physical* side of schema changes — when a
source drops an attribute, every stored row is projected accordingly.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Iterable, Iterator

from .delta import Delta, Row
from .errors import ArityError, DataError
from .rows import intern_row
from .schema import Attribute, RelationSchema
from .types import Value

#: global monotone schema-epoch sequence; every (table, schema version)
#: pair gets a unique stamp, so compiled-plan caches keyed by epoch are
#: invalidated by *any* physical schema change (and never collide
#: across tables)
_EPOCHS = itertools.count(1)


class Table:
    """A named bag of typed rows.

    Tables maintain lazy hash indexes per attribute: the first
    :meth:`probe` on an attribute builds a value→rows index, kept up to
    date incrementally by inserts/deletes and discarded by physical
    schema changes.  The executor uses probes to answer IN-list
    maintenance queries without scanning (the "indexed probe" the cost
    model assumes).  Each index stores the attribute's column position
    at build time, so per-row maintenance never re-resolves the
    attribute name against the schema.
    """

    __slots__ = ("schema", "_counts", "_indexes", "_schema_epoch")

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Row] = (),
    ) -> None:
        self.schema = schema
        self._counts: Counter[Row] = Counter()
        #: attribute name -> (column position, value -> set of rows)
        self._indexes: dict[str, tuple[int, dict]] = {}
        self._schema_epoch = next(_EPOCHS)
        for row in rows:
            self.insert(row)

    @classmethod
    def from_counts(cls, schema: RelationSchema, counts) -> "Table":
        """Trusted bulk constructor: adopt pre-validated ``(row, count)``
        multiplicities without per-row type validation.

        The compiled executor, the snapshot cache's patch path and the
        self-maintenance replicas all produce rows that *came out of*
        validated tables; re-validating every value on the way back in
        is pure per-row overhead.  Counts must be positive.
        """
        table = cls(schema)
        table._counts = (
            counts if isinstance(counts, Counter) else Counter(counts)
        )
        return table

    # ------------------------------------------------------------------
    # data manipulation
    # ------------------------------------------------------------------

    def _validated(self, row: Row) -> Row:
        if len(row) != self.schema.arity:
            raise ArityError(
                f"row of width {len(row)} does not match relation "
                f"{self.schema.name!r} of arity {self.schema.arity}"
            )
        return intern_row(
            tuple(
                attribute.type.validate(value)
                for attribute, value in zip(self.schema.attributes, row)
            )
        )

    def insert(self, row: Row, count: int = 1) -> None:
        """Insert ``count`` copies of ``row`` after validation."""
        if count <= 0:
            raise DataError(f"insert count must be positive, got {count}")
        row = self._validated(row)
        self._counts[row] += count
        for position, buckets in self._indexes.values():
            buckets.setdefault(row[position], set()).add(row)

    def delete(self, row: Row, count: int = 1) -> None:
        """Delete ``count`` copies of ``row``; raise if not present."""
        if count <= 0:
            raise DataError(f"delete count must be positive, got {count}")
        row = self._validated(row)
        present = self._counts.get(row, 0)
        if present < count:
            raise DataError(
                f"cannot delete {count} x {row!r} from "
                f"{self.schema.name!r}: only {present} present"
            )
        if present == count:
            del self._counts[row]
            for position, buckets in self._indexes.values():
                bucket = buckets.get(row[position])
                if bucket is not None:
                    bucket.discard(row)
        else:
            self._counts[row] = present - count

    def update(self, old_row: Row, new_row: Row) -> None:
        """Replace one occurrence of ``old_row`` with ``new_row``."""
        self.delete(old_row)
        self.insert(new_row)

    def apply_delta(self, delta: Delta) -> None:
        """Apply a signed delta: positive counts insert, negative delete."""
        if delta.schema.arity != self.schema.arity:
            raise ArityError(
                f"delta arity {delta.schema.arity} does not match relation "
                f"{self.schema.name!r} arity {self.schema.arity}"
            )
        for row, count in delta.items():
            if count > 0:
                self.insert(row, count)
            else:
                self.delete(row, -count)

    def clear(self) -> None:
        self._counts.clear()
        self._indexes.clear()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total number of rows counting duplicates."""
        return sum(self._counts.values())

    def distinct_count(self) -> int:
        return len(self._counts)

    def count(self, row: Row) -> int:
        return self._counts.get(tuple(row), 0)

    def __contains__(self, row: Row) -> bool:
        return self.count(row) > 0

    def __iter__(self) -> Iterator[Row]:
        for row, count in self._counts.items():
            for _ in range(count):
                yield row

    def items(self) -> Iterator[tuple[Row, int]]:
        return iter(self._counts.items())

    def rows(self) -> list[Row]:
        return list(self)

    @property
    def schema_epoch(self) -> int:
        """Monotone stamp identifying this table's current physical
        schema version.  Bumped by every schema mutation
        (:meth:`rename_attribute`, :meth:`drop_attribute`,
        :meth:`add_attribute`) — the compiled-plan cache invalidation
        rule: a plan is valid exactly as long as every bound table
        keeps its epoch.
        """
        return self._schema_epoch

    def as_delta(self) -> Delta:
        """The whole extent as an insertion delta."""
        delta = Delta(self.schema)
        for row, count in self._counts.items():
            delta.add(row, count)
        return delta

    def probe(self, attribute_name: str, values) -> Iterator[tuple[Row, int]]:
        """Index lookup: rows whose ``attribute_name`` is in ``values``.

        Builds (and thereafter incrementally maintains) a hash index on
        the attribute.  Yields ``(row, count)`` pairs.
        """
        entry = self._indexes.get(attribute_name)
        if entry is None:
            position = self.schema.index_of(attribute_name)
            buckets: dict = {}
            for row in self._counts:
                buckets.setdefault(row[position], set()).add(row)
            entry = (position, buckets)
            self._indexes[attribute_name] = entry
        counts = self._counts
        for value in values:
            for row in entry[1].get(value, ()):
                count = counts.get(row, 0)
                if count:
                    yield row, count

    def has_index(self, attribute_name: str) -> bool:
        return attribute_name in self._indexes

    def copy(self, name: str | None = None) -> "Table":
        schema = self.schema if name is None else self.schema.renamed(name)
        duplicate = Table(schema)
        duplicate._counts = Counter(self._counts)
        return duplicate  # indexes are rebuilt lazily on the copy

    def __eq__(self, other: object) -> bool:
        """Extent equality: same bag of rows (schema names may differ)."""
        if not isinstance(other, Table):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:  # pragma: no cover
        raise TypeError("Table is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"Table({self.schema.name!r}, arity={self.schema.arity}, "
            f"rows={len(self)})"
        )

    # ------------------------------------------------------------------
    # physical schema evolution
    # ------------------------------------------------------------------

    def renamed(self, new_name: str) -> "Table":
        return self.copy(new_name)

    def rename_attribute(self, old: str, new: str) -> None:
        """In-place attribute rename; rows are untouched."""
        self.schema = self.schema.rename_attribute(old, new)
        self._schema_epoch = next(_EPOCHS)
        if old in self._indexes:
            self._indexes[new] = self._indexes.pop(old)

    def drop_attribute(self, attribute_name: str) -> None:
        """Drop the attribute and project every stored row."""
        index = self.schema.index_of(attribute_name)
        self.schema = self.schema.drop_attribute(attribute_name)
        self._schema_epoch = next(_EPOCHS)
        projected: Counter[Row] = Counter()
        for row, count in self._counts.items():
            projected[row[:index] + row[index + 1 :]] += count
        self._counts = projected
        self._indexes.clear()

    def add_attribute(
        self, attribute: Attribute, default: Value = None
    ) -> None:
        """Append the attribute, filling existing rows with ``default``."""
        default = attribute.type.validate(default)
        self.schema = self.schema.add_attribute(attribute)
        self._schema_epoch = next(_EPOCHS)
        extended: Counter[Row] = Counter()
        for row, count in self._counts.items():
            extended[row + (default,)] += count
        self._counts = extended
        self._indexes.clear()
