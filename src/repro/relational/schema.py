"""Relation schemas.

A :class:`RelationSchema` is an immutable ordered list of typed attributes
plus the relation name.  Schema *changes* (rename/drop/add) return new
schema objects; the mutable state lives in :mod:`repro.relational.table`
and :mod:`repro.relational.catalog`.  Immutability matters here because
the view manager keeps snapshots of source schemas (the "outdated schema
knowledge" of the paper) that must not be affected by later source-side
changes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from .errors import (
    DuplicateAttributeError,
    SchemaError,
    UnknownAttributeError,
)
from .types import AttributeType

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _check_identifier(name: str, what: str) -> str:
    if not _IDENTIFIER.match(name):
        raise SchemaError(f"invalid {what} name: {name!r}")
    return name


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    type: AttributeType = AttributeType.STRING

    def __post_init__(self) -> None:
        _check_identifier(self.name, "attribute")

    def renamed(self, new_name: str) -> "Attribute":
        return Attribute(new_name, self.type)

    def sql(self) -> str:
        return f"{self.name} {self.type.sql_name()}"


@dataclass(frozen=True)
class RelationSchema:
    """Immutable schema of one relation: a name and ordered attributes."""

    name: str
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        _check_identifier(self.name, "relation")
        seen: set[str] = set()
        for attribute in self.attributes:
            if attribute.name in seen:
                raise DuplicateAttributeError(
                    f"duplicate attribute {attribute.name!r} "
                    f"in relation {self.name!r}"
                )
            seen.add(attribute.name)

    @classmethod
    def of(
        cls,
        name: str,
        attributes: Iterable[Attribute | tuple[str, AttributeType] | str],
    ) -> "RelationSchema":
        """Build a schema from attributes given in any convenient form.

        Accepts :class:`Attribute` objects, ``(name, type)`` pairs, or bare
        strings (which default to STRING type).
        """
        normalized: list[Attribute] = []
        for item in attributes:
            if isinstance(item, Attribute):
                normalized.append(item)
            elif isinstance(item, str):
                normalized.append(Attribute(item))
            else:
                attr_name, attr_type = item
                normalized.append(Attribute(attr_name, attr_type))
        return cls(name, tuple(normalized))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, attribute_name: str) -> bool:
        return any(a.name == attribute_name for a in self.attributes)

    def index_of(self, attribute_name: str) -> int:
        """Position of the attribute, raising if absent."""
        for index, attribute in enumerate(self.attributes):
            if attribute.name == attribute_name:
                return index
        raise UnknownAttributeError(attribute_name, self.name)

    def attribute(self, attribute_name: str) -> Attribute:
        return self.attributes[self.index_of(attribute_name)]

    # ------------------------------------------------------------------
    # schema evolution (all return new schemas)
    # ------------------------------------------------------------------

    def renamed(self, new_name: str) -> "RelationSchema":
        """The same attributes under a new relation name."""
        return RelationSchema(new_name, self.attributes)

    def rename_attribute(self, old: str, new: str) -> "RelationSchema":
        index = self.index_of(old)
        attributes = list(self.attributes)
        attributes[index] = attributes[index].renamed(new)
        return RelationSchema(self.name, tuple(attributes))

    def drop_attribute(self, attribute_name: str) -> "RelationSchema":
        index = self.index_of(attribute_name)
        if self.arity == 1:
            raise SchemaError(
                f"cannot drop the last attribute of relation {self.name!r}"
            )
        attributes = self.attributes[:index] + self.attributes[index + 1 :]
        return RelationSchema(self.name, attributes)

    def add_attribute(self, attribute: Attribute) -> "RelationSchema":
        if attribute.name in self:
            raise DuplicateAttributeError(
                f"attribute {attribute.name!r} already exists "
                f"in relation {self.name!r}"
            )
        return RelationSchema(self.name, self.attributes + (attribute,))

    def project(self, attribute_names: Iterable[str]) -> "RelationSchema":
        """Schema restricted to the given attributes, in the given order."""
        attributes = tuple(
            self.attribute(attribute_name) for attribute_name in attribute_names
        )
        return RelationSchema(self.name, attributes)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def sql(self) -> str:
        """DDL-style rendering, e.g. ``Item(SID INTEGER, Book VARCHAR)``."""
        columns = ", ".join(attribute.sql() for attribute in self.attributes)
        return f"{self.name}({columns})"
