"""Shared row pool: tuple interning for the hot maintenance paths.

Bag semantics means the same distinct row is handled *many* times — it
recurs across deltas, maintenance-query answers, snapshot-cache entries,
journal replays and shard replicas.  Every one of those paths keys a
dict or Counter by the row tuple, and CPython's dict lookup compares
candidate keys by identity *before* falling back to ``__eq__``; when two
equal rows are the same object the O(arity) tuple comparison never runs.
Interning makes that the common case: :func:`intern_row` maps every row
flowing through :meth:`Table.insert <repro.relational.table.Table>` and
:meth:`Delta.add <repro.relational.delta.Delta.add>` to one canonical
tuple object.

Two safety properties:

* **Type faithfulness.**  Python considers ``1 == 1.0 == True``, so a
  naive pool would silently replace a FLOAT column's ``1.0`` with an
  INT column's ``1`` (or a BOOL's ``True``) — corrupting values that
  the sqlite backend round-trips by type.  A pooled twin is only
  substituted when every element matches by identity or exact type.
* **Bounded memory.**  The pool is capacity-bounded; when full it is
  reset rather than grown (interning is an optimization, never a
  correctness dependency — tuples cannot be weakly referenced, so a
  WeakValueDictionary is not an option).
"""

from __future__ import annotations

#: upper bound on resident canonical rows before the pool resets
DEFAULT_POOL_CAPACITY = 1 << 20

_pool: dict[tuple, tuple] = {}
_capacity = DEFAULT_POOL_CAPACITY
_enabled = True

#: monotone counters for benchmarks/diagnostics (never reset by a pool
#: reset, only by :func:`clear_pool`)
_stats = {"hits": 0, "misses": 0, "type_conflicts": 0, "resets": 0}


def intern_row(row: tuple) -> tuple:
    """Return the canonical pooled twin of ``row`` (or ``row`` itself).

    The returned tuple is ``==`` to the argument and element-wise
    type-identical; callers may freely substitute it for the original.
    """
    if not _enabled:
        return row
    cached = _pool.get(row)
    if cached is not None:
        if cached is row:
            _stats["hits"] += 1
            return row
        for ours, theirs in zip(cached, row):
            if ours is not theirs and type(ours) is not type(theirs):
                # An equal-but-differently-typed twin (1 vs 1.0 vs
                # True): sharing would rewrite the value's type.
                _stats["type_conflicts"] += 1
                return row
        _stats["hits"] += 1
        return cached
    if len(_pool) >= _capacity:
        _pool.clear()
        _stats["resets"] += 1
    _pool[row] = row
    _stats["misses"] += 1
    return row


def set_interning(enabled: bool) -> None:
    """Globally enable/disable the pool (tests and micro-benchmarks)."""
    global _enabled
    _enabled = enabled


def interning_enabled() -> bool:
    return _enabled


def set_pool_capacity(capacity: int) -> None:
    global _capacity
    _capacity = max(1, capacity)


def clear_pool() -> None:
    """Drop every pooled row and zero the counters."""
    _pool.clear()
    for key in _stats:
        _stats[key] = 0


def pool_size() -> int:
    return len(_pool)


def pool_stats() -> dict[str, int]:
    """Snapshot of the hit/miss/conflict/reset counters."""
    return dict(_stats)
