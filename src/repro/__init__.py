"""Dyno — detection and correction of conflicting source updates for
materialized view maintenance.

A from-scratch reproduction of Chen, Chen, Zhang & Rundensteiner,
*Detection and Correction of Conflicting Source Updates for View
Maintenance*, ICDE 2004, including every substrate the paper relies on:
an in-memory relational engine, autonomous source servers, a
deterministic discrete-event concurrency simulator, the VM/VS/VA
maintenance algorithms (with SWEEP-style compensation and EVE-style
synchronization), and the Dyno scheduler itself.

Quickstart::

    from repro import (
        SimEngine, DataSource, ViewManager, ViewDefinition,
        DynoScheduler, PESSIMISTIC,
    )

See ``examples/quickstart.py`` for a complete runnable scenario.
"""

from .dyda import DyDaError, DyDaSystem
from .core import (
    BLIND_MERGE,
    NAIVE,
    OPTIMISTIC,
    PESSIMISTIC,
    AnomalyType,
    Dependency,
    DependencyGraph,
    DependencyKind,
    DynoScheduler,
    ParallelScheduler,
    Shard,
    ShardRouter,
    ShardedWarehouse,
    Strategy,
    assign_views,
    correct,
    detect,
)
from .frontend import (
    READ_COMMITTED_VERSION,
    READ_LATEST,
    ReadFrontEnd,
    ReadReport,
    ReadWorkload,
)
from .relational import (
    AttrRef,
    Attribute,
    AttributeType,
    Comparison,
    Delta,
    InPredicate,
    JoinCondition,
    RelationRef,
    RelationSchema,
    SPJQuery,
    Table,
    attr,
    execute,
    parse_query,
    parse_view,
)
from .faults import (
    CrashWindow,
    FaultInjector,
    FaultPlan,
    FaultStats,
    LinkFault,
    RetryPolicy,
    TransientFault,
)
from .sim import CostModel, SimEngine
from .sources import (
    AddAttribute,
    AttributeReplacement,
    BrokenQueryError,
    CreateRelation,
    DataSource,
    DataUpdate,
    DropAttribute,
    DropRelation,
    MetaKnowledgeBase,
    QueryTimeoutError,
    RelationReplacement,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    SourceUnavailableError,
    SqliteDataSource,
    TransientSourceError,
    UpdateMessage,
    Workload,
    WorkloadItem,
    Wrapper,
)
from .views.audit import AuditingScheduler, StrongConsistencyViolation
from .views import (
    ConsistencyReport,
    MaintenanceUnit,
    MaterializedView,
    MultiViewManager,
    UpdateMessageQueue,
    ViewDefinition,
    ViewManager,
    check_convergence,
)

# after .views: the cache rides on maintenance/compensation, which the
# views package is mid-way through importing at the top of this module
from .cache import CacheHit, SnapshotCache
from .maintenance.grouping import BatchPolicy
from .recovery import (
    CRASH_POINTS,
    CrashInjector,
    CrashPlan,
    FileCheckpointStore,
    FileJournalSink,
    MaintenanceJournal,
    MemoryCheckpointStore,
    MemoryJournalSink,
    RecoveryHarness,
    RecoveryReport,
    SchedulerCrash,
    recover,
    simulate_crash,
)

__version__ = "1.0.0"

__all__ = [
    "AddAttribute",
    "AnomalyType",
    "AttrRef",
    "Attribute",
    "AuditingScheduler",
    "AttributeReplacement",
    "AttributeType",
    "BLIND_MERGE",
    "BatchPolicy",
    "BrokenQueryError",
    "CRASH_POINTS",
    "CacheHit",
    "Comparison",
    "ConsistencyReport",
    "CostModel",
    "CrashInjector",
    "CrashPlan",
    "CrashWindow",
    "CreateRelation",
    "DataSource",
    "DataUpdate",
    "Delta",
    "Dependency",
    "DependencyGraph",
    "DependencyKind",
    "DropAttribute",
    "DropRelation",
    "DyDaError",
    "DyDaSystem",
    "DynoScheduler",
    "ParallelScheduler",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FileCheckpointStore",
    "FileJournalSink",
    "InPredicate",
    "JoinCondition",
    "LinkFault",
    "MaintenanceJournal",
    "MaintenanceUnit",
    "MaterializedView",
    "MemoryCheckpointStore",
    "MemoryJournalSink",
    "MetaKnowledgeBase",
    "MultiViewManager",
    "NAIVE",
    "OPTIMISTIC",
    "PESSIMISTIC",
    "QueryTimeoutError",
    "RecoveryHarness",
    "RecoveryReport",
    "RelationRef",
    "RelationReplacement",
    "RelationSchema",
    "RenameAttribute",
    "RenameRelation",
    "RestructureRelations",
    "RetryPolicy",
    "SPJQuery",
    "SchedulerCrash",
    "SimEngine",
    "SnapshotCache",
    "SourceUnavailableError",
    "SqliteDataSource",
    "Strategy",
    "StrongConsistencyViolation",
    "Table",
    "TransientFault",
    "TransientSourceError",
    "UpdateMessage",
    "UpdateMessageQueue",
    "ViewDefinition",
    "ViewManager",
    "Workload",
    "WorkloadItem",
    "Wrapper",
    "attr",
    "check_convergence",
    "correct",
    "detect",
    "execute",
    "parse_query",
    "parse_view",
    "recover",
    "simulate_crash",
]
