"""DyDa: the integrated warehouse-maintenance system, as a facade.

The paper's prototype (DyDa [3]) bundles the view manager, the SWEEP
compensation, EVE-style synchronization, view adaptation and the Dyno
scheduler into one system.  :class:`DyDaSystem` is that bundle as a
five-line public API::

    system = DyDaSystem()
    retailer = system.add_source("retailer")
    retailer.create_relation(item_schema, rows)
    system.define_view("CREATE VIEW V AS SELECT I.Book ... ")
    system.commit("retailer", DataUpdate.insert(item_schema, [...]))
    system.run()                       # maintain to quiescence
    system.extent("V")                 # the materialized rows

Sources can be in-memory (default) or SQLite-backed; views are declared
in SQL or as :class:`~repro.views.definition.ViewDefinition` objects;
updates can be committed immediately or scheduled at virtual times.
"""

from __future__ import annotations

from .core.scheduler import DynoScheduler, SchedulerStats
from .core.strategies import PESSIMISTIC, Strategy
from .faults.injector import FaultInjector, FaultStats
from .faults.plan import FaultPlan
from .faults.retry import RetryPolicy
from .relational.sql import parse_view
from .relational.table import Table
from .sim.costs import CostModel
from .sim.engine import SimEngine
from .sources.messages import SourceUpdate, UpdateMessage
from .sources.mkb import MetaKnowledgeBase
from .sources.source import DataSource
from .sources.sqlite_source import SqliteDataSource
from .sources.workload import FixedUpdate, Workload
from .views.consistency import ConsistencyReport, check_convergence
from .views.definition import ViewDefinition
from .views.manager import ViewManager
from .views.multi import MultiViewManager


class DyDaError(Exception):
    """Misuse of the DyDa facade (wrong call order, unknown names)."""


class DyDaSystem:
    """One warehouse: autonomous sources, views, the Dyno scheduler."""

    def __init__(
        self,
        strategy: Strategy = PESSIMISTIC,
        cost_model: CostModel | None = None,
        mkb: MetaKnowledgeBase | None = None,
        trace: bool = False,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        journal: bool = False,
        checkpoint_every: int = 8,
        crash_plan=None,
    ) -> None:
        """``journal`` arms the crash-recovery subsystem
        (:mod:`repro.recovery`): write-ahead journal + checkpoint every
        ``checkpoint_every`` installs, in-memory stores.  ``crash_plan``
        additionally kills the warehouse per the seeded plan; ``run()``
        then recovers and resumes (implies ``journal``)."""
        self.engine = SimEngine(
            cost_model or CostModel.paper_default(), trace=trace
        )
        if fault_plan is not None or retry_policy is not None:
            self.engine.install_faults(
                FaultInjector(fault_plan or FaultPlan()), retry_policy
            )
        self.strategy = strategy
        self.mkb = mkb or MetaKnowledgeBase()
        self._journal = journal or crash_plan is not None
        self._checkpoint_every = checkpoint_every
        self._crash_plan = crash_plan
        self._recovery = None
        self.crash_reports: list = []
        self._view_definitions: list[ViewDefinition] = []
        self._manager: ViewManager | MultiViewManager | None = None
        self._scheduler: DynoScheduler | None = None

    # ------------------------------------------------------------------
    # setup phase
    # ------------------------------------------------------------------

    def add_source(
        self, name: str, backend: str = "memory"
    ) -> DataSource:
        """Register an autonomous source (before any view is defined)."""
        if self._manager is not None:
            raise DyDaError(
                "add sources before defining views (or use "
                "manager.connect for late joiners)"
            )
        if backend == "memory":
            source: DataSource = DataSource(name)
        elif backend == "sqlite":
            source = SqliteDataSource(name)
        else:
            raise DyDaError(f"unknown backend {backend!r}")
        return self.engine.add_source(source)

    def define_view(
        self, view: str | ViewDefinition
    ) -> ViewDefinition:
        """Declare a view (SQL text or a ViewDefinition)."""
        if self._manager is not None:
            raise DyDaError("define all views before the first run/commit")
        if isinstance(view, str):
            name, query = parse_view(view)
            definition = ViewDefinition(name, query)
        else:
            definition = view
        self._view_definitions.append(definition)
        return definition

    def _ensure_started(self) -> None:
        if self._manager is not None:
            return
        if not self._view_definitions:
            raise DyDaError("define at least one view first")
        if len(self._view_definitions) == 1:
            self._manager = ViewManager(
                self.engine, self._view_definitions[0], self.mkb
            )
        else:
            self._manager = MultiViewManager(
                self.engine, self._view_definitions, self.mkb
            )
        self._scheduler = DynoScheduler(self._manager, self.strategy)
        if self._journal:
            from .recovery import (
                CrashInjector,
                MemoryCheckpointStore,
                MemoryJournalSink,
                RecoveryHarness,
            )

            self._recovery = RecoveryHarness(
                self.engine,
                self._manager,
                self._scheduler,
                MemoryJournalSink(),
                MemoryCheckpointStore(),
                checkpoint_every=self._checkpoint_every,
                strategy=self.strategy,
                mkb=self.mkb,
            )
            self._recovery.attach()
            if self._crash_plan is not None:
                self.engine.crash_injector = CrashInjector(
                    self._crash_plan
                )

    # ------------------------------------------------------------------
    # update stream
    # ------------------------------------------------------------------

    def commit(
        self, source_name: str, update: SourceUpdate
    ) -> UpdateMessage:
        """Commit an update at a source right now (current virtual time)."""
        self._ensure_started()
        source = self.engine.sources.get(source_name)
        if source is None:
            raise DyDaError(f"unknown source {source_name!r}")
        return source.commit(update, at=self.engine.clock.now)

    def schedule(
        self, at: float, source_name: str, update: SourceUpdate
    ) -> None:
        """Schedule an autonomous commit at a future virtual time."""
        self._ensure_started()
        if source_name not in self.engine.sources:
            raise DyDaError(f"unknown source {source_name!r}")
        workload = Workload()
        workload.add(at, source_name, FixedUpdate(update))
        self.engine.schedule_workload(workload)

    def schedule_workload(self, workload: Workload) -> None:
        self._ensure_started()
        self.engine.schedule_workload(workload)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def run(self) -> SchedulerStats:
        """Maintain until quiescent (UMQ empty, no pending commits).

        With the journal armed, injected warehouse crashes are survived:
        the warehouse is rebuilt via :mod:`repro.recovery` and the run
        resumes until genuine quiescence."""
        self._ensure_started()
        assert self._scheduler is not None
        if self._recovery is None:
            return self._scheduler.run()
        from .recovery import SchedulerCrash, simulate_crash

        while True:
            try:
                return self._scheduler.run()
            except SchedulerCrash:
                while True:
                    simulate_crash(self.engine)
                    try:
                        recovered = self._recovery.recover()
                        break
                    except SchedulerCrash:
                        continue
                self._manager = recovered.manager
                self._scheduler = recovered.scheduler
                self._recovery = recovered.harness
                self.crash_reports.append(recovered.report)

    def committed_updates(self) -> frozenset:
        """Every (source, seqno) whose maintenance committed, across
        crashes (journal-installed plus live processed messages)."""
        self._ensure_started()
        assert self._scheduler is not None
        refs = set(self._scheduler.stats.processed_messages)
        if self._recovery is not None:
            refs |= self._recovery.installed_refs()
        return frozenset(refs)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def managers(self) -> list[ViewManager]:
        self._ensure_started()
        if isinstance(self._manager, MultiViewManager):
            return list(self._manager.managers)
        assert isinstance(self._manager, ViewManager)
        return [self._manager]

    def _manager_for(self, view_name: str | None) -> ViewManager:
        managers = self.managers
        if view_name is None:
            if len(managers) != 1:
                raise DyDaError(
                    "several views defined; name the one you want"
                )
            return managers[0]
        for manager in managers:
            if manager.view.name == view_name:
                return manager
        raise DyDaError(f"unknown view {view_name!r}")

    def definition(self, view_name: str | None = None) -> ViewDefinition:
        return self._manager_for(view_name).view

    def extent(self, view_name: str | None = None) -> Table:
        return self._manager_for(view_name).mv.extent

    def check(self, view_name: str | None = None) -> ConsistencyReport:
        """Convergence check against a fresh recompute."""
        return check_convergence(self._manager_for(view_name))

    @property
    def metrics(self):
        return self.engine.metrics

    @property
    def injector(self) -> FaultInjector | None:
        """The armed fault injector, or None when running fault-free."""
        return self.engine.injector

    @property
    def fault_stats(self) -> FaultStats | None:
        return (
            self.engine.injector.stats
            if self.engine.injector is not None
            else None
        )

    @property
    def stats(self) -> SchedulerStats:
        self._ensure_started()
        assert self._scheduler is not None
        return self._scheduler.stats

    @property
    def now(self) -> float:
        return self.engine.clock.now
