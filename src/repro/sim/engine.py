"""The discrete-event simulation engine.

The engine owns the virtual clock, a heap of scheduled autonomous source
commits, the registry of sources, and the cost model.  The view manager
runs *synchronously on top of* the engine: maintenance generators yield
:mod:`~repro.sim.effects` and the engine interprets them, advancing the
clock and firing any source commits that fall inside each time window.

This produces the paper's environment faithfully:

* while a maintenance query is "travelling", other sources keep
  committing — a data update that lands in the window silently leaks into
  the answer (duplication anomaly, fixed by compensation);
* a schema change that lands in the window invalidates the metadata the
  query was built from, and the evaluation raises
  :class:`~repro.sources.errors.BrokenQueryError`, which the engine
  throws into the maintenance generator (in-exec detection).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Generator, Iterable

from ..relational.predicate import InPredicate
from ..relational.query import SPJQuery
from ..relational.table import Table
from ..sources.source import DataSource
from ..sources.workload import Workload, WorkloadItem
from .clock import SimClock
from .costs import CostModel
from .effects import Checkpoint, Delay, Effect, SourceQuery
from .metrics import Metrics
from . import trace as trace_kinds
from .trace import Tracer

#: a maintenance process: yields effects, receives results
MaintenanceProcess = Generator[Effect, object, object]

#: Event-owner tag for everything the warehouse process schedules
#: (wrapper deliveries, worker resumptions, in-flight round trips).
#: A simulated warehouse crash purges exactly these events; workload
#: commits and other world events carry no owner and survive.
WAREHOUSE_OWNER = "warehouse"


@dataclass(frozen=True)
class QueryAnswer:
    """A query result plus the virtual time it was evaluated at.

    ``answered_at`` is the instant the source computed the result; it is
    what compensation compares against commit timestamps to decide which
    concurrent updates leaked into the answer.  (Transfer time back to
    the view manager is charged *after* evaluation, so updates committing
    during the transfer are correctly NOT compensated.)
    """

    table: Table
    answered_at: float


@dataclass(frozen=True)
class InstallRecord:
    """One committed unit install, as the read front end sees it.

    ``at`` is the virtual install time, ``view_sizes`` maps view name to
    extent cardinality at the new version, and ``messages`` lists the
    ``(source, seqno, committed_at)`` triples the installed unit covered
    — enough to compute per-version commit watermarks without touching
    live warehouse state after the run.
    """

    at: float
    view_sizes: dict[str, int]
    messages: tuple[tuple[str, int, float], ...]


class SimEngine:
    """Interprets effects against virtual time and autonomous commits."""

    def __init__(
        self,
        cost_model: CostModel | None = None,
        trace: bool = False,
        injector: "FaultInjector | None" = None,
        retry_policy: "RetryPolicy | None" = None,
    ) -> None:
        self.clock = SimClock()
        self.cost_model = cost_model or CostModel.paper_default()
        self.metrics = Metrics()
        self.sources: dict[str, DataSource] = {}
        self._events: list[
            tuple[float, int, Callable[[], None], str | None]
        ] = []
        self._sequence = itertools.count()
        #: optional :class:`~repro.recovery.crash.CrashInjector`; when
        #: armed, :meth:`crash_point` can kill the warehouse mid-step
        self.crash_injector = None
        self.tracer = Tracer(enabled=trace)
        self.injector: "FaultInjector | None" = None
        self.retry_policy: "RetryPolicy | None" = retry_policy
        #: optional snapshot cache; ``None`` means every maintenance
        #: query pays a real round trip (the default — callers opt in
        #: via :meth:`install_snapshot_cache`)
        self.snapshot_cache: "SnapshotCache | None" = None
        #: optional self-maintenance auxiliary store; consulted *before*
        #: the snapshot cache (callers opt in via
        #: :meth:`install_self_maintenance`)
        self.selfmaint: "SelfMaintenanceStore | None" = None
        #: per-install version timeline — one record per committed unit
        #: install, consumed by the read front end to serve versioned
        #: reads post hoc (empty unless a manager runs in this engine)
        self.install_log: list["InstallRecord"] = []
        if injector is not None:
            self.install_faults(injector, retry_policy)

    def record_install(
        self,
        view_sizes: dict[str, int],
        messages: tuple[tuple[str, int, float], ...],
    ) -> None:
        """Append one install record to the version timeline.

        Called by the view managers after a maintenance unit's outcome
        is applied; ``view_sizes`` snapshots every managed view's extent
        cardinality at the new version and ``messages`` lists the
        ``(source, seqno, committed_at)`` triples the unit covered.
        """
        self.install_log.append(
            InstallRecord(
                at=self.clock.now,
                view_sizes=dict(view_sizes),
                messages=messages,
            )
        )

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def add_source(self, source: DataSource) -> DataSource:
        self.sources[source.name] = source
        if self.injector is not None:
            source.fault_gate = self._fault_gate
        return source

    def install_faults(
        self,
        injector: "FaultInjector",
        retry_policy: "RetryPolicy | None" = None,
    ) -> "FaultInjector":
        """Arm fault injection: gate every source's query entry point
        (current and future sources) and set the retry policy the query
        path runs under.  Without an explicit policy a default
        :class:`~repro.faults.retry.RetryPolicy` is used so injected
        transients are actually retried."""
        from ..faults.retry import RetryPolicy

        self.injector = injector
        if retry_policy is not None:
            self.retry_policy = retry_policy
        elif self.retry_policy is None:
            self.retry_policy = RetryPolicy()
        for source in self.sources.values():
            source.fault_gate = self._fault_gate
        return injector

    def _fault_gate(self, source_name: str) -> None:
        if self.injector is not None:
            self.injector.on_query(source_name, self.clock.now)

    def install_snapshot_cache(
        self, cache: "SnapshotCache | None" = None
    ) -> "SnapshotCache":
        """Arm the self-maintenance fast path: cacheable maintenance
        queries are answered from a version-stamped local snapshot (see
        :mod:`repro.cache.snapshot`) whenever possible, skipping the
        round trip entirely.  Serial and parallel query paths both
        consult the installed cache."""
        from ..cache.snapshot import SnapshotCache

        self.snapshot_cache = cache or SnapshotCache(metrics=self.metrics)
        if self.snapshot_cache.metrics is None:
            self.snapshot_cache.metrics = self.metrics
        return self.snapshot_cache

    def install_self_maintenance(
        self, store: "SelfMaintenanceStore | None" = None
    ) -> "SelfMaintenanceStore":
        """Arm self-maintaining views: per-relation projected replicas
        (:mod:`repro.maintenance.selfmaint`) answer covered maintenance
        queries with zero round trips, ahead of the snapshot cache.
        Serial and parallel query paths both consult the store."""
        from ..maintenance.selfmaint import SelfMaintenanceStore

        self.selfmaint = store or SelfMaintenanceStore(metrics=self.metrics)
        if self.selfmaint.metrics is None:
            self.selfmaint.metrics = self.metrics
        return self.selfmaint

    def source(self, name: str) -> DataSource:
        return self.sources[name]

    def schedule(
        self,
        at: float,
        action: Callable[[], None],
        owner: str | None = None,
    ) -> None:
        """Schedule an event; ``owner`` tags it for crash purging."""
        heapq.heappush(
            self._events, (at, next(self._sequence), action, owner)
        )

    def purge_owned_events(self, owner: str) -> int:
        """Drop every pending event tagged with ``owner``.

        This is how a simulated warehouse crash loses its in-flight
        deliveries and worker resumptions; world events (autonomous
        source commits) are untagged and survive."""
        survivors = [
            event for event in self._events if event[3] != owner
        ]
        purged = len(self._events) - len(survivors)
        if purged:
            self._events = survivors
            heapq.heapify(self._events)
        return purged

    def crash_point(self, name: str) -> None:
        """Named kill point; a no-op unless a crash injector is armed."""
        if self.crash_injector is not None:
            self.crash_injector.on_point(name, self.clock.now)

    def schedule_commit(self, item: WorkloadItem) -> None:
        """Schedule one autonomous commit for its workload time.

        A commit the source itself rejects (e.g. a stale intent racing a
        schema change at its own source) is the *source's* local failure
        — autonomous sources do not consult anyone — so it is counted
        and traced but never propagates into the view manager.
        """
        from ..sources.errors import UpdateApplicationError

        def fire() -> None:
            source = self.sources[item.source_name]
            update = item.intent.materialize(source)
            if update is None:
                return
            try:
                message = source.commit(update, at=self.clock.now)
            except UpdateApplicationError as exc:
                self.metrics.failed_commits += 1
                self.tracer.record(
                    self.clock.now, trace_kinds.COMMIT, f"FAILED: {exc}"
                )
                return
            self.tracer.record(
                self.clock.now, trace_kinds.COMMIT, message.describe()
            )

        self.schedule(item.at, fire)

    def schedule_workload(self, workload: Workload | Iterable[WorkloadItem]) -> None:
        for item in workload:
            self.schedule_commit(item)

    # ------------------------------------------------------------------
    # time control
    # ------------------------------------------------------------------

    def has_pending_events(self) -> bool:
        return bool(self._events)

    def next_event_time(self) -> float | None:
        return self._events[0][0] if self._events else None

    def advance_to(self, instant: float) -> None:
        """Move the clock to ``instant``, firing due events in order."""
        while self._events and self._events[0][0] <= instant:
            at, _seq, action, _owner = heapq.heappop(self._events)
            self.clock.advance_to(max(at, self.clock.now))
            action()
        self.clock.advance_to(instant)

    def advance_by(self, duration: float) -> None:
        self.advance_to(self.clock.now + duration)

    def advance_to_next_event(self) -> bool:
        """Fire the earliest pending event batch; False if none pending."""
        if not self._events:
            return False
        self.advance_to(self._events[0][0])
        return True

    def drain_events(self) -> None:
        while self.advance_to_next_event():
            pass

    # ------------------------------------------------------------------
    # effect interpretation
    # ------------------------------------------------------------------

    def perform(self, effect: Effect) -> object:
        """Execute one effect, charging metrics and advancing time.

        :class:`~repro.sources.errors.BrokenQueryError` raised by a query
        propagates to the caller (who typically throws it into the
        maintenance generator).
        """
        if isinstance(effect, Delay):
            self.metrics.charge(effect.kind, effect.duration)
            self.advance_by(effect.duration)
            return None
        if isinstance(effect, Checkpoint):
            return self.clock.now
        if isinstance(effect, SourceQuery):
            return self._perform_query(effect)
        raise TypeError(f"unknown effect {effect!r}")

    def _perform_query(self, effect: SourceQuery) -> QueryAnswer:
        """One logical maintenance query: attempt + retry under faults.

        Transient failures (injected by a
        :class:`~repro.faults.injector.FaultInjector`, or raised by any
        custom source) are retried under the engine's
        :class:`~repro.faults.retry.RetryPolicy`; every attempt re-pays
        the request round trip and every backoff sleep is charged to the
        virtual clock, so faulty runs honestly cost more.  Exhausted
        retries raise :class:`~repro.sources.errors
        .SourceUnavailableError` — deliberately *not* a
        :class:`BrokenQueryError`, so in-exec detection never mistakes
        an outage for a broken-query anomaly.
        """
        from ..sources.errors import TransientSourceError

        hit = self.aux_answer(effect)
        if hit is None:
            hit = self.cached_answer(effect)
        if hit is not None:
            return hit
        state = RetryState(self, effect)
        while True:
            try:
                return self._attempt_query(effect)
            except TransientSourceError as exc:
                elapsed = getattr(exc, "elapsed", 0.0)
                if elapsed > 0:
                    # A timeout is not free: the view manager waited.
                    self.metrics.charge(effect.kind, elapsed)
                    self.advance_by(elapsed)
                self.tracer.record(
                    self.clock.now, trace_kinds.FAULT, str(exc)
                )
                pause = state.on_transient(exc, self.clock.now)
                self.advance_by(pause)

    # -- query-path building blocks (shared with the parallel workers) --

    def cached_answer(self, effect: SourceQuery) -> QueryAnswer | None:
        """Serve a cacheable query from the snapshot cache, if armed.

        The answer is pinned at the *entry* instant — the cache patches
        it forward through every commit `<= now`, so it equals what a
        zero-latency round trip would have returned — and only then is
        the (tiny) serve cost charged, exactly like the transfer window
        of a real trip: commits firing during the charge have
        ``committed_at > answered_at`` and are correctly neither in the
        answer nor compensated.
        """
        if self.snapshot_cache is None or not effect.cacheable:
            return None
        hit = self.snapshot_cache.serve(
            self.sources[effect.source_name], effect.query
        )
        if hit is None:
            return None
        answered_at = self.clock.now
        self.tracer.record(
            answered_at,
            trace_kinds.QUERY,
            f"{effect.source_name} -> {len(hit.table)} tuples "
            f"(cache{', patched' if hit.patched else ''})",
        )
        serve_cost = self.cost_model.cache_serve(hit.patched_rows)
        self.metrics.charge(effect.kind, serve_cost)
        self.advance_by(serve_cost)
        return QueryAnswer(hit.table, answered_at)

    def aux_answer(self, effect: SourceQuery) -> QueryAnswer | None:
        """Serve a query from the self-maintenance aux store, if armed.

        Tried *before* the snapshot cache: a covered probe is answered
        from the synced replica even on its first occurrence.  The same
        answered-at pinning as :meth:`cached_answer` applies — the
        replica is synced through every commit ``<= now``, so the
        answer equals a zero-latency round trip's.
        """
        if self.selfmaint is None or not effect.cacheable:
            return None
        hit = self.selfmaint.serve(
            self.sources[effect.source_name], effect.query
        )
        if hit is None:
            return None
        answered_at = self.clock.now
        self.tracer.record(
            answered_at,
            trace_kinds.QUERY,
            f"{effect.source_name} -> {len(hit.table)} tuples "
            f"(aux{', synced' if hit.applied_rows else ''})",
        )
        serve_cost = self.cost_model.aux_serve(hit.applied_rows)
        self.metrics.charge(effect.kind, serve_cost)
        self.advance_by(serve_cost)
        return QueryAnswer(hit.table, answered_at)

    def query_request_cost(self, effect: SourceQuery) -> float:
        """Virtual cost of shipping+executing the request at the source
        (everything before the answer exists)."""
        query = effect.query
        probe_values = _probe_value_count(query)
        if probe_values is not None:
            return self.cost_model.query_base + (
                probe_values * self.cost_model.query_per_probe_value
            )
        scanned = _scanned_tuples(self.sources[effect.source_name], query)
        return self.cost_model.query_base + (
            scanned * self.cost_model.query_per_scanned_tuple
        )

    def evaluate_query(self, effect: SourceQuery) -> Table:
        """Evaluate against the source's *current* state — the caller
        must have advanced the clock to the answer instant first.  May
        raise BrokenQueryError / TransientSourceError."""
        source = self.sources[effect.source_name]
        result = source.execute(effect.query)
        if self.selfmaint is not None:
            # Travelling full scans (view adaptation's reads — never
            # cacheable, so they always reach this point) re-seed any
            # aux replica a schema change invalidated, for free.
            self.selfmaint.observe(source, effect.query, result)
        if self.snapshot_cache is not None and effect.cacheable:
            # Stamp with the version at the evaluation instant: the
            # answer reflects exactly the commits in log[:version].
            self.snapshot_cache.store(
                source, effect.query, result, source.commit_version
            )
        self.tracer.record(
            self.clock.now,
            trace_kinds.QUERY,
            f"{effect.source_name} -> {len(result)} tuples",
        )
        return result

    def transfer_cost(self, result: Table) -> float:
        return len(result) * self.cost_model.query_per_result_tuple

    def _attempt_query(self, effect: SourceQuery) -> QueryAnswer:
        # The request/execution window: autonomous commits inside it are
        # visible to (or break) the query.
        self.metrics.source_round_trips += 1
        request_cost = self.query_request_cost(effect)
        self.metrics.charge(effect.kind, request_cost)
        self.advance_by(request_cost)
        answered_at = self.clock.now
        result = self.evaluate_query(effect)  # may raise BrokenQueryError
        transfer = self.transfer_cost(result)
        self.metrics.charge(effect.kind, transfer)
        self.advance_by(transfer)
        return QueryAnswer(result, answered_at)

    # ------------------------------------------------------------------
    # driving maintenance generators
    # ------------------------------------------------------------------

    def run_process(self, process: MaintenanceProcess) -> object:
        """Drive a maintenance generator to completion.

        Broken queries are thrown *into* the generator so the algorithm
        can handle them (abort, flag, compensate); an unhandled
        BrokenQueryError propagates to the caller.
        """
        from ..sources.errors import BrokenQueryError

        try:
            effect = next(process)
        except StopIteration as stop:
            return stop.value
        while True:
            try:
                result = self.perform(effect)
            except BrokenQueryError as exc:
                self.metrics.broken_queries += 1
                self.tracer.record(
                    self.clock.now, trace_kinds.BROKEN, str(exc)
                )
                try:
                    effect = process.throw(exc)
                except StopIteration as stop:
                    return stop.value
                continue
            try:
                effect = process.send(result)
            except StopIteration as stop:
                return stop.value


class RetryState:
    """The retry decision core of one logical maintenance query.

    Shared by the serial blocking path (:meth:`SimEngine._perform_query`)
    and the parallel workers' non-blocking query state machine, so both
    burn the same budget, observe the same per-query deadline (anchored
    at the first attempt), and charge the same backoff costs.  The caller
    owns the clock: it charges any timeout wait (``exc.elapsed``) before
    calling, and sleeps the returned pause after.
    """

    def __init__(self, engine: SimEngine, effect: SourceQuery) -> None:
        self._engine = engine
        self._effect = effect
        self._policy = engine.retry_policy
        self._deadline = (
            engine.clock.now + self._policy.deadline
            if self._policy is not None and self._policy.deadline > 0
            else None
        )
        self.failures = 0

    def on_transient(self, exc: Exception, now: float) -> float:
        """Account one transient failure at instant ``now``; return the
        backoff pause before the next attempt, or raise
        :class:`~repro.sources.errors.SourceUnavailableError` when the
        retry budget or the per-query deadline is exhausted."""
        from ..sources.errors import SourceUnavailableError

        engine = self._engine
        effect = self._effect
        policy = self._policy
        self.failures += 1
        engine.metrics.transient_failures += 1
        if policy is None or self.failures >= policy.max_attempts:
            engine.metrics.exhausted_queries += 1
            raise SourceUnavailableError(
                effect.source_name,
                self.failures,
                "retry budget exhausted",
                last_error=exc,
            ) from exc
        pause = engine.cost_model.retry_pause(
            policy.backoff(self.failures, salt=effect.source_name)
        )
        if self._deadline is not None and now + pause > self._deadline:
            engine.metrics.exhausted_queries += 1
            raise SourceUnavailableError(
                effect.source_name,
                self.failures,
                f"per-query deadline ({policy.deadline:g}s) exceeded",
                last_error=exc,
            ) from exc
        engine.metrics.retries += 1
        engine.metrics.backoff_time += pause
        engine.metrics.charge("retry_backoff", pause)
        engine.tracer.record(
            now,
            trace_kinds.RETRY,
            f"{effect.source_name}: attempt {self.failures + 1} "
            f"after {pause:.3f}s backoff",
        )
        return pause


def _probe_value_count(query: SPJQuery) -> int | None:
    """Total IN-list size if the query is probe-style, else ``None``."""
    from ..relational.predicate import Conjunction

    predicates = []
    selection = query.selection
    if isinstance(selection, Conjunction):
        predicates = list(selection.children)
    else:
        predicates = [selection]
    sizes = [
        len(predicate.values)
        for predicate in predicates
        if isinstance(predicate, InPredicate)
    ]
    if not sizes:
        return None
    return sum(sizes)


def _scanned_tuples(source: DataSource, query: SPJQuery) -> int:
    """Rows the source must scan for a non-probe query (current state)."""
    scanned = 0
    for ref in query.relations:
        if ref.source == source.name and source.has_relation(ref.relation):
            scanned += len(source.catalog.table(ref.relation))
    return scanned
