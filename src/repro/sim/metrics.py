"""Metrics collected during a simulated run.

The paper reports two headline quantities per experiment: the total
maintenance cost (y-axes of Figures 8-12, "the maintenance cost includes
the abort cost") and the *abort cost* — view-manager time spent on
maintenance attempts that a broken query later forced to be discarded.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields
from typing import Iterable

#: fields that are high-water marks, not additive counters: a merge
#: across schedulers takes their max (two shards running side by side
#: finish when the slowest one does; their peak widths do not add
#: because each pool dispatches against its own worker timeline)
_GAUGE_FIELDS = frozenset({"makespan", "peak_parallelism"})


@dataclass
class Metrics:
    """Accumulators for one simulated run."""

    #: view-manager busy time, by work kind (query, vs_rewrite, ...)
    busy_time: Counter = field(default_factory=Counter)
    #: total time of maintenance attempts that were aborted
    abort_cost: float = 0.0
    #: number of maintenance attempts aborted by broken queries
    aborts: int = 0
    #: number of broken queries observed (>= aborts is possible if a
    #: single attempt breaks multiple queries before aborting)
    broken_queries: int = 0
    #: number of updates whose maintenance committed to the view
    maintained_updates: int = 0
    #: maintenance units whose computation committed — the number of
    #: maintenance *rounds* paid; with group maintenance one round can
    #: cover many updates, so rounds << maintained_updates
    maintenance_rounds: int = 0
    #: messages coalesced into voluntary batches by the BatchPolicy
    grouped_messages: int = 0
    #: voluntary batches formed from safe UMQ runs
    batches_formed: int = 0
    #: number of view refresh transactions
    view_refreshes: int = 0
    #: number of pre-exec detection/correction rounds executed
    detection_rounds: int = 0
    #: number of dependency-graph builds
    graph_builds: int = 0
    #: from-scratch rebuild fallbacks inside the incremental substrate
    graph_rebuilds: int = 0
    #: incremental graph updates (node adds, head removals, remaps)
    incremental_graph_updates: int = 0
    #: footprint-cache hits (footprints served without recomputation)
    footprint_cache_hits: int = 0
    #: footprint-cache misses (footprints computed and cached)
    footprint_cache_misses: int = 0
    #: number of cycle merges performed during correction
    cycle_merges: int = 0
    #: tuples written into the view (net traffic)
    view_delta_tuples: int = 0
    #: autonomous commits rejected by their own source (stale intents)
    failed_commits: int = 0
    #: transient maintenance-query failures observed (injected faults,
    #: crash-window rejections, timeouts) — never counted as broken
    transient_failures: int = 0
    #: maintenance-query retries performed after transient failures
    retries: int = 0
    #: virtual time spent in retry backoff sleeps (included in busy time
    #: under the ``"retry_backoff"`` kind)
    backoff_time: float = 0.0
    #: queries abandoned after exhausting their retry budget
    exhausted_queries: int = 0
    #: virtual clock at quiescence under the parallel executor — the
    #: critical-path completion time across worker timelines (serial
    #: runs leave this at 0.0 and report ``maintenance_cost`` instead)
    makespan: float = 0.0
    #: per-worker busy time (index -> virtual seconds doing maintenance)
    worker_busy_time: Counter = field(default_factory=Counter)
    #: units handed to parallel workers
    dispatched_units: int = 0
    #: widest antichain actually dispatched at once
    peak_parallelism: int = 0
    #: probe queries that rode a coalesced per-source batch trip
    batched_queries: int = 0
    #: combined IN-list round trips issued on behalf of >= 2 units
    batch_round_trips: int = 0
    #: maintenance queries that actually travelled to a source (every
    #: attempt, including retries and batched combined trips)
    source_round_trips: int = 0
    #: maintenance queries answered by the snapshot cache
    cache_hits: int = 0
    #: cacheable queries the snapshot cache could not answer
    cache_misses: int = 0
    #: cache hits that required forward delta patching (stale stamp)
    patched_answers: int = 0
    #: round trips avoided locally (cache hits plus auxiliary-store
    #: hits; kept as its own counter so summaries read directly)
    saved_round_trips: int = 0
    #: cache entries dropped because a schema change committed in the
    #: version gap (broken-query semantics preserved, Thm. 1)
    cache_invalidations_sc: int = 0
    #: maintenance queries answered by the self-maintenance aux store
    aux_hits: int = 0
    #: aux-eligible queries the store could not cover
    aux_misses: int = 0
    #: aux replicas dropped by a schema change in the version gap
    #: (the same Theorem 1 rule the snapshot cache enforces)
    aux_invalidations_sc: int = 0
    #: signed delta tuples folded into aux replicas while syncing
    aux_applied_rows: int = 0
    #: data-update maintenance units whose compute phase committed
    #: (the denominator for the self-maintained fraction)
    data_unit_rounds: int = 0
    #: data-update units maintained with zero source round trips
    self_maintained_units: int = 0
    #: write-ahead journal entries appended (queue mutations + installs)
    journal_entries: int = 0
    #: bytes appended to the maintenance journal
    journal_bytes: int = 0
    #: durable checkpoints taken (journal truncated at each)
    checkpoints_taken: int = 0
    #: warehouse crash recoveries performed
    recoveries: int = 0
    #: journal entries scanned during recovery replays
    replayed_entries: int = 0
    #: update messages a shard router delivered into this scheduler's
    #: UMQ (sharded runs only; serial runs leave these at 0)
    router_delivered: int = 0
    #: update messages the shard router filtered out of this shard's
    #: stream because no registered view references the touched relation
    router_dropped: int = 0
    #: coordinator rounds this shard spent deferring an SC-bearing head
    #: unit behind the cross-shard barrier
    barrier_deferrals: int = 0
    #: barrier deadlock-avoidance releases (the earliest-SC shard was
    #: allowed to proceed although peers still held pre-SC messages)
    barrier_releases: int = 0
    #: compiled-plan cache hits harvested while this scheduler stepped
    #: (the process-global :data:`~repro.relational.plan.PLAN_CACHE`
    #: deltas are attributed to the shard whose step incurred them, so
    #: sharded runs report kernel cache efficiency per shard)
    plan_cache_hits: int = 0
    #: plan compilations (cache misses) harvested while stepping
    plan_cache_recompiles: int = 0
    #: plan-cache evictions harvested while stepping
    plan_cache_evictions: int = 0
    #: point/scan reads served by the read front end
    reads_served: int = 0
    #: summed read service + queueing latency (virtual seconds)
    read_latency_time: float = 0.0
    #: summed time reads spent queued for a free front-end server
    read_wait_time: float = 0.0
    #: reads that observed a stale version (>= 1 routed committed
    #: update was not yet visible in the served extent version)
    stale_reads: int = 0
    #: summed staleness over all reads (age of the oldest committed
    #: update invisible to the served version; virtual seconds)
    staleness_time: float = 0.0
    #: broken-query anomalies by Section 3.1 type (3 = SC vs M(DU),
    #: 4 = SC vs M(SC)); types 1-2 never abort — they are absorbed by
    #: compensation and visible in the manager's CompensationLog
    anomalies: Counter = field(default_factory=Counter)

    def charge(self, kind: str, duration: float) -> None:
        self.busy_time[kind] += duration

    @classmethod
    def merge(cls, runs: Iterable["Metrics"]) -> "Metrics":
        """Aggregate several per-scheduler runs into one view.

        Counter-valued fields (busy time, worker busy time, anomalies)
        sum per key; scalar counters sum; makespan-style gauges (see
        ``_GAUGE_FIELDS``) take the max.  This replaces the ad-hoc
        per-field aggregation ablation code used to do by hand, and
        automatically covers counters added later.

        Note the merged ``elapsed`` sums serial busy time across
        schedulers; a sharded coordinator that wants the *aggregate
        makespan* (completion time of the slowest shard) should set
        ``merged.makespan = max(run.elapsed for run in runs)``.
        """
        merged = cls()
        for run in runs:
            for spec in fields(cls):
                current = getattr(merged, spec.name)
                incoming = getattr(run, spec.name)
                if isinstance(current, Counter):
                    current.update(incoming)
                elif spec.name in _GAUGE_FIELDS:
                    setattr(merged, spec.name, max(current, incoming))
                else:
                    setattr(merged, spec.name, current + incoming)
        return merged

    @property
    def total_busy_time(self) -> float:
        return sum(self.busy_time.values())

    @property
    def maintenance_cost(self) -> float:
        """Total cost as the paper charts it (work including aborts)."""
        return self.total_busy_time

    @property
    def elapsed(self) -> float:
        """Wall-clock analogue: makespan when workers ran in parallel,
        summed busy time for a serial drain."""
        return self.makespan if self.makespan > 0.0 else self.total_busy_time

    def worker_utilization(self) -> dict[int, float]:
        """Fraction of the makespan each worker spent busy."""
        if self.makespan <= 0.0:
            return {}
        return {
            worker: round(busy / self.makespan, 4)
            for worker, busy in sorted(self.worker_busy_time.items())
        }

    def summary(self) -> dict[str, float]:
        return {
            "maintenance_cost": round(self.maintenance_cost, 6),
            "abort_cost": round(self.abort_cost, 6),
            "aborts": self.aborts,
            "broken_queries": self.broken_queries,
            "maintained_updates": self.maintained_updates,
            "maintenance_rounds": self.maintenance_rounds,
            "grouped_messages": self.grouped_messages,
            "batches_formed": self.batches_formed,
            "view_refreshes": self.view_refreshes,
            "detection_rounds": self.detection_rounds,
            "graph_builds": self.graph_builds,
            "graph_rebuilds": self.graph_rebuilds,
            "incremental_graph_updates": self.incremental_graph_updates,
            "footprint_cache_hits": self.footprint_cache_hits,
            "footprint_cache_misses": self.footprint_cache_misses,
            "cycle_merges": self.cycle_merges,
            "transient_failures": self.transient_failures,
            "retries": self.retries,
            "backoff_time": round(self.backoff_time, 6),
            "exhausted_queries": self.exhausted_queries,
            "makespan": round(self.makespan, 6),
            "dispatched_units": self.dispatched_units,
            "peak_parallelism": self.peak_parallelism,
            "batched_queries": self.batched_queries,
            "batch_round_trips": self.batch_round_trips,
            "source_round_trips": self.source_round_trips,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "patched_answers": self.patched_answers,
            "saved_round_trips": self.saved_round_trips,
            "cache_invalidations_sc": self.cache_invalidations_sc,
            "aux_hits": self.aux_hits,
            "aux_misses": self.aux_misses,
            "aux_invalidations_sc": self.aux_invalidations_sc,
            "aux_applied_rows": self.aux_applied_rows,
            "data_unit_rounds": self.data_unit_rounds,
            "self_maintained_units": self.self_maintained_units,
            "journal_entries": self.journal_entries,
            "journal_bytes": self.journal_bytes,
            "checkpoints_taken": self.checkpoints_taken,
            "recoveries": self.recoveries,
            "replayed_entries": self.replayed_entries,
            "router_delivered": self.router_delivered,
            "router_dropped": self.router_dropped,
            "barrier_deferrals": self.barrier_deferrals,
            "barrier_releases": self.barrier_releases,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_recompiles": self.plan_cache_recompiles,
            "plan_cache_evictions": self.plan_cache_evictions,
            "reads_served": self.reads_served,
            "read_latency_time": round(self.read_latency_time, 6),
            "read_wait_time": round(self.read_wait_time, 6),
            "stale_reads": self.stale_reads,
            "staleness_time": round(self.staleness_time, 6),
            "worker_utilization": self.worker_utilization(),
            "anomalies": {
                kind.name: count for kind, count in self.anomalies.items()
            },
            "busy_breakdown": self.busy_breakdown(),
        }

    def busy_breakdown(self) -> dict[str, float]:
        """Busy time per work kind, rounded (query/vs/va/refresh/...)."""
        return {
            kind: round(duration, 3)
            for kind, duration in sorted(self.busy_time.items())
        }
