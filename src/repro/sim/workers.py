"""Worker timelines for the parallel maintenance executor.

The serial Dyno loop charges every maintenance effect to one global
clock: total cost *is* elapsed time.  The parallel executor instead runs
N simulated workers, each driving one maintenance-unit generator, and
elapsed time becomes the **makespan** — the virtual clock at quiescence,
i.e. the completion time of the critical path across worker timelines.

This module holds the timeline primitives; the scheduling *policy*
(which unit may run when) lives in :mod:`repro.core.parallel`:

* :class:`WorkerState` — one worker: the unit it is maintaining, its
  generator, its pending-message overlay (the messages SWEEP
  compensation must treat as *behind* the unit), and busy-time
  accounting for utilization metrics;
* :class:`QueryJob` — one worker's logical maintenance query, with its
  own :class:`~repro.sim.engine.RetryState` so faults burn the same
  budget as the serial path;
* :class:`Trip` — one round trip on a source's query channel; a trip
  carrying several jobs is a *batch*: independent units maintaining
  against the same source coalesce their IN-list probes into one
  combined request, paying ``query_base`` once;
* :class:`SourceChannel` — per-source admission: a source accepts only
  ``CostModel.source_channel_limit`` concurrent trips, so parallel
  speedup saturates realistically; waiting *batchable* jobs coalesce
  when a slot frees — contention is exactly what creates batches;
* :class:`WorkerPool` — the worker set plus peak-parallelism tracking.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..sources.messages import UpdateMessage
from ..views.umq import MaintenanceUnit
from .effects import SourceQuery
from .engine import MaintenanceProcess, RetryState


@dataclass
class WorkerState:
    """One simulated maintenance worker."""

    index: int
    #: unit being maintained (None = idle)
    unit: MaintenanceUnit | None = None
    process: MaintenanceProcess | None = None
    #: virtual time the unit was handed to this worker
    dispatched_at: float = 0.0
    #: messages serialized *behind* the unit (dispatch-order
    #: serialization): the queue snapshot at dispatch, later arrivals,
    #: and messages of units requeued by aborts — deduplicated by id
    pending: list[UpdateMessage] = field(default_factory=list)
    _pending_ids: set[int] = field(default_factory=set)
    #: total busy virtual time across all units (utilization metric)
    busy_time: float = 0.0
    #: maintenance queries this worker had answered by the snapshot
    #: cache (zero channel occupancy, no trip)
    cache_serves: int = 0
    #: maintenance queries answered by the self-maintenance aux store
    aux_serves: int = 0
    #: wire round trips paid for the *current* unit (retries and batch
    #: participations included) — zero at install means the unit was
    #: fully self-maintained
    wire_trips: int = 0
    #: assignment epoch: bumped on every assign/release so that events
    #: scheduled for a torn-down (or since-reassigned) worker can detect
    #: they are stale and do nothing
    generation: int = 0
    #: query answers this worker's process has consumed for the current
    #: unit — an answer consumed before a unit requeue may have baked
    #: the requeued unit's effect in as "serialized before", so any
    #: worker with ``answers_seen > 0`` must restart on requeue
    answers_seen: int = 0
    #: prepared outcome parked until this unit's turn in dispatch order
    outcome: object = None
    outcome_ready: bool = False

    @property
    def idle(self) -> bool:
        return self.unit is None

    def assign(
        self,
        unit: MaintenanceUnit,
        process: MaintenanceProcess,
        at: float,
        pending: list[UpdateMessage],
    ) -> None:
        self.unit = unit
        self.process = process
        self.dispatched_at = at
        self.generation += 1
        self.answers_seen = 0
        self.wire_trips = 0
        self.outcome = None
        self.outcome_ready = False
        self.pending = []
        self._pending_ids = set()
        for message in pending:
            self.add_pending(message)

    def add_pending(self, message: UpdateMessage) -> None:
        if id(message) not in self._pending_ids:
            self._pending_ids.add(id(message))
            self.pending.append(message)

    def pending_feed(self) -> Callable[[], list[UpdateMessage]]:
        """The overlay callable handed to the view manager's
        compensation facade (live: sees arrivals after dispatch)."""
        return lambda: list(self.pending)

    def release(self) -> MaintenanceUnit:
        unit = self.unit
        assert unit is not None
        self.unit = None
        self.process = None
        self.generation += 1
        self.answers_seen = 0
        self.wire_trips = 0
        self.outcome = None
        self.outcome_ready = False
        self.pending = []
        self._pending_ids = set()
        return unit


@dataclass
class QueryJob:
    """One worker's logical maintenance query (a trip participant)."""

    worker: WorkerState
    effect: SourceQuery
    retry: RetryState
    #: request cost of this job alone (``query_base`` + per-probe/scan)
    request_cost: float = 0.0
    #: the worker's assignment epoch at submission; a mismatch at any
    #: later step means the unit was torn down (abort/abandon/restart)
    #: and this job is stale
    generation: int = 0

    @property
    def stale(self) -> bool:
        return self.worker.generation != self.generation


@dataclass
class Trip:
    """One round trip occupying a channel slot.

    ``jobs`` has one entry for a plain trip, several for a coalesced
    batch; every participant's query is evaluated at the same instant
    (the shared answer time) and each answer transfers back to its own
    worker independently.
    """

    source_name: str
    jobs: list[QueryJob]
    started_at: float = 0.0
    answer_at: float = 0.0

    @property
    def is_batch(self) -> bool:
        return len(self.jobs) > 1

    def combined_request_cost(self, query_base: float) -> float:
        """``query_base`` paid once; per-probe/per-scan parts add up."""
        if not self.jobs:
            return 0.0
        total = query_base
        for job in self.jobs:
            total += job.request_cost - query_base
        return total


class SourceChannel:
    """Admission control for one source's maintenance queries.

    ``limit`` trips run concurrently; further jobs wait in FIFO order.
    When capacity frees, the head waiter departs — and if it is
    *batchable*, every other waiting batchable job departs with it as
    one combined trip (non-batchable scans always travel alone).
    """

    def __init__(self, name: str, limit: int) -> None:
        self.name = name
        self.limit = max(1, limit)
        self.in_flight = 0
        self.waiting: deque[QueryJob] = deque()

    @property
    def has_capacity(self) -> bool:
        return self.in_flight < self.limit

    def submit(self, job: QueryJob) -> Trip | None:
        """Offer a job; returns the trip to start now, or ``None`` if
        the job queued behind the channel's capacity."""
        self.waiting.append(job)
        return self.next_trip()

    def next_trip(self) -> Trip | None:
        """Form the next trip from the waiting line, if a slot is free.

        Jobs whose unit was torn down while they waited (stale
        generation) are silently discarded — their worker has been
        released or reassigned and nobody is listening for the answer.
        """
        while self.waiting and self.waiting[0].stale:
            self.waiting.popleft()
        if not self.waiting or not self.has_capacity:
            return None
        head = self.waiting.popleft()
        jobs = [head]
        if head.effect.batchable:
            rest: deque[QueryJob] = deque()
            while self.waiting:
                job = self.waiting.popleft()
                if job.stale:
                    continue
                if job.effect.batchable:
                    jobs.append(job)
                else:
                    rest.append(job)
            self.waiting = rest
        self.in_flight += 1
        return Trip(self.name, jobs)

    def release(self) -> None:
        assert self.in_flight > 0
        self.in_flight -= 1


class WorkerPool:
    """N workers plus cross-worker accounting."""

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError("worker count must be >= 1")
        self.workers = [WorkerState(index) for index in range(count)]
        self.peak_parallelism = 0

    def __len__(self) -> int:
        return len(self.workers)

    def idle_worker(self) -> WorkerState | None:
        for worker in self.workers:
            if worker.idle:
                return worker
        return None

    def busy_workers(self) -> list[WorkerState]:
        return [worker for worker in self.workers if not worker.idle]

    @property
    def any_busy(self) -> bool:
        return any(not worker.idle for worker in self.workers)

    @property
    def all_idle(self) -> bool:
        return not self.any_busy

    def note_parallelism(self) -> None:
        busy = len(self.busy_workers())
        if busy > self.peak_parallelism:
            self.peak_parallelism = busy

    def in_flight_units(self) -> list[MaintenanceUnit]:
        return [
            worker.unit
            for worker in self.workers
            if worker.unit is not None
        ]
