"""Effects: what a maintenance process asks the simulation to do.

Maintenance algorithms (VM/VS/VA) are written as plain Python generators
that *yield* effect objects and receive results back via ``send``.  The
engine interprets each effect: it advances the virtual clock by the
effect's cost and interleaves any autonomous source commits that fall
inside the window — which is exactly how concurrent updates sneak into
query answers (duplication anomaly) or break queries (broken-query
anomaly).

Writing algorithms in effect style keeps them testable in isolation
(drive the generator by hand) and keeps all timing policy in one place
(the cost model).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.query import SPJQuery


class Effect:
    """Base class of all yieldable effects."""


@dataclass(frozen=True)
class Delay(Effect):
    """Consume ``duration`` seconds of view-manager time.

    ``kind`` labels the work for metrics breakdown (e.g. ``"vs_rewrite"``,
    ``"va_install"``, ``"detection"``).
    """

    duration: float
    kind: str = "compute"


@dataclass(frozen=True)
class SourceQuery(Effect):
    """Send an SPJ query to one source and await the answer.

    The engine charges the cost model's estimate for the round trip,
    advances the clock across the window (processing autonomous commits
    that land inside it), then evaluates the query against the source's
    *current* state.  A concurrent schema change inside the window makes
    the evaluation raise
    :class:`~repro.sources.errors.BrokenQueryError`, which the engine
    throws *into* the maintenance generator — in-exec detection.
    """

    source_name: str
    query: SPJQuery
    kind: str = "maintenance_query"
    #: an indexed IN-list probe the parallel executor may coalesce with
    #: probes from other concurrently maintained units against the same
    #: source (one combined round trip, ``query_base`` charged once);
    #: full-relation scans and adaptation reads never batch
    batchable: bool = False
    #: eligible for the snapshot cache (single-relation probes/scans the
    #: view manager can patch forward locally); opt-in per yield site so
    #: ad-hoc queries in tests and examples keep exact trip counts
    cacheable: bool = False


@dataclass(frozen=True)
class Checkpoint(Effect):
    """Zero-cost marker; returns the current virtual time.

    Maintenance processes use checkpoints to timestamp the states they
    observed (needed by compensation to decide which logged updates were
    concurrent with a query answer).
    """
