"""Virtual time.

All durations in the reproduction are *virtual seconds* produced by the
cost model; the clock only ever moves forward.  Using virtual time makes
every experiment deterministic and lets us reproduce the paper's timing
figures (which were wall-clock seconds on 2003 hardware) as shapes rather
than chasing absolute numbers.
"""

from __future__ import annotations

from ..relational.errors import ReproError


class ClockError(ReproError):
    """Attempted to move the simulation clock backwards."""


class SimClock:
    """A monotonically advancing virtual clock."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, instant: float) -> None:
        if instant < self._now - 1e-12:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {instant}"
            )
        if instant > self._now:
            self._now = instant

    def advance_by(self, duration: float) -> float:
        if duration < 0:
            raise ClockError(f"negative duration {duration}")
        self._now += duration
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
