"""Discrete-event simulation substrate: clock, effects, costs, engine."""

from .clock import ClockError, SimClock
from .costs import CostModel
from .effects import Checkpoint, Delay, Effect, SourceQuery
from .engine import MaintenanceProcess, QueryAnswer, SimEngine
from .metrics import Metrics
from .trace import TraceEvent, Tracer

__all__ = [
    "Checkpoint",
    "ClockError",
    "CostModel",
    "Delay",
    "Effect",
    "MaintenanceProcess",
    "Metrics",
    "QueryAnswer",
    "SimClock",
    "TraceEvent",
    "Tracer",
    "SimEngine",
    "SourceQuery",
]
