"""Typed execution traces.

A :class:`Tracer` records what happened during a simulated run as typed
events — source commits, maintenance queries, aborts, corrections, view
refreshes — each stamped with virtual time.  Traces power debugging,
the timeline views in examples, and assertions in tests that need to
inspect *when* things happened rather than just aggregate metrics.

Tracing is off by default (`SimEngine(trace=False)`): recording is a
no-op then, so the hot path pays a single boolean check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    at: float
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.at:12.3f}] {self.kind:<12} {self.detail}"


#: event kinds recorded by the engine and scheduler
COMMIT = "commit"
QUERY = "query"
BROKEN = "broken"
ABORT = "abort"
CORRECTION = "correction"
REFRESH = "refresh"
FAULT = "fault"
RETRY = "retry"
QUARANTINE = "quarantine"
RESUME = "resume"
BATCH = "batch"


@dataclass
class Tracer:
    """An append-only, optionally disabled event log."""

    enabled: bool = False
    events: list[TraceEvent] = field(default_factory=list)

    def record(self, at: float, kind: str, detail: str) -> None:
        if self.enabled:
            self.events.append(TraceEvent(at, kind, detail))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def between(self, start: float, end: float) -> list[TraceEvent]:
        return [
            event for event in self.events if start <= event.at <= end
        ]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def timeline(self, limit: int | None = None) -> str:
        """A printable chronological view (last ``limit`` events)."""
        events = self.events if limit is None else self.events[-limit:]
        return "\n".join(str(event) for event in events)

    def clear(self) -> None:
        self.events.clear()
