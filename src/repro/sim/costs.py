"""Cost model: virtual durations for maintenance work.

The paper's evaluation ran on four Pentium III PCs with Oracle8i; we
replace wall time with a parametric cost model calibrated to reproduce
the paper's *regimes*:

* maintaining one data update is cheap (sub-second): a handful of
  indexed probe queries plus a small view refresh;
* maintaining one schema change is expensive (tens of seconds): a view
  definition rewrite plus view adaptation that rejoins whole relations;
* therefore aborting an in-flight schema-change maintenance wastes far
  more work than aborting a data-update maintenance — the asymmetry all
  of Figures 9-12 rests on.

Every knob is a public field so ablation benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """Durations (virtual seconds) charged for maintenance operations."""

    #: fixed round-trip overhead of any maintenance query
    query_base: float = 0.010
    #: per value shipped in an IN-list probe
    query_per_probe_value: float = 0.0002
    #: per tuple returned by a source query
    query_per_result_tuple: float = 0.0005
    #: per tuple scanned when the query cannot use the probe list
    #: (full-relation reads during view adaptation)
    query_per_scanned_tuple: float = 0.0004
    #: applying one delta tuple to the materialized view
    refresh_per_tuple: float = 0.0002
    #: fixed cost of one view refresh transaction
    refresh_base: float = 0.005
    #: rewriting the view definition after a schema change (VS)
    vs_rewrite: float = 2.0
    #: fixed cost of one view adaptation pass (VA)
    va_base: float = 1.0
    #: per tuple recomputed/installed during view adaptation
    va_per_tuple: float = 0.0004
    #: fixed overhead of re-issuing a maintenance query after a
    #: transient failure (connection re-establishment, request resend)
    retry_overhead: float = 0.002
    #: serving a maintenance-query answer from the local snapshot cache
    #: (lookup + version comparison; no network, no source execution)
    cache_hit: float = 0.0005
    #: applying one gap-delta tuple while patching a stale cached
    #: answer forward to the current source version
    patch_per_row: float = 0.00005
    #: serving a maintenance query from the self-maintenance auxiliary
    #: store (local replica lookup + evaluation; no network) — cheaper
    #: than ``cache_hit`` because no per-query memo is consulted
    aux_hit: float = 0.0004
    #: folding one committed gap-delta tuple into an auxiliary replica
    aux_update_per_row: float = 0.00004
    #: pre-exec detection: checking the schema-change flag
    detection_flag_check: float = 0.00001
    #: building one dependency-graph node
    detection_per_node: float = 0.0001
    #: building/classifying one dependency edge
    detection_per_edge: float = 0.0001
    #: incremental substrate: touching one node (cached footprint
    #: lookup / index remap) instead of building it from scratch
    detection_incremental_per_node: float = 0.00002
    #: incremental substrate: one conflict test / edge remap against
    #: cached footprints
    detection_incremental_per_edge: float = 0.00002
    #: topological sort / cycle merge, per node + edge
    correction_per_element: float = 0.0001
    #: handing one maintenance unit to a parallel worker (ready-set
    #: lookup, context handoff) — charged to the dispatching round
    dispatch_overhead: float = 0.002
    #: folding one message into a voluntary batch (safe-run scan share,
    #: queue surgery, delta merge) — charged when a BatchPolicy groups
    #: a run of the UMQ
    batch_merge_per_message: float = 0.0002
    #: maintenance-query trips one source accepts concurrently; extra
    #: trips queue at the source, so parallel speedup saturates
    #: realistically instead of scaling without bound
    source_channel_limit: int = 1
    #: fixed latency of one write-ahead journal append (fsync'd record)
    journal_append_base: float = 0.0001
    #: per byte serialized into a journal entry
    journal_append_per_byte: float = 0.0000001
    #: fixed cost of taking one durable checkpoint
    checkpoint_base: float = 0.01
    #: per tuple snapshotted into a checkpoint (extents + cached answers)
    checkpoint_per_tuple: float = 0.00005
    #: per journal entry scanned/applied during recovery replay
    replay_per_entry: float = 0.0002
    #: fixed cost of one front-end point read against a view extent
    #: (index lookup on the serving replica; no source involved)
    read_point_base: float = 0.0002
    #: fixed cost of one front-end scan read (predicate pass start-up)
    read_scan_base: float = 0.0005
    #: per tuple touched by a front-end scan read
    read_scan_per_tuple: float = 0.000001
    #: concurrent read servers per shard in the front-end queueing
    #: model; extra reads wait for a free server, which is where the
    #: p99 tail comes from
    read_servers: int = 4

    # ------------------------------------------------------------------
    # derived costs
    # ------------------------------------------------------------------

    def probe_query(self, probe_values: int, result_tuples: int) -> float:
        """An indexed maintenance probe (IN-list) query."""
        return (
            self.query_base
            + probe_values * self.query_per_probe_value
            + result_tuples * self.query_per_result_tuple
        )

    def scan_query(self, scanned_tuples: int, result_tuples: int) -> float:
        """A full-relation read (view adaptation)."""
        return (
            self.query_base
            + scanned_tuples * self.query_per_scanned_tuple
            + result_tuples * self.query_per_result_tuple
        )

    def refresh(self, delta_tuples: int) -> float:
        return self.refresh_base + delta_tuples * self.refresh_per_tuple

    def retry_pause(self, backoff: float) -> float:
        """One retry round: fixed re-issue overhead plus the backoff
        sleep the :class:`~repro.faults.retry.RetryPolicy` prescribed."""
        return self.retry_overhead + backoff

    def cache_serve(self, patched_rows: int) -> float:
        """One snapshot-cache answer: local lookup plus forward-patch
        work — strictly cheaper than ``query_base`` by construction."""
        return self.cache_hit + patched_rows * self.patch_per_row

    def aux_serve(self, applied_rows: int) -> float:
        """One auxiliary-store answer: replica evaluation plus the gap
        deltas folded in — strictly cheaper than ``query_base``."""
        return self.aux_hit + applied_rows * self.aux_update_per_row

    def detection(self, nodes: int, edges: int) -> float:
        return (
            nodes * self.detection_per_node + edges * self.detection_per_edge
        )

    def detection_incremental(self, nodes: int, edges: int) -> float:
        """Detection work served by the incremental substrate (cached
        footprints, index remaps) rather than a from-scratch build."""
        return (
            nodes * self.detection_incremental_per_node
            + edges * self.detection_incremental_per_edge
        )

    def correction(self, nodes: int, edges: int) -> float:
        return (nodes + edges) * self.correction_per_element

    def batch_merge(self, messages: int) -> float:
        """Forming one voluntary batch over ``messages`` messages."""
        return messages * self.batch_merge_per_message

    def journal_append(self, entry_bytes: int) -> float:
        """One write-ahead journal record hitting stable storage."""
        return (
            self.journal_append_base
            + entry_bytes * self.journal_append_per_byte
        )

    def checkpoint(self, tuples: int) -> float:
        """One durable checkpoint over ``tuples`` snapshotted tuples."""
        return self.checkpoint_base + tuples * self.checkpoint_per_tuple

    def replay(self, entries: int) -> float:
        """Scanning/applying ``entries`` journal entries at recovery."""
        return entries * self.replay_per_entry

    def point_read(self) -> float:
        """One front-end point read served off a view extent."""
        return self.read_point_base

    def scan_read(self, extent_tuples: int) -> float:
        """One front-end scan read over ``extent_tuples`` view rows."""
        return self.read_scan_base + extent_tuples * self.read_scan_per_tuple

    @classmethod
    def paper_default(cls) -> "CostModel":
        """The calibrated default used by all figure reproductions."""
        return cls()

    @classmethod
    def calibrated(cls, tuples_per_relation: int) -> "CostModel":
        """Calibrate per-tuple costs to the paper's regimes regardless
        of testbed scale.

        Targets (virtual seconds), independent of ``tuples_per_relation``:

        * one data-update maintenance over the 6-relation view ≈ 0.2 s
          (Figure 8 charts ~700 s for 3000 DUs);
        * one schema-change maintenance ≈ 23 s (VS rewrite 2 s + one
          adaptation round scanning all six relations ≈ 20 s), matching
          the paper's "schema change processing is time consuming
          compared to data update processing".
        """
        n = max(1, tuples_per_relation)
        return cls(
            query_base=0.04,
            query_per_probe_value=0.0002,
            query_per_result_tuple=1.0 / n,
            query_per_scanned_tuple=2.0 / n,
            refresh_per_tuple=0.0002,
            refresh_base=0.005,
            vs_rewrite=2.0,
            va_base=1.0,
            va_per_tuple=2.0 / n,
            cache_hit=0.002,
            patch_per_row=0.1 / n,
            aux_hit=0.0015,
            aux_update_per_row=0.08 / n,
        )

    @classmethod
    def free(cls) -> "CostModel":
        """Zero-cost model for pure-logic unit tests."""
        return cls(
            query_base=0.0,
            query_per_probe_value=0.0,
            query_per_result_tuple=0.0,
            query_per_scanned_tuple=0.0,
            refresh_per_tuple=0.0,
            refresh_base=0.0,
            vs_rewrite=0.0,
            va_base=0.0,
            va_per_tuple=0.0,
            retry_overhead=0.0,
            cache_hit=0.0,
            patch_per_row=0.0,
            aux_hit=0.0,
            aux_update_per_row=0.0,
            detection_flag_check=0.0,
            detection_per_node=0.0,
            detection_per_edge=0.0,
            detection_incremental_per_node=0.0,
            detection_incremental_per_edge=0.0,
            correction_per_element=0.0,
            dispatch_overhead=0.0,
            batch_merge_per_message=0.0,
            journal_append_base=0.0,
            journal_append_per_byte=0.0,
            checkpoint_base=0.0,
            checkpoint_per_tuple=0.0,
            replay_per_entry=0.0,
            read_point_base=0.0,
            read_scan_base=0.0,
            read_scan_per_tuple=0.0,
        )
