"""Autonomous data source servers.

A :class:`DataSource` owns a catalog of relations and commits updates
*autonomously* — there is no coordination or locking with the view
manager, which is precisely what creates the paper's anomalies.  Each
commit is applied locally, sequenced, logged and pushed to subscribed
wrappers.

Queries against a source are answered from the *current* state.  If the
query references metadata that a concurrent schema change removed or
renamed, the source raises :class:`BrokenQueryError` (the broken-query
anomaly); if concurrent data updates committed before the query arrived,
their effect silently leaks into the answer (the duplication anomaly that
compensation must undo).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..relational.catalog import Catalog
from ..relational.errors import SchemaError, UnknownRelationError
from ..relational.executor import execute
from ..relational.query import SPJQuery
from ..relational.schema import RelationSchema
from ..relational.table import Table
from .errors import BrokenQueryError, UpdateApplicationError
from .messages import (
    AddAttribute,
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    SourceUpdate,
    UpdateMessage,
)

Subscriber = Callable[[UpdateMessage], None]


class DataSource:
    """One autonomous source server."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.catalog = Catalog(name)
        self.log: list[UpdateMessage] = []
        self._subscribers: list[Subscriber] = []
        self._next_seqno = 1
        #: fault-injection hook consulted at every query entry; the
        #: engine installs one when faults are armed
        #: (:meth:`~repro.sim.engine.SimEngine.install_faults`).  It may
        #: raise :class:`~repro.sources.errors.TransientSourceError` to
        #: simulate outages, timeouts and crash windows.
        self.fault_gate: Callable[[str], None] | None = None

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def create_relation(
        self, schema: RelationSchema, rows: Iterable = ()
    ) -> Table:
        """Initial (pre-integration) table creation; not logged."""
        table = self.catalog.create(schema)
        for row in rows:
            table.insert(row)
        return table

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a wrapper callback invoked after every commit."""
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    def clear_subscribers(self) -> int:
        """Sever every subscription (a crashed warehouse's wrappers are
        gone; the autonomous source keeps committing regardless).
        Returns how many subscriptions were dropped."""
        dropped = len(self._subscribers)
        self._subscribers.clear()
        return dropped

    # ------------------------------------------------------------------
    # autonomous commits
    # ------------------------------------------------------------------

    def commit(self, update: SourceUpdate, at: float = 0.0) -> UpdateMessage:
        """Apply ``update`` locally and broadcast the committed message.

        The update is applied *before* notification, so by the time the
        view manager learns of it the source state has already moved on —
        source updates cannot be aborted (Section 3.5).
        """
        self._apply(update)
        message = UpdateMessage(
            source=self.name,
            seqno=self._next_seqno,
            committed_at=at,
            payload=update,
        )
        self._next_seqno += 1
        self.log.append(message)
        for subscriber in self._subscribers:
            subscriber(message)
        return message

    def _apply(self, update: SourceUpdate) -> None:
        try:
            self._dispatch(update)
        except SchemaError as exc:
            raise UpdateApplicationError(
                f"source {self.name!r} failed to apply "
                f"{update.describe()}: {exc}"
            ) from exc

    def _dispatch(self, update: SourceUpdate) -> None:
        if isinstance(update, DataUpdate):
            table = self.catalog.table(update.relation)
            table.apply_delta(update.delta)
        elif isinstance(update, RenameRelation):
            self.catalog.rename(update.old, update.new)
        elif isinstance(update, RenameAttribute):
            self.catalog.table(update.relation).rename_attribute(
                update.old, update.new
            )
        elif isinstance(update, DropAttribute):
            self.catalog.table(update.relation).drop_attribute(
                update.attribute
            )
        elif isinstance(update, AddAttribute):
            self.catalog.table(update.relation).add_attribute(
                update.attribute, update.default
            )
        elif isinstance(update, DropRelation):
            dropped = self.catalog.drop(update.relation)
            update.dropped_extent = dropped.copy()
        elif isinstance(update, CreateRelation):
            table = self.catalog.create(update.schema)
            for row in update.rows:
                table.insert(row)
        elif isinstance(update, RestructureRelations):
            for relation in update.dropped:
                dropped = self.catalog.drop(relation)
                update.dropped_extents[relation] = dropped.copy()
            table = self.catalog.create(update.new_schema)
            for row in update.new_rows:
                table.insert(row)
        else:
            raise UpdateApplicationError(
                f"unknown update type {type(update).__name__}"
            )

    # ------------------------------------------------------------------
    # query interface
    # ------------------------------------------------------------------

    def execute(self, query: SPJQuery) -> Table:
        """Answer an SPJ query over this source's current state.

        All relations in the query must belong to this source.  Missing
        relations or attributes raise :class:`BrokenQueryError` — the
        query was built from outdated schema knowledge.
        """
        self.admit_query()
        tables: dict[str, Table] = {}
        for ref in query.relations:
            if ref.source != self.name:
                raise BrokenQueryError(
                    self.name,
                    query.sql(),
                    f"relation {ref.relation!r} belongs to source "
                    f"{ref.source!r}, not {self.name!r}",
                )
            try:
                tables[ref.alias] = self.catalog.table(ref.relation)
            except UnknownRelationError as exc:
                raise BrokenQueryError(
                    self.name, query.sql(), str(exc)
                ) from exc

        # Attribute-level validation: a schema change that only touched
        # attributes the query does not mention must NOT break it
        # (Section 3.1).
        for ref in query.all_attribute_refs():
            if ref.relation is None:
                continue
            table = tables.get(ref.relation)
            if table is not None and ref.name not in table.schema:
                raise BrokenQueryError(
                    self.name,
                    query.sql(),
                    f"attribute {ref.name!r} missing from relation "
                    f"{table.schema.name!r}",
                )

        return execute(query, tables)

    def admit_query(self) -> None:
        """Fault-injection checkpoint shared by every query entry point.

        A crashed or flaky source fails *before* looking at the query:
        transient unavailability says nothing about the query's
        validity, which is what keeps it distinguishable from the
        broken-query anomaly.
        """
        if self.fault_gate is not None:
            self.fault_gate(self.name)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def commit_version(self) -> int:
        """Monotone commit version: the number of committed updates.

        Bumped by every committed DU/SC (a failed apply raises before
        logging, so the version only moves on success).  Snapshot-cache
        entries are stamped with this counter, and
        :meth:`updates_since` enumerates exactly the commits a stamped
        answer is missing.
        """
        return len(self.log)

    def updates_since(self, version: int) -> list[UpdateMessage]:
        """Committed messages in the gap ``(version, current]``."""
        return self.log[version:]

    def schema_of(self, relation: str) -> RelationSchema:
        return self.catalog.schema(relation)

    def has_relation(self, relation: str) -> bool:
        return relation in self.catalog

    def total_rows(self) -> int:
        return sum(len(table) for table in self.catalog)

    def __repr__(self) -> str:
        return (
            f"DataSource({self.name!r}, relations="
            f"{list(self.catalog.relation_names)})"
        )
