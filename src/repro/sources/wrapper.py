"""Wrappers: the bridge between autonomous sources and the view manager.

The paper assumes "intelligent" wrappers that extract raw data changes
*and* metadata (schema-level changes, relationships with other sources).
Here a :class:`Wrapper` subscribes to a :class:`~repro.sources.source
.DataSource`, stamps each committed update with wrapper-side metadata and
forwards it to a sink — in the full system, the view manager's Update
Message Queue.

A wrapper can also impose a fixed transmission ``latency``, realized by
the simulation engine: delivery is scheduled at ``commit_time +
latency``, and any link faults from an armed
:class:`~repro.faults.injector.FaultInjector` (message delay,
drop-with-redelivery) compose on top.  Delivery stays FIFO per wrapper
regardless of per-message delays — a delayed message holds back its
successors, like an ordered transport would — because the view manager's
semantic dependencies (Definition 4) assume per-source commit order in
the UMQ.

Without an engine (or with zero total delay and nothing in flight) the
wrapper forwards synchronously, byte-for-byte the pre-fault behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .messages import UpdateMessage
from .source import DataSource

if TYPE_CHECKING:
    from ..sim.engine import SimEngine

Sink = Callable[[UpdateMessage], None]


class Wrapper:
    """Forwards committed updates from one source to one sink."""

    def __init__(
        self,
        source: DataSource,
        sink: Sink,
        latency: float = 0.0,
        engine: "SimEngine | None" = None,
    ) -> None:
        self.source = source
        self.sink = sink
        self.latency = latency
        self.engine = engine
        self.forwarded: int = 0
        self.delivered: int = 0
        #: messages committed but not yet handed to the sink, in commit
        #: order (the FIFO reorder buffer for delayed deliveries)
        self._pending: list[UpdateMessage] = []
        #: ids of pending messages whose transmission delay has elapsed
        self._arrived: set[int] = set()
        source.subscribe(self._on_commit)

    @property
    def in_flight(self) -> int:
        """Messages committed at the source but not yet delivered."""
        return self.forwarded - self.delivered

    def pending_messages(self) -> tuple[UpdateMessage, ...]:
        """Committed-but-undelivered messages, in commit order.

        These updates are already visible in source query answers, so
        compensation must treat them exactly like queued messages behind
        the unit being maintained (SWEEP would otherwise miss them and
        leave the duplication anomaly in place).
        """
        return tuple(self._pending)

    def _on_commit(self, message: UpdateMessage) -> None:
        self.forwarded += 1
        engine = self.engine
        delay = self.latency
        if engine is not None and engine.injector is not None:
            delay += engine.injector.on_forward(self.source.name)
        if engine is None or (delay <= 0 and not self._pending):
            self._deliver(message)
            return
        self._pending.append(message)
        arrival = max(message.committed_at + delay, engine.clock.now)
        from ..sim.engine import WAREHOUSE_OWNER

        engine.schedule(
            arrival,
            lambda: self._arrive(message),
            owner=WAREHOUSE_OWNER,
        )

    def _arrive(self, message: UpdateMessage) -> None:
        """The transmission delay elapsed; deliver in commit order."""
        self._arrived.add(id(message))
        while self._pending and id(self._pending[0]) in self._arrived:
            ready = self._pending.pop(0)
            self._arrived.discard(id(ready))
            self._deliver(ready)

    def _deliver(self, message: UpdateMessage) -> None:
        self.delivered += 1
        self.sink(message)

    def __repr__(self) -> str:
        return f"Wrapper({self.source.name!r}, forwarded={self.forwarded})"
