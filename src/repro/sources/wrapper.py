"""Wrappers: the bridge between autonomous sources and the view manager.

The paper assumes "intelligent" wrappers that extract raw data changes
*and* metadata (schema-level changes, relationships with other sources).
Here a :class:`Wrapper` subscribes to a :class:`~repro.sources.source
.DataSource`, stamps each committed update with wrapper-side metadata and
forwards it to a sink — in the full system, the view manager's Update
Message Queue.

A wrapper can also impose a fixed transmission latency; in the simulated
deployment the latency is realized by the event engine, the wrapper only
records the value.
"""

from __future__ import annotations

from typing import Callable

from .messages import UpdateMessage
from .source import DataSource

Sink = Callable[[UpdateMessage], None]


class Wrapper:
    """Forwards committed updates from one source to one sink."""

    def __init__(
        self,
        source: DataSource,
        sink: Sink,
        latency: float = 0.0,
    ) -> None:
        self.source = source
        self.sink = sink
        self.latency = latency
        self.forwarded: int = 0
        source.subscribe(self._on_commit)

    def _on_commit(self, message: UpdateMessage) -> None:
        self.forwarded += 1
        self.sink(message)

    def __repr__(self) -> str:
        return f"Wrapper({self.source.name!r}, forwarded={self.forwarded})"
