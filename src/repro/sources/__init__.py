"""Autonomous data sources, wrappers, update messages and workloads."""

from .errors import (
    BrokenQueryError,
    QueryTimeoutError,
    SourceError,
    SourceUnavailableError,
    TransientSourceError,
    UpdateApplicationError,
)
from .messages import (
    AddAttribute,
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    SchemaChange,
    SourceUpdate,
    UpdateMessage,
)
from .mkb import (
    AttributeReplacement,
    MetaKnowledgeBase,
    RelationReplacement,
)
from .source import DataSource
from .sqlite_source import SqliteCatalog, SqliteDataSource
from .workload import (
    DeleteRandomRow,
    DropRandomAttribute,
    FixedUpdate,
    InsertRandomRow,
    RenameRandomAttribute,
    RenameRandomRelation,
    UpdateIntent,
    Workload,
    WorkloadItem,
    poisson_arrival_times,
    random_row,
    random_value,
)
from .wrapper import Wrapper

__all__ = [
    "AddAttribute",
    "AttributeReplacement",
    "BrokenQueryError",
    "CreateRelation",
    "DataSource",
    "DataUpdate",
    "DeleteRandomRow",
    "DropAttribute",
    "DropRandomAttribute",
    "DropRelation",
    "FixedUpdate",
    "InsertRandomRow",
    "MetaKnowledgeBase",
    "QueryTimeoutError",
    "RelationReplacement",
    "RenameAttribute",
    "RenameRandomAttribute",
    "RenameRandomRelation",
    "RenameRelation",
    "RestructureRelations",
    "SchemaChange",
    "SourceError",
    "SourceUnavailableError",
    "SourceUpdate",
    "SqliteCatalog",
    "SqliteDataSource",
    "TransientSourceError",
    "UpdateApplicationError",
    "UpdateIntent",
    "UpdateMessage",
    "Workload",
    "WorkloadItem",
    "Wrapper",
    "poisson_arrival_times",
    "random_row",
    "random_value",
]
