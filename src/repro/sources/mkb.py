"""Meta-knowledge base (MKB) of replacement mappings.

View synchronization in the EVE style [9] rewrites a view after a schema
change by consulting declared knowledge about *alternative* data sources:
which relation can stand in for a dropped one, and which attribute of
which other relation can substitute a dropped attribute (the paper's
``ReaderDigest.Comments as Review`` example, Query (4)).

The MKB holds two kinds of replacement rules:

* :class:`RelationReplacement` — one or *several* relations are covered
  by a single replacement relation.  The multi-relation form models the
  paper's Figure 2, where re-tuning the XML mapping collapses ``Store``
  and ``Item`` into one ``StoreItems`` table; when either is dropped, the
  view synchronizer folds all covered aliases into one alias of the new
  relation and discards the joins internal to the covered set (yielding
  exactly Query (3)).
* :class:`AttributeReplacement` — a dropped attribute is recovered from
  another relation via a join (yielding Query (4)).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RelationReplacement:
    """Replace one or more relations of a source by a new relation."""

    #: source that owned the covered relations
    source: str
    #: relation names covered by this replacement (usually one)
    covers: tuple[str, ...]
    #: where the replacement lives
    new_source: str
    new_relation: str
    #: maps (covered_relation, old_attribute) -> new_attribute
    attr_map: dict[tuple[str, str], str] = field(default_factory=dict)

    def maps_attribute(self, relation: str, attribute: str) -> str | None:
        return self.attr_map.get((relation, attribute))


@dataclass(frozen=True)
class AttributeReplacement:
    """Recover a dropped attribute from another relation via a join."""

    source: str
    relation: str
    attribute: str
    #: the stand-in
    new_source: str
    new_relation: str
    new_attribute: str
    #: equi-join linking the stand-in relation into the view:
    #: (surviving_relation, surviving_attribute) joins
    #: (new_relation, join_attribute)
    join_on: tuple[str, str]
    join_attribute: str


class MetaKnowledgeBase:
    """Registry of replacement rules consulted by view synchronization."""

    def __init__(self) -> None:
        self._relation_rules: list[RelationReplacement] = []
        self._attribute_rules: list[AttributeReplacement] = []

    def add_relation_replacement(self, rule: RelationReplacement) -> None:
        self._relation_rules.append(rule)

    def add_attribute_replacement(self, rule: AttributeReplacement) -> None:
        self._attribute_rules.append(rule)

    def relation_replacement(
        self, source: str, relation: str
    ) -> RelationReplacement | None:
        """First rule covering ``relation`` at ``source``, if any."""
        for rule in self._relation_rules:
            if rule.source == source and relation in rule.covers:
                return rule
        return None

    def attribute_replacement(
        self, source: str, relation: str, attribute: str
    ) -> AttributeReplacement | None:
        for rule in self._attribute_rules:
            if (
                rule.source == source
                and rule.relation == relation
                and rule.attribute == attribute
            ):
                return rule
        return None

    def __len__(self) -> int:
        return len(self._relation_rules) + len(self._attribute_rules)
