"""Source update messages: data updates and schema changes.

A *source update* is the payload a data source commits locally; an
:class:`UpdateMessage` is the committed envelope a wrapper ships to the
view manager (source name, sequence number, commit timestamp, payload).

Schema-change payloads know which metadata they modify, which is exactly
what dependency detection needs: Definition 3 draws a concurrent
dependency edge only when a schema change "modifies any metadata, such as
attribute or relation, that is included in the view query".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..relational.delta import Delta, Row
from ..relational.schema import Attribute, RelationSchema
from ..relational.table import Table
from ..relational.types import Value

if TYPE_CHECKING:  # pragma: no cover
    from ..relational.query import SPJQuery


class SourceUpdate:
    """Abstract payload of one committed source transaction."""

    #: relation names this update touches at its source (for semantic
    #: dependency bucketing and conflict tests).
    def touched_relations(self) -> frozenset[str]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


# ----------------------------------------------------------------------
# data updates
# ----------------------------------------------------------------------


@dataclass
class DataUpdate(SourceUpdate):
    """A bag delta committed against one relation (DU)."""

    relation: str
    delta: Delta

    @classmethod
    def insert(
        cls, schema: RelationSchema, rows: Iterable[Row]
    ) -> "DataUpdate":
        return cls(schema.name, Delta.insertion(schema, rows))

    @classmethod
    def delete(
        cls, schema: RelationSchema, rows: Iterable[Row]
    ) -> "DataUpdate":
        return cls(schema.name, Delta.deletion(schema, rows))

    def touched_relations(self) -> frozenset[str]:
        return frozenset({self.relation})

    def describe(self) -> str:
        inserted = sum(c for _, c in self.delta.items() if c > 0)
        deleted = -sum(c for _, c in self.delta.items() if c < 0)
        return f"DU({self.relation}: +{inserted}/-{deleted})"


# ----------------------------------------------------------------------
# schema changes
# ----------------------------------------------------------------------


class SchemaChange(SourceUpdate):
    """Abstract schema-change payload (SC)."""

    def conflicts_with_query(self, source: str, query: "SPJQuery") -> bool:
        """Would this change invalidate ``query``'s schema knowledge?

        Only metadata *removed or renamed away* can invalidate a query;
        additions never do.
        """
        raise NotImplementedError


@dataclass
class RenameRelation(SchemaChange):
    old: str
    new: str

    def touched_relations(self) -> frozenset[str]:
        return frozenset({self.old, self.new})

    def conflicts_with_query(self, source: str, query: "SPJQuery") -> bool:
        return query.references_relation(source, self.old)

    def describe(self) -> str:
        return f"SC(rename relation {self.old} -> {self.new})"


@dataclass
class RenameAttribute(SchemaChange):
    relation: str
    old: str
    new: str

    def touched_relations(self) -> frozenset[str]:
        return frozenset({self.relation})

    def conflicts_with_query(self, source: str, query: "SPJQuery") -> bool:
        return query.references_attribute(source, self.relation, self.old)

    def describe(self) -> str:
        return f"SC(rename {self.relation}.{self.old} -> {self.new})"


@dataclass
class DropAttribute(SchemaChange):
    relation: str
    attribute: str

    def touched_relations(self) -> frozenset[str]:
        return frozenset({self.relation})

    def conflicts_with_query(self, source: str, query: "SPJQuery") -> bool:
        return query.references_attribute(
            source, self.relation, self.attribute
        )

    def describe(self) -> str:
        return f"SC(drop {self.relation}.{self.attribute})"


@dataclass
class AddAttribute(SchemaChange):
    relation: str
    attribute: Attribute
    default: Value = None

    def touched_relations(self) -> frozenset[str]:
        return frozenset({self.relation})

    def conflicts_with_query(self, source: str, query: "SPJQuery") -> bool:
        return False  # additions cannot invalidate existing queries

    def describe(self) -> str:
        return f"SC(add {self.relation}.{self.attribute.name})"


@dataclass
class DropRelation(SchemaChange):
    """Drop a relation.

    ``dropped_extent`` is filled in by the source at commit time: the
    paper assumes "intelligent" wrappers that extract not only raw data
    but also metadata, and view adaptation needs the final extent of the
    dropped relation to compute the replacement delta (Section 5,
    Equation 6).
    """

    relation: str
    dropped_extent: Table | None = field(default=None, compare=False)

    def touched_relations(self) -> frozenset[str]:
        return frozenset({self.relation})

    def conflicts_with_query(self, source: str, query: "SPJQuery") -> bool:
        return query.references_relation(source, self.relation)

    def describe(self) -> str:
        return f"SC(drop relation {self.relation})"


@dataclass
class CreateRelation(SchemaChange):
    schema: RelationSchema
    rows: tuple[Row, ...] = ()

    def touched_relations(self) -> frozenset[str]:
        return frozenset({self.schema.name})

    def conflicts_with_query(self, source: str, query: "SPJQuery") -> bool:
        return False

    def describe(self) -> str:
        return f"SC(create relation {self.schema.name})"


@dataclass
class RestructureRelations(SchemaChange):
    """Atomically replace a set of relations by one new relation.

    This models the paper's motivating change (Figure 2): re-tuning the
    XML-to-relational mapping collapses ``Store`` and ``Item`` into a
    single ``StoreItems`` table in one committed restructuring.

    ``new_rows`` is the extent of the new relation.  The final extents of
    the dropped relations are captured at commit time like in
    :class:`DropRelation`.
    """

    dropped: tuple[str, ...]
    new_schema: RelationSchema
    new_rows: tuple[Row, ...] = ()
    dropped_extents: dict[str, Table] = field(
        default_factory=dict, compare=False
    )

    def touched_relations(self) -> frozenset[str]:
        return frozenset(self.dropped) | {self.new_schema.name}

    def conflicts_with_query(self, source: str, query: "SPJQuery") -> bool:
        return any(
            query.references_relation(source, relation)
            for relation in self.dropped
        )

    def describe(self) -> str:
        return (
            f"SC(restructure {', '.join(self.dropped)} "
            f"-> {self.new_schema.name})"
        )


# ----------------------------------------------------------------------
# the committed envelope
# ----------------------------------------------------------------------


@dataclass
class UpdateMessage:
    """A committed source update as seen by the view manager's UMQ."""

    source: str
    seqno: int
    committed_at: float
    payload: SourceUpdate

    @property
    def is_schema_change(self) -> bool:
        return isinstance(self.payload, SchemaChange)

    @property
    def is_data_update(self) -> bool:
        return isinstance(self.payload, DataUpdate)

    def touched_relations(self) -> frozenset[str]:
        return self.payload.touched_relations()

    def conflicts_with_query(self, query: "SPJQuery") -> bool:
        """Schema-change conflict test against a view/maintenance query."""
        if not isinstance(self.payload, SchemaChange):
            return False
        return self.payload.conflicts_with_query(self.source, query)

    def describe(self) -> str:
        return (
            f"[{self.source}#{self.seqno}@{self.committed_at:.3f}] "
            f"{self.payload.describe()}"
        )

    def __repr__(self) -> str:
        return f"UpdateMessage({self.describe()})"
