"""Workload generation: timed streams of source update intents.

Experiments schedule *intents*, not concrete updates: because sources are
autonomous, the concrete rows/metadata of an update can only be decided
against the source's live schema at commit time (e.g. "rename a random
relation" must pick from the relations that still exist *then*).  An
:class:`UpdateIntent` materializes into a concrete
:class:`~repro.sources.messages.SourceUpdate` at its commit instant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..relational.schema import RelationSchema
from ..relational.types import AttributeType, Value
from .messages import (
    DataUpdate,
    DropAttribute,
    RenameAttribute,
    RenameRelation,
    SourceUpdate,
)
from .source import DataSource


class UpdateIntent:
    """Deferred description of a source update."""

    def materialize(self, source: DataSource) -> SourceUpdate | None:
        """Produce a concrete update against the live source state.

        Returns ``None`` when the intent is impossible (e.g. deleting
        from an empty relation); the simulation skips such commits.
        """
        raise NotImplementedError


# ----------------------------------------------------------------------
# value generation
# ----------------------------------------------------------------------

_WORDS = (
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
)


def random_value(rng: random.Random, attr_type: AttributeType) -> Value:
    if attr_type is AttributeType.INT:
        return rng.randrange(1_000_000)
    if attr_type is AttributeType.FLOAT:
        return round(rng.uniform(0, 1000), 2)
    if attr_type is AttributeType.BOOL:
        return rng.random() < 0.5
    return f"{rng.choice(_WORDS)}-{rng.randrange(100000)}"


def random_row(rng: random.Random, schema: RelationSchema) -> tuple:
    return tuple(
        random_value(rng, attribute.type) for attribute in schema.attributes
    )


# ----------------------------------------------------------------------
# concrete intents
# ----------------------------------------------------------------------


@dataclass
class InsertRandomRow(UpdateIntent):
    """Insert a random row into a relation (random one if unspecified).

    ``key_factory`` optionally overrides the first attribute's value so
    testbeds can control join selectivity (e.g. reuse an existing key to
    force a view match).
    """

    rng: random.Random
    relation: str | None = None
    key_factory: Callable[[random.Random], Value] | None = None

    def materialize(self, source: DataSource) -> SourceUpdate | None:
        names = source.catalog.relation_names
        if not names:
            return None
        relation = self.relation
        if relation is None or relation not in source.catalog:
            relation = self.rng.choice(list(names))
        schema = source.schema_of(relation)
        row = list(random_row(self.rng, schema))
        if self.key_factory is not None and row:
            row[0] = schema.attributes[0].type.validate(
                self.key_factory(self.rng)
            )
        return DataUpdate.insert(schema, [tuple(row)])


@dataclass
class DeleteRandomRow(UpdateIntent):
    """Delete one random existing row from a (random) relation.

    ``key_filter`` restricts the choice to rows whose first attribute
    (the join key) passes the predicate, so testbeds that narrow
    *inserted* keys to a hot domain can draw deletes from the same
    domain instead of the full key range.
    """

    rng: random.Random
    relation: str | None = None
    key_filter: Callable[[Value], bool] | None = None

    def materialize(self, source: DataSource) -> SourceUpdate | None:
        names = [
            name
            for name in source.catalog.relation_names
            if len(source.catalog.table(name)) > 0
        ]
        if not names:
            return None
        relation = self.relation
        if relation is None or relation not in names:
            relation = self.rng.choice(names)
        table = source.catalog.table(relation)
        if self.key_filter is not None:
            candidates = [
                row
                for row, _count in table.items()
                if row and self.key_filter(row[0])
            ]
            if not candidates:
                return None
            return DataUpdate.delete(
                table.schema, [self.rng.choice(candidates)]
            )
        # Pick a deterministic "random" row without materializing the bag.
        target_index = self.rng.randrange(table.distinct_count())
        for index, (row, _count) in enumerate(table.items()):
            if index == target_index:
                return DataUpdate.delete(table.schema, [row])
        return None  # pragma: no cover

    # NOTE: iteration order of the underlying Counter is insertion order,
    # so given a fixed seed the choice is reproducible.


@dataclass
class DropRandomAttribute(UpdateIntent):
    """Drop a random non-key attribute of a (random) relation."""

    rng: random.Random
    relation: str | None = None
    protect_first: bool = True  # keep join keys intact by default

    def materialize(self, source: DataSource) -> SourceUpdate | None:
        names = list(source.catalog.relation_names)
        if not names:
            return None
        relation = self.relation
        if relation is None or relation not in source.catalog:
            relation = self.rng.choice(names)
        schema = source.schema_of(relation)
        start = 1 if self.protect_first else 0
        candidates = list(schema.attribute_names[start:])
        if not candidates:
            return None
        return DropAttribute(relation, self.rng.choice(candidates))


@dataclass
class RenameRandomRelation(UpdateIntent):
    """Rename a random relation by bumping a version suffix."""

    rng: random.Random
    relation: str | None = None

    def materialize(self, source: DataSource) -> SourceUpdate | None:
        names = list(source.catalog.relation_names)
        if not names:
            return None
        relation = self.relation
        if relation is None or relation not in source.catalog:
            relation = self.rng.choice(names)
        base, _, version = relation.partition("__v")
        next_version = int(version) + 1 if version.isdigit() else 2
        return RenameRelation(relation, f"{base}__v{next_version}")


@dataclass
class RenameRandomAttribute(UpdateIntent):
    """Rename a random attribute of a random relation."""

    rng: random.Random
    relation: str | None = None

    def materialize(self, source: DataSource) -> SourceUpdate | None:
        names = list(source.catalog.relation_names)
        if not names:
            return None
        relation = self.relation
        if relation is None or relation not in source.catalog:
            relation = self.rng.choice(names)
        schema = source.schema_of(relation)
        attribute = self.rng.choice(list(schema.attribute_names))
        base, _, version = attribute.partition("__v")
        next_version = int(version) + 1 if version.isdigit() else 2
        return RenameAttribute(relation, attribute, f"{base}__v{next_version}")


@dataclass
class FixedUpdate(UpdateIntent):
    """An intent wrapping an already-concrete update."""

    update: SourceUpdate

    def materialize(self, source: DataSource) -> SourceUpdate | None:
        return self.update


# ----------------------------------------------------------------------
# timed workloads
# ----------------------------------------------------------------------


def poisson_arrival_times(
    rng: random.Random, rate: float, count: int, start: float = 0.0
) -> list[float]:
    """``count`` arrival instants of a Poisson process with ``rate``
    events per virtual second (exponential inter-arrival gaps).

    Uniform spacing is what the paper's experiments use; Poisson
    arrivals model the burstier traffic of real autonomous sources.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    times: list[float] = []
    at = start
    for _ in range(count):
        at += rng.expovariate(rate)
        times.append(at)
    return times


@dataclass
class WorkloadItem:
    """One scheduled autonomous commit."""

    at: float
    source_name: str
    intent: UpdateIntent


@dataclass
class Workload:
    """A time-ordered stream of scheduled commits."""

    items: list[WorkloadItem] = field(default_factory=list)

    def add(self, at: float, source_name: str, intent: UpdateIntent) -> None:
        self.items.append(WorkloadItem(at, source_name, intent))

    def extend(self, items: Iterable[WorkloadItem]) -> None:
        self.items.extend(items)

    def sorted(self) -> list[WorkloadItem]:
        return sorted(self.items, key=lambda item: item.at)

    def __iter__(self) -> Iterator[WorkloadItem]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self.items)

    @property
    def span(self) -> float:
        if not self.items:
            return 0.0
        times = [item.at for item in self.items]
        return max(times) - min(times)
