"""A data source backed by a real SQL engine (stdlib ``sqlite3``).

The paper's sources were Oracle instances reached over JDBC; our default
:class:`~repro.sources.source.DataSource` keeps relations in the
in-memory engine.  This module provides a drop-in alternative whose
storage *and query answering* are delegated to SQLite — demonstrating
that the view manager, Dyno, and all maintenance algorithms are
independent of the source implementation (they only see
:class:`UpdateMessage` streams and SPJ query answers).

Maintenance queries are rendered to SQL (``SPJQuery.sql()``) and
executed by SQLite; schema changes become ``ALTER TABLE`` statements.
Broken queries surface exactly like on the in-memory source: the schema
dictionary is checked before dispatching SQL, so a query built from
outdated metadata raises
:class:`~repro.sources.errors.BrokenQueryError`.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Iterator

from ..relational.delta import Row
from ..relational.errors import UnknownRelationError
from ..relational.query import SPJQuery
from ..relational.schema import Attribute, RelationSchema
from ..relational.table import Table
from ..relational.types import AttributeType
from .errors import BrokenQueryError, UpdateApplicationError
from .messages import (
    AddAttribute,
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    SourceUpdate,
)
from .source import DataSource

_SQL_TYPE = {
    AttributeType.INT: "INTEGER",
    AttributeType.FLOAT: "REAL",
    AttributeType.STRING: "TEXT",
    AttributeType.BOOL: "INTEGER",  # SQLite stores booleans as 0/1
}


def _from_sqlite(value, attr_type: AttributeType):
    if value is None:
        return None
    if attr_type is AttributeType.BOOL:
        return bool(value)
    if attr_type is AttributeType.FLOAT:
        return float(value)
    return value


def _to_sqlite(value):
    if isinstance(value, bool):
        return int(value)
    return value


class SqliteCatalog:
    """Catalog facade over a SQLite database.

    Presents the same lookups :class:`~repro.relational.catalog.Catalog`
    does — the view manager's oracle and snapshot paths work unchanged —
    materializing tables from SQLite on demand.
    """

    def __init__(self, source: "SqliteDataSource") -> None:
        self._source = source

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._source._schemas)

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self._source._schemas

    def __len__(self) -> int:
        return len(self._source._schemas)

    def __iter__(self) -> Iterator[Table]:
        for name in self.relation_names:
            yield self.table(name)

    def schema(self, relation_name: str) -> RelationSchema:
        schema = self._source._schemas.get(relation_name)
        if schema is None:
            raise UnknownRelationError(relation_name, self._source.name)
        return schema

    def table(self, relation_name: str) -> Table:
        """Materialize the relation's current extent from SQLite."""
        schema = self.schema(relation_name)
        cursor = self._source._db.execute(f"SELECT * FROM {relation_name}")
        table = Table(schema)
        for raw in cursor:
            table.insert(
                tuple(
                    _from_sqlite(value, attribute.type)
                    for value, attribute in zip(raw, schema.attributes)
                )
            )
        return table

    def snapshot(self):
        from ..relational.catalog import Catalog

        duplicate = Catalog(self._source.name)
        for name in self.relation_names:
            duplicate.add_table(self.table(name))
        return duplicate


class SqliteDataSource(DataSource):
    """A :class:`DataSource` whose relations live in SQLite."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._db = sqlite3.connect(":memory:")
        self._schemas: dict[str, RelationSchema] = {}
        self.catalog = SqliteCatalog(self)  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def create_relation(
        self, schema: RelationSchema, rows: Iterable[Row] = ()
    ) -> None:  # type: ignore[override]
        columns = ", ".join(
            f"{attribute.name} {_SQL_TYPE[attribute.type]}"
            for attribute in schema.attributes
        )
        self._db.execute(f"CREATE TABLE {schema.name} ({columns})")
        self._schemas[schema.name] = schema
        self._insert_rows(schema.name, rows)

    def _insert_rows(self, relation: str, rows: Iterable[Row]) -> None:
        schema = self._schemas[relation]
        placeholders = ", ".join("?" for _ in schema.attributes)
        self._db.executemany(
            f"INSERT INTO {relation} VALUES ({placeholders})",
            [tuple(_to_sqlite(value) for value in row) for row in rows],
        )

    # ------------------------------------------------------------------
    # update application (SQL DDL/DML)
    # ------------------------------------------------------------------

    def _dispatch(self, update: SourceUpdate) -> None:
        try:
            self._dispatch_sql(update)
        except sqlite3.Error as exc:
            raise UpdateApplicationError(
                f"sqlite source {self.name!r} failed to apply "
                f"{update.describe()}: {exc}"
            ) from exc

    def _dispatch_sql(self, update: SourceUpdate) -> None:
        if isinstance(update, DataUpdate):
            schema = self._require(update.relation)
            inserts = [
                row
                for row, count in update.delta.items()
                for _ in range(max(count, 0))
            ]
            self._insert_rows(update.relation, inserts)
            predicate = " AND ".join(
                f"{attribute.name} IS ?" for attribute in schema.attributes
            )
            for row, count in update.delta.items():
                for _ in range(max(-count, 0)):
                    cursor = self._db.execute(
                        f"DELETE FROM {update.relation} WHERE rowid IN ("
                        f"SELECT rowid FROM {update.relation} "
                        f"WHERE {predicate} LIMIT 1)",
                        tuple(_to_sqlite(value) for value in row),
                    )
                    if cursor.rowcount != 1:
                        raise UpdateApplicationError(
                            f"cannot delete absent row {row!r} "
                            f"from {update.relation!r}"
                        )
        elif isinstance(update, RenameRelation):
            self._require(update.old)
            self._db.execute(
                f"ALTER TABLE {update.old} RENAME TO {update.new}"
            )
            self._schemas[update.new] = self._schemas.pop(
                update.old
            ).renamed(update.new)
        elif isinstance(update, RenameAttribute):
            schema = self._require(update.relation)
            self._db.execute(
                f"ALTER TABLE {update.relation} "
                f"RENAME COLUMN {update.old} TO {update.new}"
            )
            self._schemas[update.relation] = schema.rename_attribute(
                update.old, update.new
            )
        elif isinstance(update, DropAttribute):
            schema = self._require(update.relation)
            self._db.execute(
                f"ALTER TABLE {update.relation} "
                f"DROP COLUMN {update.attribute}"
            )
            self._schemas[update.relation] = schema.drop_attribute(
                update.attribute
            )
        elif isinstance(update, AddAttribute):
            schema = self._require(update.relation)
            sql_type = _SQL_TYPE[update.attribute.type]
            default = _to_sqlite(update.default)
            if default is None:
                clause = ""
            elif isinstance(default, str):
                escaped = default.replace("'", "''")
                clause = f" DEFAULT '{escaped}'"
            else:
                clause = f" DEFAULT {default}"
            self._db.execute(
                f"ALTER TABLE {update.relation} "
                f"ADD COLUMN {update.attribute.name} {sql_type}{clause}"
            )
            self._schemas[update.relation] = schema.add_attribute(
                update.attribute
            )
        elif isinstance(update, DropRelation):
            self._require(update.relation)
            update.dropped_extent = self.catalog.table(update.relation)
            self._db.execute(f"DROP TABLE {update.relation}")
            del self._schemas[update.relation]
        elif isinstance(update, CreateRelation):
            self.create_relation(update.schema, update.rows)
        elif isinstance(update, RestructureRelations):
            for relation in update.dropped:
                self._require(relation)
                update.dropped_extents[relation] = self.catalog.table(
                    relation
                )
                self._db.execute(f"DROP TABLE {relation}")
                del self._schemas[relation]
            self.create_relation(update.new_schema, update.new_rows)
        else:
            raise UpdateApplicationError(
                f"unknown update type {type(update).__name__}"
            )

    def _require(self, relation: str) -> RelationSchema:
        schema = self._schemas.get(relation)
        if schema is None:
            raise UpdateApplicationError(
                f"unknown relation {relation!r} at sqlite source "
                f"{self.name!r}"
            )
        return schema

    # ------------------------------------------------------------------
    # query answering (real SQL execution)
    # ------------------------------------------------------------------

    def execute(self, query: SPJQuery) -> Table:
        self.admit_query()
        # Metadata validation first: outdated schema knowledge must
        # surface as a broken query, not as a SQL syntax error.
        alias_schemas: dict[str, RelationSchema] = {}
        for ref in query.relations:
            if ref.source != self.name:
                raise BrokenQueryError(
                    self.name,
                    query.sql(),
                    f"relation {ref.relation!r} belongs to source "
                    f"{ref.source!r}, not {self.name!r}",
                )
            schema = self._schemas.get(ref.relation)
            if schema is None:
                raise BrokenQueryError(
                    self.name,
                    query.sql(),
                    f"unknown relation {ref.relation!r}",
                )
            alias_schemas[ref.alias] = schema
        for attr_ref in query.all_attribute_refs():
            if attr_ref.relation is None:
                continue
            schema = alias_schemas.get(attr_ref.relation)
            if schema is not None and attr_ref.name not in schema:
                raise BrokenQueryError(
                    self.name,
                    query.sql(),
                    f"attribute {attr_ref.name!r} missing from relation "
                    f"{schema.name!r}",
                )

        result_schema = self._result_schema(query, alias_schemas)
        table = Table(result_schema)
        for raw in self._db.execute(query.sql()):
            table.insert(
                tuple(
                    _from_sqlite(value, attribute.type)
                    for value, attribute in zip(
                        raw, result_schema.attributes
                    )
                )
            )
        return table

    @staticmethod
    def _result_schema(
        query: SPJQuery, alias_schemas: dict[str, RelationSchema]
    ) -> RelationSchema:
        names = [ref.name for ref in query.projection]
        attributes: list[Attribute] = []
        used: set[str] = set()
        for ref in query.projection:
            attribute = alias_schemas[ref.relation].attribute(ref.name)  # type: ignore[index]
            if names.count(ref.name) > 1:
                attribute = attribute.renamed(f"{ref.relation}_{ref.name}")
            if attribute.name in used:
                suffix = 2
                while f"{attribute.name}_{suffix}" in used:
                    suffix += 1
                attribute = attribute.renamed(f"{attribute.name}_{suffix}")
            used.add(attribute.name)
            attributes.append(attribute)
        return RelationSchema("result", tuple(attributes))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def schema_of(self, relation: str) -> RelationSchema:
        return self.catalog.schema(relation)

    def has_relation(self, relation: str) -> bool:
        return relation in self._schemas

    def total_rows(self) -> int:
        total = 0
        for relation in self._schemas:
            cursor = self._db.execute(f"SELECT COUNT(*) FROM {relation}")
            total += cursor.fetchone()[0]
        return total
