"""Errors raised by the source layer."""

from __future__ import annotations

from ..relational.errors import ReproError


class SourceError(ReproError):
    """Base class for data-source failures."""


class BrokenQueryError(SourceError):
    """A maintenance query referenced metadata the source no longer has.

    This is the *broken query anomaly* of Definition 2: the query was
    constructed from outdated schema knowledge and a concurrent schema
    change committed before the query was answered.  The query engine's
    in-exec detection mechanism (Figure 7) catches this exception and
    raises the ``BrokenQueryFlag``.
    """

    def __init__(self, source: str, query_sql: str, reason: str) -> None:
        self.source = source
        self.query_sql = query_sql
        self.reason = reason
        super().__init__(
            f"broken query at source {source!r}: {reason} "
            f"(query: {query_sql})"
        )


class UpdateApplicationError(SourceError):
    """A source update could not be applied to the local catalog."""
