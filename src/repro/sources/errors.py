"""Errors raised by the source layer."""

from __future__ import annotations

from ..relational.errors import ReproError


class SourceError(ReproError):
    """Base class for data-source failures."""


class BrokenQueryError(SourceError):
    """A maintenance query referenced metadata the source no longer has.

    This is the *broken query anomaly* of Definition 2: the query was
    constructed from outdated schema knowledge and a concurrent schema
    change committed before the query was answered.  The query engine's
    in-exec detection mechanism (Figure 7) catches this exception and
    raises the ``BrokenQueryFlag``.
    """

    def __init__(self, source: str, query_sql: str, reason: str) -> None:
        self.source = source
        self.query_sql = query_sql
        self.reason = reason
        super().__init__(
            f"broken query at source {source!r}: {reason} "
            f"(query: {query_sql})"
        )


class UpdateApplicationError(SourceError):
    """A source update could not be applied to the local catalog."""


class TransientSourceError(SourceError):
    """A maintenance query failed for a *transient* reason.

    Unlike :class:`BrokenQueryError` — which means the query itself is
    invalid against the source's current schema and retrying is useless —
    a transient failure (network hiccup, source restart, lost reply)
    says nothing about the query's validity.  The correct reaction is to
    retry with backoff, and, on exhausted retries, to quarantine the
    source; reporting it as an in-exec broken-query flag would fabricate
    an unsafe dependency (Thm. 1) and trigger a spurious abort/reorder.

    ``retry_at`` optionally carries the virtual time at which the source
    is expected to answer again (known for declared crash windows); the
    scheduler uses it to bound quarantines exactly.
    """

    def __init__(
        self, source: str, reason: str, retry_at: float | None = None
    ) -> None:
        self.source = source
        self.reason = reason
        self.retry_at = retry_at
        super().__init__(
            f"transient failure at source {source!r}: {reason}"
        )


class QueryTimeoutError(TransientSourceError):
    """A maintenance query timed out in flight.

    ``elapsed`` is the virtual time the view manager waited before
    giving up on this attempt; the engine charges it to the clock so
    timeouts are not free.
    """

    def __init__(
        self,
        source: str,
        reason: str,
        elapsed: float = 0.0,
        retry_at: float | None = None,
    ) -> None:
        self.elapsed = elapsed
        super().__init__(source, reason, retry_at)


class SourceUnavailableError(SourceError):
    """Retries against a source were exhausted without an answer.

    Raised by the engine's retry loop after ``RetryPolicy.max_attempts``
    consecutive transient failures (or a blown per-query deadline).  The
    scheduler reacts by quarantining the source and deferring dependent
    maintenance — never by raising the broken-query flag.
    """

    def __init__(
        self,
        source: str,
        attempts: int,
        reason: str,
        last_error: TransientSourceError | None = None,
    ) -> None:
        self.source = source
        self.attempts = attempts
        self.reason = reason
        self.last_error = last_error
        self.retry_at = (
            last_error.retry_at if last_error is not None else None
        )
        super().__init__(
            f"source {source!r} unavailable after {attempts} "
            f"attempt(s): {reason}"
        )
