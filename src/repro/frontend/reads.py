"""Versioned read serving against the maintained view extents.

The warehouse exists to answer reads; the paper's evaluation (and every
prior PR here) only measured the *maintenance* side.  This module adds
the missing half: a seeded workload of point and scan reads replayed —
post hoc, so the read path never perturbs maintenance — against the
version timeline each engine records at unit-install time
(:class:`~repro.sim.engine.InstallRecord`).

Consistency levels
------------------

``read-latest``
    Serve the newest version installed on the owning shard at the read
    time.  Freshest answers; staleness is whatever the shard's
    maintenance lag happens to be.

``read-committed-version``
    Serve the newest version whose commit *watermark* (the longest
    prefix of the commit-ordered delivered stream fully installed) does
    not exceed the global watermark — the minimum across shards, the
    same coordinated-checkpoint-style cut per-shard recovery uses.
    Cross-shard consistent answers; staleness grows with the slowest
    shard.

Both levels report the same staleness definition: the age (read time
minus commit time) of the *oldest* delivered committed update not yet
visible in the served version, zero for a fully-fresh answer.

Latency is a queueing simulation: each shard serves reads with
``cost.read_servers`` concurrent servers; a read waits for a free
server, then pays the cost-model service time (``point_read`` or
``scan_read`` over the served version's extent size).  The p99 tail is
therefore a real queueing effect, not a constant.
"""

from __future__ import annotations

import heapq
import random
from bisect import bisect_right
from dataclasses import dataclass, field

from ..sim.costs import CostModel
from ..sim.engine import InstallRecord
from ..sim.metrics import Metrics

READ_LATEST = "read_latest"
READ_COMMITTED_VERSION = "read_committed_version"

CONSISTENCY_LEVELS = (READ_LATEST, READ_COMMITTED_VERSION)


class ShardTimeline:
    """One shard's install history, indexed for versioned reads.

    Version ``k`` (0-based; 0 is the initial load) is described by
    ``times[k]`` (virtual install time; 0.0 for the initial load),
    ``watermarks[k]`` (commit watermark visible at that version) and a
    per-view extent cardinality.  ``commits`` is the commit-ordered
    stream the shard's router delivered, used for staleness.
    """

    def __init__(
        self,
        installs: list[InstallRecord],
        initial_sizes: dict[str, int],
    ) -> None:
        self.views = tuple(sorted(initial_sizes))
        self.times: list[float] = [0.0]
        self.watermarks: list[float] = [0.0]
        self.view_sizes: dict[str, list[int]] = {
            view: [size] for view, size in initial_sizes.items()
        }
        # Commit order over everything this shard installed; at
        # quiescence that equals everything its router delivered.
        ordered = sorted(
            {
                (committed_at, source, seqno)
                for record in installs
                for (source, seqno, committed_at) in record.messages
            }
        )
        self.commits: list[float] = [entry[0] for entry in ordered]
        position = {
            (source, seqno): index
            for index, (_, source, seqno) in enumerate(ordered)
        }
        installed = [False] * len(ordered)
        frontier = 0
        for record in installs:
            for source, seqno, _ in record.messages:
                installed[position[(source, seqno)]] = True
            while frontier < len(installed) and installed[frontier]:
                frontier += 1
            watermark = self.commits[frontier - 1] if frontier else 0.0
            self.times.append(record.at)
            self.watermarks.append(watermark)
            for view in self.views:
                sizes = self.view_sizes[view]
                sizes.append(record.view_sizes.get(view, sizes[-1]))
        # Per-version index of the first delivered commit NOT visible at
        # that version's watermark: one bisect per *version* here buys
        # O(1) staleness per *read* in the serving loop (reads outnumber
        # versions by orders of magnitude — ABL-11 replays >= 10^6).
        self.first_invisible: list[int] = [
            bisect_right(self.commits, watermark)
            for watermark in self.watermarks
        ]

    def version_at(self, at: float) -> int:
        """Newest version installed at or before ``at``."""
        return bisect_right(self.times, at) - 1

    def watermark_at(self, at: float) -> float:
        return self.watermarks[self.version_at(at)]

    def staleness_of(self, version: int, at: float) -> float:
        """Age of the oldest delivered commit invisible at ``version``
        as observed at time ``at`` (0.0 when fully fresh).  O(1): the
        first-invisible commit was precomputed per version."""
        index = self.first_invisible[version]
        if index < len(self.commits) and self.commits[index] <= at:
            return at - self.commits[index]
        return 0.0

    def staleness(self, watermark: float, at: float) -> float:
        """Staleness at an arbitrary ``watermark`` (bisecting flavour
        for ad-hoc queries; the serving loop uses
        :meth:`staleness_of`)."""
        index = bisect_right(self.commits, watermark)
        if index < len(self.commits) and self.commits[index] <= at:
            return at - self.commits[index]
        return 0.0


@dataclass(frozen=True)
class ReadWorkload:
    """A seeded stream of point/scan reads over the registered views."""

    count: int = 1_000_000
    seed: int = 17
    scan_fraction: float = 0.1
    start: float = 0.0
    horizon: float | None = None  # default: the warehouse horizon


@dataclass(frozen=True)
class ReadReport:
    """Latency/staleness digest of one served read workload."""

    level: str
    count: int
    p50_latency: float
    p99_latency: float
    mean_latency: float
    max_latency: float
    mean_wait: float
    mean_staleness: float
    max_staleness: float
    stale_fraction: float

    def summary(self) -> dict[str, float]:
        return {
            "level": self.level,
            "count": self.count,
            "p50_latency": round(self.p50_latency, 9),
            "p99_latency": round(self.p99_latency, 9),
            "mean_latency": round(self.mean_latency, 9),
            "max_latency": round(self.max_latency, 9),
            "mean_wait": round(self.mean_wait, 9),
            "mean_staleness": round(self.mean_staleness, 6),
            "max_staleness": round(self.max_staleness, 6),
            "stale_fraction": round(self.stale_fraction, 6),
        }


@dataclass
class ReadFrontEnd:
    """Replays read workloads against recorded shard timelines."""

    timelines: dict[int, ShardTimeline]
    view_shard: dict[str, int]
    cost: CostModel
    default_horizon: float
    #: merged watermark step function: at virtual time ``t`` the global
    #: watermark is the min across shards (computed lazily)
    _global_times: list[float] = field(default_factory=list, repr=False)
    _global_watermarks: list[float] = field(default_factory=list, repr=False)

    @classmethod
    def for_warehouse(
        cls, warehouse, initial_sizes: dict[str, int]
    ) -> "ReadFrontEnd":
        """Build from a :class:`~repro.core.sharding.ShardedWarehouse`
        after its run reached quiescence.  ``initial_sizes`` maps view
        name to the extent cardinality right after the initial load
        (captured at build time — the install log only records
        post-install sizes)."""
        view_shard = {
            name: shard.shard_id
            for shard in warehouse.shards
            for name in shard.view_names
        }
        install_logs = {
            shard.shard_id: shard.engine.install_log
            for shard in warehouse.shards
        }
        cost = warehouse.shards[0].engine.cost_model
        return cls.from_install_logs(
            install_logs, view_shard, initial_sizes, cost, warehouse.horizon()
        )

    @classmethod
    def from_install_logs(
        cls,
        install_logs: dict[int, list[InstallRecord]],
        view_shard: dict[str, int],
        initial_sizes: dict[str, int],
        cost: CostModel,
        horizon: float,
    ) -> "ReadFrontEnd":
        """Build from bare per-shard install logs — the process-parallel
        runtime ships these home at COLLECT time, so the front end needs
        no live warehouse at all."""
        shard_views: dict[int, list[str]] = {}
        for name, shard_id in view_shard.items():
            shard_views.setdefault(shard_id, []).append(name)
        timelines = {
            shard_id: ShardTimeline(
                install_logs[shard_id],
                {name: initial_sizes[name] for name in names},
            )
            for shard_id, names in shard_views.items()
        }
        return cls(timelines, dict(view_shard), cost, horizon)

    def _global_watermark_steps(self) -> tuple[list[float], list[float]]:
        """The min-across-shards watermark as a step function."""
        if self._global_times:
            return self._global_times, self._global_watermarks
        events = sorted(
            {
                at
                for timeline in self.timelines.values()
                for at in timeline.times
            }
        )
        times: list[float] = []
        watermarks: list[float] = []
        for at in events:
            value = min(
                timeline.watermark_at(at)
                for timeline in self.timelines.values()
            )
            times.append(at)
            watermarks.append(value)
        self._global_times = times
        self._global_watermarks = watermarks
        return times, watermarks

    def global_watermark_at(self, at: float) -> float:
        """The coordinated cut: every commit at or below this time is
        installed on *every* shard at virtual time ``at``."""
        times, watermarks = self._global_watermark_steps()
        index = bisect_right(times, at) - 1
        return watermarks[index] if index >= 0 else 0.0

    def serve(
        self,
        workload: ReadWorkload,
        level: str = READ_LATEST,
        metrics: Metrics | None = None,
    ) -> ReadReport:
        """Serve one seeded workload at the given consistency level."""
        if level not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"unknown consistency level {level!r}; "
                f"choose from {CONSISTENCY_LEVELS}"
            )
        horizon = (
            workload.horizon
            if workload.horizon is not None
            else self.default_horizon
        )
        span = max(horizon - workload.start, 0.0)
        views = sorted(self.view_shard)
        rng = random.Random(workload.seed)
        uniform = rng.random
        pick_view = rng.randrange
        view_count = len(views)
        # Generate, then bucket reads per owning shard: the queueing
        # simulation needs arrival order per shard.
        per_shard: dict[int, list[tuple[float, str, bool]]] = {
            shard_id: [] for shard_id in self.timelines
        }
        scan_fraction = workload.scan_fraction
        start = workload.start
        for _ in range(workload.count):
            at = start + uniform() * span
            view = views[pick_view(view_count)]
            per_shard[self.view_shard[view]].append(
                (at, view, uniform() < scan_fraction)
            )
        committed = level == READ_COMMITTED_VERSION
        if committed:
            global_times, global_watermarks = self._global_watermark_steps()
        latencies: list[float] = []
        total_wait = 0.0
        total_staleness = 0.0
        max_staleness = 0.0
        stale_reads = 0
        point_cost = self.cost.point_read()
        scan_base = self.cost.read_scan_base
        scan_per_tuple = self.cost.read_scan_per_tuple
        servers = max(1, self.cost.read_servers)
        for shard_id, reads in per_shard.items():
            if not reads:
                continue
            reads.sort()
            timeline = self.timelines[shard_id]
            times = timeline.times
            watermarks = timeline.watermarks
            view_sizes = timeline.view_sizes
            free_at = [0.0] * servers  # heap of server-free times
            # Reads are served in ``at`` order and every lookup target
            # is monotone in ``at`` (install times, the global
            # watermark step function, and — because the cut is
            # nondecreasing — the watermark cap), so all three
            # per-read binary searches collapse to pointers that only
            # ever advance: O(reads + versions) per shard instead of
            # O(reads * log versions).  test_reads asserts the loop
            # performs zero bisect calls.
            version_count = len(times)
            version_ptr = 0  # newest version with times[ptr] <= at
            cut_ptr = 0  # steps into the global watermark function
            cap_count = len(global_times) if committed else 0
            cap_ptr = 0  # count of watermarks <= current global cut
            for at, view, scan in reads:
                while (
                    version_ptr + 1 < version_count
                    and times[version_ptr + 1] <= at
                ):
                    version_ptr += 1
                version = version_ptr
                if committed:
                    while (
                        cut_ptr + 1 < cap_count
                        and global_times[cut_ptr + 1] <= at
                    ):
                        cut_ptr += 1
                    cut = global_watermarks[cut_ptr]
                    while (
                        cap_ptr < version_count
                        and watermarks[cap_ptr] <= cut
                    ):
                        cap_ptr += 1
                    # Newest version <= ``version`` whose watermark
                    # does not exceed the global cut — identical to
                    # ``bisect_right(watermarks, cut, hi=version + 1)
                    # - 1`` clamped at 0.
                    version = max(0, min(cap_ptr - 1, version))
                staleness = timeline.staleness_of(version, at)
                if staleness > 0.0:
                    stale_reads += 1
                    total_staleness += staleness
                    if staleness > max_staleness:
                        max_staleness = staleness
                if scan:
                    service = (
                        scan_base
                        + view_sizes[view][version] * scan_per_tuple
                    )
                else:
                    service = point_cost
                earliest = free_at[0]
                wait = earliest - at if earliest > at else 0.0
                heapq.heapreplace(free_at, at + wait + service)
                total_wait += wait
                latencies.append(wait + service)
        latencies.sort()
        count = len(latencies)
        report = ReadReport(
            level=level,
            count=count,
            p50_latency=latencies[count // 2] if count else 0.0,
            p99_latency=latencies[min(count - 1, (count * 99) // 100)]
            if count
            else 0.0,
            mean_latency=sum(latencies) / count if count else 0.0,
            max_latency=latencies[-1] if count else 0.0,
            mean_wait=total_wait / count if count else 0.0,
            mean_staleness=total_staleness / count if count else 0.0,
            max_staleness=max_staleness,
            stale_fraction=stale_reads / count if count else 0.0,
        )
        if metrics is not None:
            metrics.reads_served += count
            metrics.read_latency_time += sum(latencies)
            metrics.read_wait_time += total_wait
            metrics.stale_reads += stale_reads
            metrics.staleness_time += total_staleness
        return report
