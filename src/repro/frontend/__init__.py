"""Read-serving front end for the (sharded) warehouse.

The maintenance plane keeps view extents fresh; this package simulates
the *consumers*: seeded point/scan read workloads replayed against the
per-install version timelines the engines record, at configurable
consistency levels, with p50/p99 latency and staleness reported next to
makespan.
"""

from .reads import (
    READ_COMMITTED_VERSION,
    READ_LATEST,
    ReadFrontEnd,
    ReadReport,
    ReadWorkload,
    ShardTimeline,
)

__all__ = [
    "READ_COMMITTED_VERSION",
    "READ_LATEST",
    "ReadFrontEnd",
    "ReadReport",
    "ReadWorkload",
    "ShardTimeline",
]
