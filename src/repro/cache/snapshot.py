"""Version-stamped snapshot cache with local delta patching.

Self-maintenance fast path: most maintenance queries re-ask sources
near-identical questions — the same IN-list probe recurs across adjacent
UMQ messages that touch the same join keys, and across the views of a
:class:`~repro.views.multi.MultiViewManager` maintaining one unit for
every view.  The cache memoizes probe and scan answers keyed by
``(source, normalized query)`` and stamped with the source's monotone
*commit version* at evaluation time.

The core trick is **local delta patching**: a cached answer stamped at
version *v* < current is not a miss.  The committed updates in the gap
``(v, current]`` are exactly the source's log suffix — state the view
manager already holds for SWEEP compensation — so the answer is brought
forward *locally* by applying each gap delta's effect on the probe query
(:func:`~repro.maintenance.compensation.effect_on_answer`), the same
exact single-relation evaluation compensation relies on, run in the
opposite direction (forward in time instead of backward).  No round
trip, no channel occupancy, no fault exposure.

Broken-query semantics (Theorem 1) are preserved by construction: any
schema change in the gap invalidates the entry, because a real query
shipped now could have broken on the changed metadata and serving a
stale answer would mask the in-exec detection path.  A DU-only gap means
the source's schema at the stamp and now are identical, so a query that
succeeded at *v* cannot be broken at current — patching is safe exactly
when it is applied.

The cache is deliberately *source-versioned, not view-versioned*: keys
carry the full normalized query text, so view definition rewrites simply
produce new keys, and entries built for the old definition age out of
the LRU without any cross-layer invalidation protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..maintenance.compensation import effect_on_answer
from ..relational.errors import RelationalError
from ..relational.query import SPJQuery
from ..relational.table import Table
from ..sim.metrics import Metrics
from ..sources.source import DataSource

#: default bound on resident entries (FIFO-recency eviction)
DEFAULT_MAX_ENTRIES = 4096


def normalized_query_key(query: SPJQuery) -> str:
    """Canonical cache key text for a maintenance query.

    ``SPJQuery.sql()`` is deterministic for this purpose: IN-list values
    render sorted (``InPredicate.sql``) and probe attributes are added
    in sorted order (``decompose.probe_query``), so two probes built
    from the same value sets — by different units or different views —
    normalize to the same key.
    """
    return query.sql()


@dataclass(frozen=True)
class CacheHit:
    """One served answer plus the patch work it took to produce it."""

    table: Table
    #: signed tuples applied while patching the entry forward (0 for an
    #: exact-version hit); the caller charges ``patch_per_row`` each
    patched_rows: int

    @property
    def patched(self) -> bool:
        return self.patched_rows > 0


@dataclass
class _Entry:
    version: int
    table: Table


class SnapshotCache:
    """Per-source memo of maintenance-query answers, patchable in place.

    Only single-relation queries are cacheable: patching needs the exact
    effect of a gap delta on the answer, which is computable locally iff
    the query binds no other relation (the same property that makes
    SWEEP compensation exact — see :mod:`repro.maintenance.compensation`).
    """

    def __init__(
        self,
        metrics: Metrics | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        self.metrics = metrics
        self.max_entries = max(1, max_entries)
        #: (source name, normalized query) -> entry, insertion-ordered
        #: for recency eviction (served entries are re-inserted)
        self._entries: dict[tuple[str, str], _Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def cacheable(query: SPJQuery) -> bool:
        return len(query.relations) == 1

    # ------------------------------------------------------------------
    # metrics plumbing (all counters live on the engine Metrics)
    # ------------------------------------------------------------------

    def _count(self, counter: str, amount: int = 1) -> None:
        if self.metrics is not None:
            setattr(
                self.metrics, counter, getattr(self.metrics, counter) + amount
            )

    # ------------------------------------------------------------------
    # store / serve
    # ------------------------------------------------------------------

    def store(
        self,
        source: DataSource,
        query: SPJQuery,
        answer: Table,
        version: int | None = None,
    ) -> None:
        """Memoize a freshly evaluated answer at the source's version.

        ``version`` defaults to the source's current commit version —
        callers must invoke this at the evaluation instant, before any
        further virtual time (and therefore further commits) passes.
        """
        if not self.cacheable(query):
            return
        key = (source.name, normalized_query_key(query))
        stamped = source.commit_version if version is None else version
        # Refresh recency on overwrite.
        self._entries.pop(key, None)
        self._entries[key] = _Entry(stamped, answer.copy())
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))

    def serve(self, source: DataSource, query: SPJQuery) -> CacheHit | None:
        """Answer ``query`` from the cache, patching forward if stale.

        Returns ``None`` on a genuine miss *or* when a schema change
        committed since the stamp (the entry is dropped: serving it
        could mask a broken query, violating Theorem 1's reading of the
        flag).  A returned hit reflects every update the source has
        committed up to *now* — byte-equal to a zero-latency round trip.
        """
        if not self.cacheable(query):
            return None
        key = (source.name, normalized_query_key(query))
        entry = self._entries.get(key)
        if entry is None:
            self._count("cache_misses")
            return None
        current = source.commit_version
        gap = source.updates_since(entry.version)
        if any(message.is_schema_change for message in gap):
            del self._entries[key]
            self._count("cache_invalidations_sc")
            self._count("cache_misses")
            return None
        ref = query.relations[0]
        patched_rows = 0
        table = entry.table
        relevant = [
            message
            for message in gap
            if message.is_data_update
            and message.payload.relation == ref.relation
        ]
        if relevant:
            corrected = table.as_delta()
            for message in relevant:
                try:
                    effect = effect_on_answer(
                        query, ref.alias, message.payload.delta
                    )
                except RelationalError:
                    # Schema drift the gap scan did not explain: be
                    # conservative, drop the entry, go remote.
                    del self._entries[key]
                    self._count("cache_misses")
                    return None
                patched_rows += sum(
                    abs(count) for _row, count in effect.items()
                )
                corrected.merge(effect)
            # Rows already passed validation on the way into the cache
            # and the deltas came from committed updates — adopt the
            # positive part in bulk rather than re-validating per row.
            table = Table.from_counts(
                table.schema,
                {row: count for row, count in corrected.items() if count > 0},
            )
            self._count("patched_answers")
        # Move-to-end on *every* hit, not just after a non-empty gap: the
        # insertion-ordered dict doubles as the recency order, so an
        # exact hit left in place would age like an untouched entry and
        # the ``max_entries`` loop would evict the hottest keys
        # FIFO-style.  (A non-empty gap additionally re-stamps at
        # ``current`` so the next serve is an exact hit.)
        del self._entries[key]
        self._entries[key] = _Entry(current, table)
        self._count("cache_hits")
        self._count("saved_round_trips")
        return CacheHit(table.copy(), patched_rows)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def invalidate_source(self, source_name: str) -> int:
        """Drop every entry of one source (e.g. on reconnect after an
        outage whose commits the view manager cannot enumerate).
        Returns the number of entries dropped.  Ordinary schema changes
        need no eager call — the per-entry gap scan invalidates lazily.
        """
        stale = [key for key in self._entries if key[0] == source_name]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    # checkpoint / recovery plumbing
    # ------------------------------------------------------------------

    def export_entries(self) -> list[tuple[str, str, int, Table]]:
        """Snapshot the resident entries for a warehouse checkpoint.

        Returns ``(source name, query key, version stamp, answer)``
        rows in recency order; tables are copied so the checkpoint
        cannot alias live state.  JSON encoding is the checkpoint
        layer's business, not the cache's.
        """
        return [
            (source, key, entry.version, entry.table.copy())
            for (source, key), entry in self._entries.items()
        ]

    def restore_entries(
        self, entries: list[tuple[str, str, int, Table]]
    ) -> int:
        """Re-seed the cache from checkpointed entries (post-recovery).

        The caller filters by watermark — entries stamped newer than the
        committed-update watermark must not be passed in.  Returns how
        many entries were installed.
        """
        for source, key, version, table in entries:
            self._entries.pop((source, key), None)
            self._entries[(source, key)] = _Entry(version, table.copy())
            while len(self._entries) > self.max_entries:
                self._entries.pop(next(iter(self._entries)))
        return len(entries)
