"""Snapshot caching of maintenance-query answers (self-maintenance).

See :mod:`repro.cache.snapshot` for the versioning and patching rules.
"""

from .snapshot import CacheHit, SnapshotCache, normalized_query_key

__all__ = ["CacheHit", "SnapshotCache", "normalized_query_key"]
