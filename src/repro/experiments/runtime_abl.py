"""ABL-13: the multi-core runtime ablation — inline vs process-parallel.

Like ABL-12 this figure reports **wall-clock** seconds (``timebase:
"wall"``): the process runtime is not allowed to move a single virtual
number — the equivalence tests and this figure's own identity checks
hold extents, committed sets and per-shard virtual clocks byte-identical
across process counts — so its entire effect is how many cores execute
the shard worlds.

Arms, per point of the process-count sweep over the 4-subview sharded
testbed (x = worker processes; 0 = the inline coordinator oracle):

* ``build_s`` — world construction (inline: the four worlds built
  serially in-process; N processes: fork + per-worker builds, which
  parallelize too);
* ``exec_s`` — driving the worlds to quiescence (the maintenance work
  itself; for process arms this is the coordinator-round phase plus
  state collection);
* ``total_s`` and the headline ``speedup`` (inline total / arm total),
  plus ``exec_speedup`` on the execution phase alone;
* ``plan_cache_hits`` / ``plan_cache_recompiles`` — kernel cache
  efficiency summed over shards.  Fork-started workers inherit the
  parent's warm plan cache, so process arms can report *fewer*
  recompiles than inline; under a spawn start method each worker
  compiles its own cache instead.

Every process arm must be **byte-identical** to inline: extents,
committed ``(source, seqno)`` sets and per-shard virtual clocks.  A set
of hardened identity arms (optimistic strategy, fault plan, crash plan,
parallel workers) re-proves identity under adversarial configurations at
small scale.  Any divergence clears the figure's consistency bit.

The speedup bar (>= 1.8x at 4 processes) is only meaningful on a
machine with >= 4 cores; the benchmark gates its assertion on
``os.sched_getaffinity`` and records numbers unconditionally.
"""

from __future__ import annotations

import time

from ..core.strategies import OPTIMISTIC, PESSIMISTIC
from .runner import FigureResult
from .testbed import build_sharded_testbed, source_name


def _timed_arm(
    processes: int,
    strategy,
    du_count: int,
    sc_count: int,
    tuples_per_relation: int,
    seed: int,
    fault_plan=None,
    crash_plan=None,
    parallel_workers=None,
):
    """One full sharded run; returns ``(timings, identity, metrics)``.

    ``timings`` is ``(build_s, exec_s, total_s)``; ``identity`` is the
    byte-comparable ``(extents, committed, shard_clocks)`` triple.
    """
    started = time.perf_counter()
    testbed = build_sharded_testbed(
        strategy,
        shards=4,
        tuples_per_relation=tuples_per_relation,
        seed=3,
        shard_processes=processes,
        fault_plan=fault_plan,
        crash_plan=crash_plan,
        parallel_workers=parallel_workers,
    )
    testbed.schedule_du_workload(
        du_count, start=0.05, interval=0.05, seed=seed
    )
    if sc_count:
        testbed.schedule_sc_workload(
            sc_count, start=1.0, interval=9.0, seed=seed + 4
        )
    if processes:
        testbed.runtime.prepare()
        build_s = testbed.runtime.timings["prepare"]
    else:
        build_s = time.perf_counter() - started
    exec_started = time.perf_counter()
    testbed.run()
    if processes:
        timings = testbed.runtime.timings
        exec_s = timings["execute"] + timings["collect"]
    else:
        exec_s = time.perf_counter() - exec_started
    identity = (
        testbed.extent_rows(),
        testbed.committed_updates(),
        testbed.shard_clocks(),
    )
    return (build_s, exec_s, build_s + exec_s), identity, testbed.metrics


def _check_identity(result, label, oracle, arm) -> None:
    names = ("extents", "committed set", "shard clocks")
    for name, expected, actual in zip(names, oracle, arm):
        if expected != actual:
            result.consistent = False
            result.notes.append(
                f"{label}: {name} diverged from the inline oracle"
            )


HARDENED_ARMS = (
    ("optimistic", dict(strategy=OPTIMISTIC)),
    ("fault-plan", dict(fault_seed=5)),
    ("crash-plan", dict(crash_seed=9)),
    ("workers=2", dict(parallel_workers=2)),
)


def run_runtime_ablation(
    process_counts: tuple[int, ...] = (0, 1, 2, 4),
    du_count: int = 48,
    sc_count: int = 2,
    tuples_per_relation: int = 120,
    seed: int = 5,
    repeats: int = 2,
    identity_arms: bool = True,
) -> FigureResult:
    """Measure inline vs N-process wall time; prove result identity."""
    result = FigureResult(
        figure_id="ABL-13-runtime",
        title="Multi-core shard runtime: inline vs process-parallel",
        x_label="worker processes (0 = inline)",
        series_names=[
            "build_s",
            "exec_s",
            "total_s",
            "speedup",
            "exec_speedup",
            "plan_cache_hits",
            "plan_cache_recompiles",
        ],
        timebase="wall",
    )
    counts = list(process_counts)
    if 0 not in counts:
        counts.insert(0, 0)  # the oracle arm anchors every comparison
    inline_timings = None
    inline_identity = None
    for processes in counts:
        best = None
        identity = None
        metrics = None
        for _ in range(repeats):
            timings, identity, metrics = _timed_arm(
                processes,
                PESSIMISTIC,
                du_count,
                sc_count,
                tuples_per_relation,
                seed,
            )
            if best is None or timings[2] < best[2]:
                best = timings
        if processes == 0:
            inline_timings, inline_identity = best, identity
        else:
            _check_identity(
                result, f"{processes} processes", inline_identity, identity
            )
        result.add(
            processes,
            build_s=best[0],
            exec_s=best[1],
            total_s=best[2],
            speedup=inline_timings[2] / best[2] if best[2] else 0.0,
            exec_speedup=inline_timings[1] / best[1] if best[1] else 0.0,
            plan_cache_hits=metrics.plan_cache_hits,
            plan_cache_recompiles=metrics.plan_cache_recompiles,
        )
    if identity_arms:
        _run_hardened_arms(result, seed)
    return result


def _run_hardened_arms(result: FigureResult, seed: int) -> None:
    """Re-prove inline/process identity under adversarial configs.

    Small scale, 2 processes: the point is configuration coverage
    (strategy x faults x crashes x workers), not timing.
    """
    from ..faults.plan import FaultPlan
    from ..recovery import CrashPlan

    sources = [source_name(index) for index in range(3)]
    for label, config in HARDENED_ARMS:
        kwargs = dict(
            strategy=config.get("strategy", PESSIMISTIC),
            du_count=10,
            sc_count=1,
            tuples_per_relation=48,
            seed=seed,
            parallel_workers=config.get("parallel_workers"),
        )
        if "fault_seed" in config:
            kwargs["fault_plan"] = FaultPlan.random(
                config["fault_seed"], sources
            )
        if "crash_seed" in config:
            kwargs["crash_plan"] = CrashPlan.random(config["crash_seed"])
        _, oracle, _ = _timed_arm(0, **kwargs)
        _, arm, _ = _timed_arm(2, **kwargs)
        _check_identity(result, f"hardened[{label}]", oracle, arm)
        if result.consistent:
            result.notes.append(f"hardened[{label}]: identical")
