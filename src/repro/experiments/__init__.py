"""Experiment harnesses reproducing the paper's evaluation (Section 6)."""

from .ablations import (
    run_blind_merge_ablation,
    run_graph_scaling_ablation,
    run_group_maintenance_ablation,
    run_incremental_detection_ablation,
    run_parallel_ablation,
    run_recovery_ablation,
    run_self_maintenance_ablation,
    run_sharding_ablation,
    run_snapshot_cache_ablation,
)
from .fig08 import run_figure as run_fig08
from .fig09 import run_figure as run_fig09
from .fig10 import run_figure as run_fig10
from .fig11 import run_figure as run_fig11
from .fig12 import run_figure as run_fig12
from .runner import FigureResult, SeriesPoint
from .starvation import run_starvation_study
from .testbed import (
    ShardedTestbed,
    Testbed,
    build_multiview_testbed,
    build_sharded_testbed,
    build_testbed,
)
from .runtime_abl import run_runtime_ablation
from .wallclock import run_wallclock_ablation

__all__ = [
    "FigureResult",
    "SeriesPoint",
    "ShardedTestbed",
    "Testbed",
    "build_multiview_testbed",
    "build_sharded_testbed",
    "build_testbed",
    "run_blind_merge_ablation",
    "run_fig08",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_graph_scaling_ablation",
    "run_group_maintenance_ablation",
    "run_incremental_detection_ablation",
    "run_parallel_ablation",
    "run_recovery_ablation",
    "run_runtime_ablation",
    "run_self_maintenance_ablation",
    "run_sharding_ablation",
    "run_snapshot_cache_ablation",
    "run_starvation_study",
    "run_wallclock_ablation",
]
