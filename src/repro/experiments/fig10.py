"""Figure 10 — effect of the schema-change time interval on abort cost.

Workload (Section 6.4.1): 200 data updates plus ten schema changes (one
drop-attribute followed by nine rename-relations, randomly placed over
the six relations), varying the interval between consecutive schema
changes.

Expected shape:

* interval 0 (all SCs flood in before maintenance starts) is cheapest —
  one correction round fixes everything, no broken queries;
* cost peaks when the interval approximates one schema-change
  maintenance time (each new SC lands near the end of the ongoing
  maintenance, wasting almost a whole run);
* beyond the maintenance time the SCs stop interfering and the cost
  settles at pure maintenance.
"""

from __future__ import annotations

from ..core.strategies import OPTIMISTIC, PESSIMISTIC
from ..maintenance.grouping import BatchPolicy
from ..views.consistency import check_convergence
from .runner import FigureResult
from .testbed import build_testbed, recovery_knobs

DEFAULT_INTERVALS = (0.0, 3.0, 9.0, 17.0, 23.0, 29.0, 41.0)
QUICK_INTERVALS = (0.0, 17.0, 41.0)


def run_figure(
    intervals: tuple[float, ...] = DEFAULT_INTERVALS,
    du_count: int = 200,
    sc_count: int = 10,
    tuples_per_relation: int = 2000,
    du_interval: float = 0.5,
    seed: int = 7,
    snapshot_cache: bool = False,
    self_maintenance: bool = False,
    group_maintenance: bool = False,
    journal: bool = False,
    checkpoint_every: int = 8,
    crash_seed: int | None = None,
    shards: int = 1,
) -> FigureResult:
    result = FigureResult(
        figure_id="FIG-10",
        title="Maintenance + abort cost vs SC time interval (virtual s)",
        x_label="interval_s",
        series_names=[
            "optimistic",
            "abort_of_optimistic",
            "pessimistic",
            "abort_of_pessimistic",
        ],
    )
    for interval in intervals:
        values: dict[str, float] = {}
        for name, strategy in (
            ("optimistic", OPTIMISTIC),
            ("pessimistic", PESSIMISTIC),
        ):
            testbed = build_testbed(
                strategy,
                tuples_per_relation=tuples_per_relation,
                snapshot_cache=snapshot_cache,
                self_maintenance=self_maintenance,
                batch_policy=BatchPolicy() if group_maintenance else None,
                shards=shards,
                **recovery_knobs(journal, checkpoint_every, crash_seed),
            )
            testbed.engine.schedule_workload(
                testbed.random_du_workload(
                    du_count, start=0.0, interval=du_interval, seed=seed
                )
            )
            testbed.engine.schedule_workload(
                testbed.schema_change_workload(
                    sc_count, start=0.0, interval=interval, seed=seed + 4
                )
            )
            testbed.run()
            values[name] = testbed.metrics.maintenance_cost
            values[f"abort_of_{name}"] = testbed.metrics.abort_cost
            report = check_convergence(testbed.manager)
            if not report.consistent:
                result.consistent = False
                result.notes.append(
                    f"{name} interval={interval}: {report.summary()}"
                )
        result.add(interval, **values)
    return result
