"""Figure 8 — data-update processing with and without detection.

The paper's claim: Dyno's detection machinery adds *almost unobservable*
overhead to pure data-update streams, because the schema-change flag
keeps pre-exec detection O(1) and in-exec detection never fires without
schema changes.

Reproduction: maintain N random data updates (N on the x-axis) under

* ``with_detection`` — the pessimistic Dyno scheduler (flag checks every
  iteration, ready to build graphs), and
* ``without_detection`` — the naive FIFO scheduler with no detection at
  all (safe here: no schema changes ever arrive).

Expected shape: two nearly identical, linear lines.
"""

from __future__ import annotations

from ..core.strategies import NAIVE, PESSIMISTIC
from ..maintenance.grouping import BatchPolicy
from ..views.consistency import check_convergence
from .runner import FigureResult
from .testbed import build_testbed, recovery_knobs

DEFAULT_DU_COUNTS = (500, 1000, 1500, 2000, 2500, 3000)
QUICK_DU_COUNTS = (100, 200, 400)


def run_figure(
    du_counts: tuple[int, ...] = DEFAULT_DU_COUNTS,
    tuples_per_relation: int = 2000,
    du_interval: float = 0.2,
    seed: int = 7,
    snapshot_cache: bool = False,
    self_maintenance: bool = False,
    group_maintenance: bool = False,
    journal: bool = False,
    checkpoint_every: int = 8,
    crash_seed: int | None = None,
    shards: int = 1,
) -> FigureResult:
    result = FigureResult(
        figure_id="FIG-8",
        title="DU processing cost with vs without detection (virtual s)",
        x_label="#DUs",
        series_names=["with_detection", "without_detection"],
    )
    for count in du_counts:
        values: dict[str, float] = {}
        for name, strategy in (
            ("with_detection", PESSIMISTIC),
            ("without_detection", NAIVE),
        ):
            testbed = build_testbed(
                strategy,
                tuples_per_relation=tuples_per_relation,
                snapshot_cache=snapshot_cache,
                self_maintenance=self_maintenance,
                batch_policy=BatchPolicy() if group_maintenance else None,
                shards=shards,
                **recovery_knobs(journal, checkpoint_every, crash_seed),
            )
            testbed.engine.schedule_workload(
                testbed.random_du_workload(
                    count, start=0.0, interval=du_interval, seed=seed
                )
            )
            testbed.run()
            values[name] = testbed.metrics.maintenance_cost
            report = check_convergence(testbed.manager)
            if not report.consistent:
                result.consistent = False
                result.notes.append(f"{name} N={count}: {report.summary()}")
        result.add(count, **values)
    overheads = [
        point.values["with_detection"] - point.values["without_detection"]
        for point in result.points
    ]
    result.notes.append(
        f"max detection overhead: {max(overheads):.4f} virtual s"
    )
    return result
