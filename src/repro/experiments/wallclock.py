"""ABL-12: the wall-clock kernel ablation — compiled vs naive executor.

Every other figure in this repository reports *virtual* seconds from the
calibrated cost model; this one reports **wall-clock** seconds measured
with ``time.perf_counter``.  The two lanes are deliberately separate:
the compiled kernel (:mod:`repro.relational.plan`) is not allowed to
move a single virtual-clock number — simulated costs are charged from
the cost model, never from the Python evaluator — so its entire effect
is the real time the reproduction takes to run.

Arms, per point of the data-update sweep:

* **maintain / memory** — the fig12-shaped DU stream (mixed
  insert/delete updates over the 6-way join view) driven to quiescence
  on the in-process backend, once per executor;
* **maintain / sqlite** — the same stream with sources answering over
  stdlib ``sqlite3``.  Source answers come from SQL here, so the
  kernel only accelerates the warehouse-local delta evaluation — the
  honest lower bound of the speedup;
* **recompute** — the fig08-shaped join-heavy arm: a full 6-way join
  recomputation of the view over populated sources.  This is where the
  compiled plans, closure predicates and the columnar hash join carry
  the whole workload; the acceptance bar (compiled >= 2x naive) is
  asserted on this arm.

Every compiled arm must be **byte-identical** to its naive twin: same
final view extent, same committed ``(source, seqno)`` set, same final
virtual clock.  Any divergence clears the figure's consistency bit.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from pathlib import Path

from ..core.strategies import PESSIMISTIC
from ..relational.executor import executor_mode, set_executor_mode
from .runner import FigureResult
from .testbed import build_testbed

MODES = ("naive", "compiled")


def _maintenance_arm(
    mode: str,
    backend: str,
    du_count: int,
    tuples_per_relation: int,
    seed: int,
    key_domain: int,
    repeats: int,
):
    """Run the DU stream once per repeat; keep the best wall time.

    Returns ``(wall_seconds, virtual_cost, extent, committed)`` with
    extent/committed byte-comparable across executor modes.
    """
    set_executor_mode(mode)
    best = float("inf")
    testbed = None
    for _ in range(repeats):
        testbed = build_testbed(
            PESSIMISTIC,
            tuples_per_relation=tuples_per_relation,
            backend=backend,
        )
        testbed.engine.schedule_workload(
            testbed.random_du_workload(
                du_count,
                start=0.05,
                interval=0.01,
                seed=seed,
                key_domain=key_domain,
            )
        )
        started = time.perf_counter()
        testbed.run()
        best = min(best, time.perf_counter() - started)
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    committed = frozenset(testbed.committed_updates())
    return best, testbed.metrics.elapsed, extent, committed


def _recompute_arm(mode: str, tuples_per_relation: int, repeats: int):
    """Time a full 6-way join recompute of the view (join-heavy arm)."""
    set_executor_mode(mode)
    testbed = build_testbed(
        PESSIMISTIC, tuples_per_relation=tuples_per_relation
    )
    manager = testbed.manager
    best = float("inf")
    table = None
    for _ in range(repeats + 1):  # one extra: warm caches/compile once
        started = time.perf_counter()
        table = manager.recompute_reference()
        best = min(best, time.perf_counter() - started)
    extent = tuple(sorted(map(tuple, table.rows())))
    return best, extent


def _profiled(callable_, path: Path) -> None:
    """Run ``callable_`` under cProfile; dump binary + text artifacts."""
    profiler = cProfile.Profile()
    profiler.enable()
    callable_()
    profiler.disable()
    profiler.dump_stats(path)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    with open(path.with_suffix(".txt"), "w") as sink:
        stats.stream = sink  # pstats prints to its stream attribute
        stats.print_stats(30)


def run_wallclock_ablation(
    du_counts: tuple[int, ...] = (40, 80),
    tuples_per_relation: int = 300,
    recompute_tuples: int = 2500,
    backends: tuple[str, ...] = ("memory", "sqlite"),
    key_domain: int = 40,
    seed: int = 5,
    repeats: int = 3,
    profile_dir: str | Path | None = None,
) -> FigureResult:
    """Measure compiled-vs-naive wall time; prove result identity.

    ``profile_dir`` additionally re-runs the heaviest compiled and
    naive arms under ``cProfile`` and drops ``*.prof`` (binary, for
    ``snakeviz``/``pstats``) and ``*.txt`` (top-30 cumulative) files
    there — the profiling lane of the wall-clock bench.
    """
    result = FigureResult(
        figure_id="ABL-12-wallclock",
        title="Wall-clock kernel: compiled plans vs naive executor",
        x_label="data updates",
        series_names=[
            name
            for backend in backends
            for name in (
                f"{backend}_naive_s",
                f"{backend}_compiled_s",
                f"{backend}_maintain_speedup",
            )
        ]
        + ["recompute_naive_s", "recompute_compiled_s", "recompute_speedup"],
        timebase="wall",
    )
    previous_mode = executor_mode()
    try:
        for du_count in du_counts:
            row: dict[str, float] = {}
            for backend in backends:
                arms = {
                    mode: _maintenance_arm(
                        mode,
                        backend,
                        du_count,
                        tuples_per_relation,
                        seed,
                        key_domain,
                        repeats,
                    )
                    for mode in MODES
                }
                naive, compiled = arms["naive"], arms["compiled"]
                # Identity: extent, committed set, virtual clock.
                if naive[2] != compiled[2] or naive[3] != compiled[3]:
                    result.consistent = False
                    result.notes.append(
                        f"{backend} du={du_count}: compiled arm diverged "
                        "from the naive oracle"
                    )
                if naive[1] != compiled[1]:
                    result.consistent = False
                    result.notes.append(
                        f"{backend} du={du_count}: virtual clock moved "
                        f"({naive[1]} -> {compiled[1]}) — the executor "
                        "must not perturb simulated costs"
                    )
                row[f"{backend}_naive_s"] = naive[0]
                row[f"{backend}_compiled_s"] = compiled[0]
                row[f"{backend}_maintain_speedup"] = (
                    naive[0] / compiled[0] if compiled[0] else 0.0
                )
            if du_count == du_counts[-1]:
                naive_time, naive_extent = _recompute_arm(
                    "naive", recompute_tuples, repeats
                )
                compiled_time, compiled_extent = _recompute_arm(
                    "compiled", recompute_tuples, repeats
                )
                if naive_extent != compiled_extent:
                    result.consistent = False
                    result.notes.append(
                        "recompute: compiled extent diverged from naive"
                    )
                row["recompute_naive_s"] = naive_time
                row["recompute_compiled_s"] = compiled_time
                row["recompute_speedup"] = (
                    naive_time / compiled_time if compiled_time else 0.0
                )
            result.add(du_count, **row)
        if profile_dir is not None:
            profile_dir = Path(profile_dir)
            profile_dir.mkdir(parents=True, exist_ok=True)
            for mode in MODES:
                _profiled(
                    lambda m=mode: _recompute_arm(m, recompute_tuples, 1),
                    profile_dir / f"recompute_{mode}.prof",
                )
                _profiled(
                    lambda m=mode: _maintenance_arm(
                        m,
                        "memory",
                        du_counts[-1],
                        tuples_per_relation,
                        seed,
                        key_domain,
                        1,
                    ),
                    profile_dir / f"maintain_memory_{mode}.prof",
                )
    finally:
        set_executor_mode(previous_mode)
    return result
