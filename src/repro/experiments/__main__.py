"""Command-line runner for the figure reproductions.

Usage::

    python -m repro.experiments fig08 [--full]
    python -m repro.experiments fig09 fig10
    python -m repro.experiments all --full

Each figure prints the same series the paper charts; ``--full`` runs the
paper-scale sweeps (minutes), the default is a reduced configuration.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    run_blind_merge_ablation,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_graph_scaling_ablation,
    run_group_maintenance_ablation,
    run_incremental_detection_ablation,
    run_parallel_ablation,
    run_recovery_ablation,
    run_runtime_ablation,
    run_self_maintenance_ablation,
    run_sharding_ablation,
    run_snapshot_cache_ablation,
    run_starvation_study,
)
from .fig08 import QUICK_DU_COUNTS as FIG8_QUICK
from .fig10 import QUICK_INTERVALS as FIG10_QUICK
from .fig11 import QUICK_SC_COUNTS as FIG11_QUICK
from .fig12 import QUICK_DU_COUNTS as FIG12_QUICK

_QUICK_TUPLES = 500
_FULL_TUPLES = 2000


def _runners(
    full: bool,
    seed: int | None = None,
    snapshot_cache: bool = False,
    self_maintenance: bool = False,
    group_maintenance: bool = False,
    journal: bool = False,
    checkpoint_every: int = 8,
    crash_seed: int | None = None,
    shards: int = 1,
    shard_processes: int = 0,
) -> dict:
    tuples = _FULL_TUPLES if full else _QUICK_TUPLES
    # --seed overrides the workload seed of every runner that draws a
    # randomized stream (fig09's workload is deterministic); the value
    # threads through Testbed.random_du_workload and friends.
    seeded = {} if seed is None else {"seed": seed}
    # --cache turns the snapshot cache on for every figure runner, so
    # each chart can be produced in both arms; the ablations manage the
    # cache themselves (ABL-7 runs both arms internally).
    cached = {"snapshot_cache": snapshot_cache}
    # --self-maintenance likewise arms the auxiliary store for every
    # figure runner; ABL-10 runs its three arms internally.
    selfmaint = {"self_maintenance": self_maintenance}
    # --batch likewise arms adaptive group maintenance for every figure
    # runner; ABL-8 runs both arms internally.
    batched = {"group_maintenance": group_maintenance}
    # --journal / --checkpoint-every / --crash-seed arm the crash-
    # recovery subsystem on every fig08..fig12 testbed; a crash seed
    # draws one CrashPlan that kills and recovers each run mid-flight.
    # Crash-anywhere equivalence guarantees the recovered extent and
    # committed update set match the uncrashed run; the cost series
    # additionally charge the maintenance work redone after recovery.
    recovered = {
        "journal": journal or crash_seed is not None,
        "checkpoint_every": checkpoint_every,
        "crash_seed": crash_seed,
    }
    # --shards routes every fig08..fig12 testbed through the sharded
    # warehouse coordinator (single view => one effective shard, same
    # numbers, exercising the router + coordinator machinery end to
    # end); ABL-11 runs the real multi-view shard sweep internally.
    sharded = {"shards": shards}
    return {
        "fig08": lambda: run_fig08(
            tuples_per_relation=tuples,
            **({} if full else {"du_counts": FIG8_QUICK}),
            **seeded,
            **cached,
            **selfmaint,
            **batched,
            **recovered,
            **sharded,
        ),
        "fig09": lambda: run_fig09(
            tuples_per_relation=tuples,
            **cached,
            **selfmaint,
            **batched,
            **recovered,
            **sharded,
        ),
        "fig10": lambda: run_fig10(
            tuples_per_relation=tuples,
            **({} if full else {"intervals": FIG10_QUICK, "du_count": 60}),
            **seeded,
            **cached,
            **selfmaint,
            **batched,
            **recovered,
            **sharded,
        ),
        "fig11": lambda: run_fig11(
            tuples_per_relation=tuples,
            **({} if full else {"sc_counts": FIG11_QUICK, "du_count": 60}),
            **seeded,
            **cached,
            **selfmaint,
            **batched,
            **recovered,
            **sharded,
        ),
        "fig12": lambda: run_fig12(
            tuples_per_relation=tuples,
            **({} if full else {"du_counts": FIG12_QUICK}),
            **seeded,
            **cached,
            **selfmaint,
            **batched,
            **recovered,
            **sharded,
        ),
        "abl-blind-merge": lambda: run_blind_merge_ablation(
            tuples_per_relation=tuples,
            **({} if full else {"du_count": 60}),
            **seeded,
        ),
        "abl-graph-scaling": lambda: run_graph_scaling_ablation(),
        "abl-incremental-detection": lambda: (
            run_incremental_detection_ablation(
                **({} if full else {"sizes": (50, 100, 200)}),
                **seeded,
            )
        ),
        "abl-starvation": lambda: run_starvation_study(
            tuples_per_relation=min(tuples, 1000),
            **seeded,
        ),
        "abl-parallel": lambda: run_parallel_ablation(
            **(
                {"du_count": 80, "tuples_per_relation": 400}
                if full
                else {}
            ),
            **seeded,
        ),
        "abl-snapshot-cache": lambda: run_snapshot_cache_ablation(
            **(
                {"du_counts": (120, 240, 480), "tuples_per_relation": 400}
                if full
                else {}
            ),
            **seeded,
        ),
        "abl-self-maintenance": lambda: run_self_maintenance_ablation(
            **(
                {"du_counts": (120, 240, 480), "tuples_per_relation": 400}
                if full
                else {}
            ),
            **seeded,
        ),
        "abl-recovery": lambda: run_recovery_ablation(
            **(
                {"du_count": 96, "tuples_per_relation": 600}
                if full
                else {}
            ),
            **seeded,
        ),
        "abl-group-maintenance": lambda: run_group_maintenance_ablation(
            **(
                {"du_counts": (120, 240, 480), "tuples_per_relation": 400}
                if full
                else {}
            ),
            **seeded,
        ),
        "abl-sharding": lambda: run_sharding_ablation(
            **(
                {}
                if full
                else {
                    "du_count": 96,
                    "tuples_per_relation": 120,
                    "reads": 200_000,
                }
            ),
            **seeded,
            # --shard-processes executes the swept multi-shard arms on
            # OS worker processes (results bit-identical to inline).
            shard_processes=shard_processes,
        ),
        "abl-runtime": lambda: run_runtime_ablation(
            **(
                {
                    "du_count": 160,
                    "tuples_per_relation": 240,
                    "repeats": 3,
                }
                if full
                else {}
            ),
            **seeded,
            **(
                {"process_counts": (0, shard_processes)}
                if shard_processes
                else {}
            ),
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        help="figure ids (fig08..fig12, abl-*) or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale sweeps (minutes) instead of the quick defaults",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the workload seed of every randomized runner",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache",
        dest="snapshot_cache",
        action="store_true",
        help="run every figure with the snapshot cache enabled",
    )
    cache_group.add_argument(
        "--no-cache",
        dest="snapshot_cache",
        action="store_false",
        help="run without the snapshot cache (the default)",
    )
    parser.set_defaults(snapshot_cache=False)
    selfmaint_group = parser.add_mutually_exclusive_group()
    selfmaint_group.add_argument(
        "--self-maintenance",
        dest="self_maintenance",
        action="store_true",
        help="run every figure with the auxiliary self-maintenance "
        "store enabled (covered probes answered with zero round trips)",
    )
    selfmaint_group.add_argument(
        "--no-self-maintenance",
        dest="self_maintenance",
        action="store_false",
        help="run without the auxiliary store (the default)",
    )
    parser.set_defaults(self_maintenance=False)
    batch_group = parser.add_mutually_exclusive_group()
    batch_group.add_argument(
        "--batch",
        dest="group_maintenance",
        action="store_true",
        help="run every figure with adaptive group maintenance enabled",
    )
    batch_group.add_argument(
        "--no-batch",
        dest="group_maintenance",
        action="store_false",
        help="run without group maintenance (the default)",
    )
    parser.set_defaults(group_maintenance=False)
    parser.add_argument(
        "--journal",
        action="store_true",
        help="arm the write-ahead maintenance journal + checkpoints on "
        "every fig08..fig12 testbed (measures recovery overhead)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        metavar="N",
        help="checkpoint every N installed units when the journal is "
        "armed (default 8)",
    )
    parser.add_argument(
        "--crash-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="draw a seeded CrashPlan and kill + recover the warehouse "
        "mid-run in every fig08..fig12 testbed (implies --journal); "
        "every run must still converge to the uncrashed view state, "
        "with the redone work showing up in the cost series",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run every fig08..fig12 testbed through the sharded "
        "warehouse coordinator with N requested scheduler shards "
        "(single-view figures collapse to one effective shard; the "
        "baselines are unchanged at the default of 1 — the multi-view "
        "shard sweep is the abl-sharding runner)",
    )
    parser.add_argument(
        "--shard-processes",
        type=int,
        default=0,
        metavar="N",
        help="execute sharded-warehouse arms across N OS worker "
        "processes (the multi-core runtime, repro.core.runtime) "
        "instead of the inline coordinator; results are bit-identical "
        "— only wall-clock time moves.  Applies to abl-sharding's "
        "swept arms and narrows abl-runtime's sweep to (0, N); the "
        "default 0 keeps everything inline",
    )
    arguments = parser.parse_args(argv)
    if arguments.shards < 1:
        parser.error("--shards must be >= 1")
    if arguments.shard_processes < 0:
        parser.error("--shard-processes must be >= 0")

    runners = _runners(
        arguments.full,
        arguments.seed,
        arguments.snapshot_cache,
        arguments.self_maintenance,
        arguments.group_maintenance,
        arguments.journal,
        arguments.checkpoint_every,
        arguments.crash_seed,
        arguments.shards,
        arguments.shard_processes,
    )
    requested = (
        list(runners) if "all" in arguments.figures else arguments.figures
    )
    unknown = [name for name in requested if name not in runners]
    if unknown:
        parser.error(
            f"unknown figure(s) {unknown}; choose from {list(runners)}"
        )

    for name in requested:
        started = time.time()
        result = runners[name]()
        print(result.table())
        print(f"({name} ran in {time.time() - started:.1f}s wall)\n")
        if not result.consistent:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
