"""Shared scaffolding for figure reproductions.

Each figure module produces a :class:`FigureResult` — the series the
paper charts, as rows of numbers — and the benchmark harness prints it.
Absolute values are virtual seconds from the calibrated cost model; the
claims under test are the *shapes* (who wins, where peaks/crossovers
fall), recorded per figure in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class SeriesPoint:
    """One x position with one value per series."""

    x: float | int | str
    values: dict[str, float]


@dataclass
class FigureResult:
    """A reproduced table/figure, ready to print."""

    figure_id: str
    title: str
    x_label: str
    series_names: list[str]
    points: list[SeriesPoint] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    consistent: bool = True
    #: what the numbers are measured in: ``"virtual"`` (cost-model
    #: seconds — deterministic, regression-checked exactly), ``"wall"``
    #: (``time.perf_counter`` seconds — jittery, regression-checked
    #: against a generous tolerance band) or ``None`` (legacy figures,
    #: checked with the guard's default tolerance)
    timebase: str | None = None

    def add(self, x, **values: float) -> None:
        self.points.append(SeriesPoint(x, dict(values)))

    def series(self, name: str) -> list[float]:
        return [point.values[name] for point in self.points]

    def xs(self) -> list:
        return [point.x for point in self.points]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def table(self) -> str:
        header = [self.x_label] + self.series_names
        widths = [max(12, len(name) + 2) for name in header]
        lines = [
            f"{self.figure_id}: {self.title}",
            " | ".join(
                name.ljust(width) for name, width in zip(header, widths)
            ),
            "-+-".join("-" * width for width in widths),
        ]
        for point in self.points:
            cells = [str(point.x).ljust(widths[0])]
            for name, width in zip(self.series_names, widths[1:]):
                value = point.values.get(name)
                cell = "-" if value is None else f"{value:.2f}"
                cells.append(cell.ljust(width))
            lines.append(" | ".join(cells))
        for note in self.notes:
            lines.append(f"note: {note}")
        if not self.consistent:
            lines.append("WARNING: a run failed the convergence check")
        return "\n".join(lines)

    def to_json(self, indent: int = 2) -> str:
        """The figure as a machine-readable JSON document (the CI
        artifact format; keys sorted so baseline diffs are stable
        regardless of insertion order, points in series order)."""
        document = {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "series_names": list(self.series_names),
            "points": [
                {"x": point.x, "values": point.values}
                for point in self.points
            ],
            "notes": list(self.notes),
            "consistent": self.consistent,
        }
        if self.timebase is not None:
            document["timebase"] = self.timebase
        return json.dumps(document, indent=indent, sort_keys=True)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.table())


def checked(result: FigureResult, reports: Iterable) -> FigureResult:
    """Fold convergence reports into the figure result."""
    for report in reports:
        if not report.consistent:
            result.consistent = False
            result.notes.append(report.summary())
    return result
