"""Figure 12 — effect of the number of data updates on abort cost.

Workload (Section 6.4.2): five schema changes (one drop-attribute
followed by four rename-relations) at a fixed 25-second interval, with a
varying number of data updates.

Expected shape: the abort cost stays roughly flat as data updates grow —
aborts are caused by schema changes, not data volume — while the total
maintenance cost grows linearly with the number of data updates.
"""

from __future__ import annotations

from ..core.strategies import OPTIMISTIC, PESSIMISTIC
from ..maintenance.grouping import BatchPolicy
from ..views.consistency import check_convergence
from .runner import FigureResult
from .testbed import build_testbed, recovery_knobs

DEFAULT_DU_COUNTS = (200, 300, 400, 500, 600)
QUICK_DU_COUNTS = (200, 400)
SC_COUNT = 5
SC_INTERVAL = 25.0


def run_figure(
    du_counts: tuple[int, ...] = DEFAULT_DU_COUNTS,
    sc_count: int = SC_COUNT,
    sc_interval: float = SC_INTERVAL,
    tuples_per_relation: int = 2000,
    du_interval: float = 0.5,
    seed: int = 7,
    snapshot_cache: bool = False,
    self_maintenance: bool = False,
    group_maintenance: bool = False,
    journal: bool = False,
    checkpoint_every: int = 8,
    crash_seed: int | None = None,
    shards: int = 1,
) -> FigureResult:
    result = FigureResult(
        figure_id="FIG-12",
        title="Maintenance + abort cost vs #data updates (virtual s)",
        x_label="#DUs",
        series_names=[
            "optimistic",
            "abort_of_optimistic",
            "pessimistic",
            "abort_of_pessimistic",
        ],
    )
    for count in du_counts:
        values: dict[str, float] = {}
        for name, strategy in (
            ("optimistic", OPTIMISTIC),
            ("pessimistic", PESSIMISTIC),
        ):
            testbed = build_testbed(
                strategy,
                tuples_per_relation=tuples_per_relation,
                snapshot_cache=snapshot_cache,
                self_maintenance=self_maintenance,
                batch_policy=BatchPolicy() if group_maintenance else None,
                shards=shards,
                **recovery_knobs(journal, checkpoint_every, crash_seed),
            )
            testbed.engine.schedule_workload(
                testbed.random_du_workload(
                    count, start=0.0, interval=du_interval, seed=seed
                )
            )
            testbed.engine.schedule_workload(
                testbed.schema_change_workload(
                    sc_count, start=0.0, interval=sc_interval, seed=seed + 4
                )
            )
            testbed.run()
            values[name] = testbed.metrics.maintenance_cost
            values[f"abort_of_{name}"] = testbed.metrics.abort_cost
            report = check_convergence(testbed.manager)
            if not report.consistent:
                result.consistent = False
                result.notes.append(
                    f"{name} #DU={count}: {report.summary()}"
                )
        result.add(count, **values)
    return result
