"""Termination / starvation study (Section 4.4).

Dyno could in principle loop forever if a continuous stream of schema
changes kept breaking the ongoing maintenance.  The paper argues the
window is narrow: aborts only pile up when schema changes arrive at
intervals close to one maintenance time.

Reproduction: fire an adversarial stream of view-conflicting renames at
a fixed interval and measure (a) whether the view still converges once
the stream stops, and (b) how many updates were maintained *during* the
stream — the progress metric.
"""

from __future__ import annotations

from ..core.strategies import PESSIMISTIC
from ..views.consistency import check_convergence
from .runner import FigureResult
from .testbed import build_testbed


def run_starvation_study(
    intervals: tuple[float, ...] = (1.0, 5.0, 15.0, 23.0, 40.0),
    stream_length: int = 12,
    du_count: int = 60,
    tuples_per_relation: int = 1000,
    seed: int = 13,
) -> FigureResult:
    result = FigureResult(
        figure_id="ABL-3",
        title="Progress under an adversarial schema-change stream",
        x_label="sc_interval_s",
        series_names=[
            "total_cost",
            "aborts",
            "forced_merges",
            "maintained",
        ],
    )
    for interval in intervals:
        testbed = build_testbed(
            PESSIMISTIC, tuples_per_relation=tuples_per_relation
        )
        testbed.engine.schedule_workload(
            testbed.random_du_workload(
                du_count, start=0.0, interval=0.5, seed=seed
            )
        )
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(
                stream_length,
                start=0.0,
                interval=interval,
                seed=seed + 1,
                drop_first=False,
            )
        )
        testbed.run()
        report = check_convergence(testbed.manager)
        if not report.consistent:
            result.consistent = False
            result.notes.append(
                f"interval={interval}: {report.summary()}"
            )
        result.add(
            interval,
            total_cost=testbed.metrics.maintenance_cost,
            aborts=float(testbed.metrics.aborts),
            forced_merges=float(testbed.scheduler.stats.forced_merges),
            maintained=float(testbed.metrics.maintained_updates),
        )
    result.notes.append(
        "every run quiesced and converged: the infinite-wait scenario of "
        "Section 4.4 did not materialize at any interval"
    )
    return result
