"""Figure 11 — effect of the number of schema changes on abort cost.

Workload (Section 6.4.1): 200 data updates plus a varying number of
schema changes (one drop-attribute followed by rename-relations) spaced
25 virtual seconds apart — just inside one schema-change maintenance
time, so each new change can break the ongoing maintenance.

Expected shape: the abort cost (and with it the total) grows with the
number of schema changes for both strategies, since more changes mean
more conflicts between them.
"""

from __future__ import annotations

from ..core.strategies import OPTIMISTIC, PESSIMISTIC
from ..maintenance.grouping import BatchPolicy
from ..views.consistency import check_convergence
from .runner import FigureResult
from .testbed import build_testbed, recovery_knobs

DEFAULT_SC_COUNTS = (5, 10, 15, 20, 25)
QUICK_SC_COUNTS = (5, 15)
SC_INTERVAL = 25.0


def run_figure(
    sc_counts: tuple[int, ...] = DEFAULT_SC_COUNTS,
    du_count: int = 200,
    sc_interval: float = SC_INTERVAL,
    tuples_per_relation: int = 2000,
    du_interval: float = 0.5,
    seed: int = 7,
    snapshot_cache: bool = False,
    self_maintenance: bool = False,
    group_maintenance: bool = False,
    journal: bool = False,
    checkpoint_every: int = 8,
    crash_seed: int | None = None,
    shards: int = 1,
) -> FigureResult:
    result = FigureResult(
        figure_id="FIG-11",
        title="Maintenance + abort cost vs #schema changes (virtual s)",
        x_label="#SCs",
        series_names=[
            "optimistic",
            "abort_of_optimistic",
            "pessimistic",
            "abort_of_pessimistic",
        ],
    )
    for count in sc_counts:
        values: dict[str, float] = {}
        for name, strategy in (
            ("optimistic", OPTIMISTIC),
            ("pessimistic", PESSIMISTIC),
        ):
            testbed = build_testbed(
                strategy,
                tuples_per_relation=tuples_per_relation,
                snapshot_cache=snapshot_cache,
                self_maintenance=self_maintenance,
                batch_policy=BatchPolicy() if group_maintenance else None,
                shards=shards,
                **recovery_knobs(journal, checkpoint_every, crash_seed),
            )
            testbed.engine.schedule_workload(
                testbed.random_du_workload(
                    du_count, start=0.0, interval=du_interval, seed=seed
                )
            )
            testbed.engine.schedule_workload(
                testbed.schema_change_workload(
                    count, start=0.0, interval=sc_interval, seed=seed + 4
                )
            )
            testbed.run()
            values[name] = testbed.metrics.maintenance_cost
            values[f"abort_of_{name}"] = testbed.metrics.abort_cost
            report = check_convergence(testbed.manager)
            if not report.consistent:
                result.consistent = False
                result.notes.append(
                    f"{name} #SC={count}: {report.summary()}"
                )
        result.add(count, **values)
    return result
