"""The experimental testbed of Section 6.1, scaled.

Six relations ``R1..R6`` with four attributes each, evenly distributed
over three source servers (two relations per server); the materialized
view is a one-to-one equi-join of all six relations projecting all 24
attributes.  The paper loads 100 000 tuples per relation on Oracle8i;
we default to a configurable 2 000 tuples with per-tuple costs
calibrated so virtual times land in the paper's regime (see
:meth:`repro.sim.costs.CostModel.calibrated`).

The one-to-one join is realized by a shared key domain ``1..n`` on the
first attribute ``K`` of every relation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.scheduler import DynoScheduler
from ..core.strategies import Strategy
from ..maintenance.grouping import BatchPolicy
from ..relational.predicate import AttrRef
from ..relational.query import JoinCondition, RelationRef, SPJQuery
from ..relational.schema import RelationSchema
from ..relational.types import AttributeType
from ..sim.costs import CostModel
from ..sim.engine import SimEngine
from ..sources.source import DataSource
from ..sources.workload import (
    DeleteRandomRow,
    DropRandomAttribute,
    FixedUpdate,
    InsertRandomRow,
    RenameRandomRelation,
    Workload,
)
from ..sources.messages import DropAttribute, RenameRelation
from ..views.definition import ViewDefinition
from ..views.manager import ViewManager
from ..views.multi import MultiViewManager

RELATION_COUNT = 6
SOURCE_COUNT = 3


def make_du_workload(
    tuples_per_relation: int,
    count: int,
    start: float,
    interval: float,
    insert_fraction: float = 0.8,
    seed: int = 7,
    key_domain: int | None = None,
) -> Workload:
    """Standalone flavour of :meth:`Testbed.random_du_workload`.

    Builds a FRESH workload (own RNG) on every call, which is what the
    sharded warehouse needs: each shard world replays its own
    identically-seeded copy, because workload intents hold mutable RNGs
    and materialize against live source state at fire time.
    """
    rng = random.Random(seed)
    n = key_domain or tuples_per_relation
    key_filter = (
        None
        if key_domain is None
        else (lambda key, n=n: isinstance(key, int) and 1 <= key <= n)
    )
    workload = Workload()
    for index in range(count):
        at = start + index * interval
        source_index = rng.randrange(SOURCE_COUNT)
        source = source_name(source_index)
        if rng.random() < insert_fraction:
            intent = InsertRandomRow(
                rng, key_factory=lambda r, n=n: r.randrange(1, n + 1)
            )
        else:
            intent = DeleteRandomRow(rng, key_filter=key_filter)
        workload.add(at, source, intent)
    return workload


def make_sc_workload(
    count: int,
    start: float,
    interval: float,
    seed: int = 11,
    drop_first: bool = True,
) -> Workload:
    """Standalone flavour of :meth:`Testbed.schema_change_workload`."""
    rng = random.Random(seed)
    workload = Workload()
    for index in range(count):
        at = start + index * interval
        source = source_name(rng.randrange(SOURCE_COUNT))
        if index == 0 and drop_first:
            intent = DropRandomAttribute(rng)
        else:
            intent = RenameRandomRelation(rng)
        workload.add(at, source, intent)
    return workload


def relation_name(index: int) -> str:
    return f"R{index + 1}"


def source_name(index: int) -> str:
    return f"src{index + 1}"


def source_of_relation(index: int) -> str:
    """Relations are distributed round-robin two per server."""
    return source_name(index // (RELATION_COUNT // SOURCE_COUNT))


def relation_schema(index: int) -> RelationSchema:
    name = relation_name(index)
    return RelationSchema.of(
        name,
        [
            ("K", AttributeType.INT),
            (f"A{index + 1}", AttributeType.STRING),
            (f"B{index + 1}", AttributeType.FLOAT),
            (f"C{index + 1}", AttributeType.INT),
        ],
    )


@dataclass
class Testbed:
    """One instantiated experimental environment."""

    engine: SimEngine
    manager: ViewManager
    scheduler: DynoScheduler
    tuples_per_relation: int
    rng: random.Random = field(repr=False, default_factory=random.Random)
    #: construction parameters recovery needs to rebuild the scheduler
    strategy: Strategy | None = None
    parallel_workers: int | None = None
    batch_policy: BatchPolicy | None = None
    #: crash-recovery harness (``None`` unless ``journal`` was armed)
    recovery: object | None = None
    #: one report per recovery performed during :meth:`run`
    crash_reports: list = field(default_factory=list)
    #: requested shard count (``build_testbed(shards=...)``); 1 keeps
    #: the classic single-scheduler path byte-identical
    shards: int = 1
    #: the :class:`~repro.core.sharding.ShardedWarehouse` driving the
    #: run when ``shards > 1`` (a single view yields one effective
    #: shard, but the run then still goes through the coordinator +
    #: router so the flag exercises the sharded code path end to end)
    warehouse: object | None = None

    @property
    def metrics(self):
        return self.engine.metrics

    # ------------------------------------------------------------------
    # workload helpers
    # ------------------------------------------------------------------

    def current_source_of(self, base_relation: str) -> str:
        """Which source hosts (a possibly renamed version of) R_i."""
        for source in self.engine.sources.values():
            for name in source.catalog.relation_names:
                if name == base_relation or name.startswith(
                    base_relation + "__v"
                ):
                    return source.name
        raise KeyError(base_relation)

    def random_du_workload(
        self,
        count: int,
        start: float,
        interval: float,
        insert_fraction: float = 0.8,
        seed: int = 7,
        key_domain: int | None = None,
    ) -> Workload:
        """Mixed insert/delete data updates, keys drawn from the live
        key domain so most updates touch the view.

        ``key_domain`` narrows *every* operation's keys to
        ``1..key_domain`` (default: the full ``1..tuples_per_relation``
        range): inserts draw their key from the domain and deletes pick
        among rows whose key lies in it.  A small domain makes updates
        collide on join keys — the hot-key regime where adjacent
        maintenance passes probe for the same keys and the snapshot
        cache / auxiliary store pay off — without deletes silently
        degenerating into no-ops outside the hot set.
        """
        return make_du_workload(
            self.tuples_per_relation,
            count,
            start,
            interval,
            insert_fraction=insert_fraction,
            seed=seed,
            key_domain=key_domain,
        )

    def schema_change_workload(
        self,
        count: int,
        start: float,
        interval: float,
        seed: int = 11,
        drop_first: bool = True,
    ) -> Workload:
        """``count`` schema changes: one drop-attribute followed by
        rename-relation operations, randomly placed over the six
        relations (the Section 6.4 mixture)."""
        return make_sc_workload(
            count, start, interval, seed=seed, drop_first=drop_first
        )

    def run(self) -> None:
        """Schedule nothing more; drive the scheduler to quiescence.

        With a recovery harness armed, crashes injected mid-run are
        survived: the dead warehouse is torn down, ``recover()`` rebuilds
        it from checkpoint + journal, and the run resumes — including
        crashes injected during recovery itself."""
        if self.warehouse is not None:
            # The coordinator recovers crashed shards internally; after
            # the run, re-point at the (possibly rebuilt) primary world.
            self.warehouse.run()
            primary = self.warehouse.shards[0]
            self.manager = primary.manager
            self.scheduler = primary.scheduler
            self.recovery = primary.recovery
            return
        if self.recovery is None:
            self.scheduler.run()
            return
        self.run_recovering()

    def run_recovering(self) -> list:
        """Crash-surviving run loop; returns the recovery reports."""
        from ..recovery import SchedulerCrash, simulate_crash

        while True:
            try:
                self.scheduler.run()
                return self.crash_reports
            except SchedulerCrash:
                while True:
                    simulate_crash(self.engine)
                    try:
                        recovered = self.recovery.recover()
                        break
                    except SchedulerCrash:
                        # Crashed during recovery: idempotent replay
                        # makes a second attempt from the same durable
                        # state safe.
                        continue
                self.manager = recovered.manager
                self.scheduler = recovered.scheduler
                self.recovery = recovered.harness
                self.crash_reports.append(recovered.report)

    def committed_updates(self) -> frozenset:
        """Every (source, seqno) whose maintenance committed, across
        crashes: journal-installed units from all epochs plus the live
        scheduler's processed messages."""
        if self.warehouse is not None:
            return self.warehouse.committed_updates()
        refs = set(self.scheduler.stats.processed_messages)
        if self.recovery is not None:
            refs |= self.recovery.installed_refs()
        return frozenset(refs)


def _populated_engine(
    tuples_per_relation: int,
    cost_model: CostModel | None,
    seed: int,
    backend: str,
    snapshot_cache: bool,
) -> tuple[SimEngine, random.Random]:
    """Engine with the three populated sources, no view yet."""
    cost = cost_model or CostModel.calibrated(tuples_per_relation)
    engine = SimEngine(cost)
    if snapshot_cache:
        engine.install_snapshot_cache()
    rng = random.Random(seed)

    if backend == "memory":
        make_source = DataSource
    elif backend == "sqlite":
        from ..sources.sqlite_source import SqliteDataSource

        make_source = SqliteDataSource
    else:
        raise ValueError(f"unknown backend {backend!r}")
    sources = [
        engine.add_source(make_source(source_name(i)))
        for i in range(SOURCE_COUNT)
    ]
    for index in range(RELATION_COUNT):
        schema = relation_schema(index)
        owner = sources[index // (RELATION_COUNT // SOURCE_COUNT)]
        rows = [
            (
                key,
                f"a{index}-{key}",
                round(rng.uniform(0, 1000), 2),
                rng.randrange(10_000),
            )
            for key in range(1, tuples_per_relation + 1)
        ]
        owner.create_relation(schema, rows)
    return engine, rng


def _make_scheduler(
    manager,
    strategy: Strategy,
    parallel_workers: int | None,
    batch_policy: BatchPolicy | None,
) -> DynoScheduler:
    if parallel_workers is not None:
        from ..core.parallel import ParallelScheduler

        return ParallelScheduler(
            manager,
            strategy,
            workers=parallel_workers,
            batch_policy=batch_policy,
        )
    return DynoScheduler(manager, strategy, batch_policy=batch_policy)


def _arm_recovery(
    engine: SimEngine,
    manager,
    scheduler,
    strategy: Strategy,
    parallel_workers: int | None,
    batch_policy: BatchPolicy | None,
    checkpoint_every: int,
    crash_plan,
    journal_dir,
):
    """Attach a journal + checkpoint harness (and a crash injector)."""
    from ..recovery import (
        CrashInjector,
        FileCheckpointStore,
        FileJournalSink,
        MemoryCheckpointStore,
        MemoryJournalSink,
        RecoveryHarness,
    )

    if journal_dir is not None:
        from pathlib import Path

        directory = Path(journal_dir)
        sink = FileJournalSink(directory / "journal.jsonl")
        store = FileCheckpointStore(directory / "checkpoint.json")
    else:
        sink = MemoryJournalSink()
        store = MemoryCheckpointStore()
    harness = RecoveryHarness(
        engine,
        manager,
        scheduler,
        sink,
        store,
        checkpoint_every=checkpoint_every,
        strategy=strategy,
        parallel_workers=parallel_workers,
        batch_policy=batch_policy,
        mkb=getattr(manager, "mkb", None),
    )
    # Attach (genesis checkpoint) before arming the injector: the plan
    # starts counting when the scheduler does.
    harness.attach()
    if crash_plan is not None:
        engine.crash_injector = CrashInjector(crash_plan)
    return harness


def recovery_knobs(
    journal: bool, checkpoint_every: int, crash_seed: int | None
) -> dict:
    """``build_testbed`` kwargs for the figure runners' recovery flags.

    ``crash_seed`` draws one seeded :class:`~repro.recovery.crash
    .CrashPlan` (the same plan for every testbed the figure builds, so a
    sweep compares like against like) and implies ``journal``."""
    crash_plan = None
    if crash_seed is not None:
        from ..recovery import CrashPlan

        crash_plan = CrashPlan.random(crash_seed)
    return {
        "journal": journal or crash_plan is not None,
        "checkpoint_every": checkpoint_every,
        "crash_plan": crash_plan,
    }


def build_testbed(
    strategy: Strategy,
    tuples_per_relation: int = 2000,
    cost_model: CostModel | None = None,
    seed: int = 3,
    backend: str = "memory",
    parallel_workers: int | None = None,
    snapshot_cache: bool = False,
    self_maintenance: bool = False,
    batch_policy: BatchPolicy | None = None,
    journal: bool = False,
    checkpoint_every: int = 8,
    crash_plan=None,
    journal_dir=None,
    shards: int = 1,
    executor: str | None = None,
) -> Testbed:
    """Create sources, load data, define the 6-way join view.

    ``backend`` selects the source implementation: ``"memory"`` (the
    default in-process engine) or ``"sqlite"`` (stdlib ``sqlite3``
    storage and SQL query answering) — the whole evaluation runs on
    either.

    ``parallel_workers`` switches the Dyno loop for the parallel
    executor (:class:`~repro.core.parallel.ParallelScheduler`) with that
    many workers; ``None`` keeps the serial scheduler.  ``1`` is the
    serial *arm* of the parallel model — same dispatch overheads and
    event machinery, no concurrency — which is the honest baseline for
    makespan comparisons.

    ``snapshot_cache`` arms the version-stamped snapshot cache
    (:mod:`repro.cache`): maintenance probes repeated across units are
    answered locally, patched forward through the committed deltas in
    the version gap, instead of paying a source round trip.

    ``self_maintenance`` arms the auxiliary self-maintenance store
    (:mod:`repro.maintenance.selfmaint`): per-relation projections of
    the view's needed columns, seeded free from the initial load and
    kept current from committed deltas, answer covered maintenance
    probes with **zero** source round trips.  It composes with
    ``snapshot_cache`` (aux is consulted first; the cache backstops
    uncovered probes).

    ``batch_policy`` arms adaptive group maintenance
    (:mod:`repro.maintenance.grouping`): safe runs of queued units are
    merged into single batched maintenance rounds before dispatch.

    ``journal`` arms the crash-recovery subsystem
    (:mod:`repro.recovery`): a write-ahead maintenance journal plus a
    checkpoint every ``checkpoint_every`` installed units, written to
    in-memory stores (or JSONL/JSON files under ``journal_dir``).
    ``crash_plan`` additionally installs a
    :class:`~repro.recovery.crash.CrashInjector` killing the warehouse
    per the plan; :meth:`Testbed.run` then recovers and resumes
    (``crash_plan`` implies ``journal``).

    ``shards`` routes the run through the sharded warehouse coordinator
    (:mod:`repro.core.sharding`).  The single 6-way view cannot split,
    so any ``shards > 1`` yields one *effective* shard — but the run
    then exercises the footprint router and coordinator end to end,
    which is exactly what the fig08–fig12 ``--shards`` flag wants;
    multi-shard speedups come from :func:`build_sharded_testbed`'s
    multi-view workloads.  The default 1 keeps the classic path
    untouched.

    ``executor`` selects the relational evaluator for the whole process
    (``"compiled"`` — plan-compiling columnar kernel, the default — or
    ``"naive"`` — the row-at-a-time oracle).  It only moves wall-clock
    time: virtual costs are charged from the cost model, so every
    simulated result is executor-invariant.  ``None`` leaves the
    process-wide mode untouched.
    """
    if executor is not None:
        from ..relational.executor import set_executor_mode

        set_executor_mode(executor)
    journal = journal or crash_plan is not None
    engine, rng = _populated_engine(
        tuples_per_relation, cost_model, seed, backend, snapshot_cache
    )

    relations = tuple(
        RelationRef(
            source_of_relation(index), relation_name(index), f"T{index + 1}"
        )
        for index in range(RELATION_COUNT)
    )
    projection = tuple(
        AttrRef(f"T{index + 1}", attribute)
        for index in range(RELATION_COUNT)
        for attribute in relation_schema(index).attribute_names
    )
    joins = tuple(
        JoinCondition(
            AttrRef(f"T{index + 1}", "K"), AttrRef(f"T{index + 2}", "K")
        )
        for index in range(RELATION_COUNT - 1)
    )
    view = ViewDefinition("V", SPJQuery(relations, projection, joins))
    router = None
    message_filter = None
    if shards > 1:
        from ..core.sharding import ShardRouter

        router = ShardRouter()
        router.register_view(0, view)
        message_filter = router.delivery_filter(0, engine.metrics)
    manager = ViewManager(engine, view, message_filter=message_filter)
    if self_maintenance:
        store = manager.install_self_maintenance()
        for source in engine.sources.values():
            store.seed_from_source(source)
    scheduler = _make_scheduler(
        manager, strategy, parallel_workers, batch_policy
    )
    recovery = None
    if journal:
        recovery = _arm_recovery(
            engine,
            manager,
            scheduler,
            strategy,
            parallel_workers,
            batch_policy,
            checkpoint_every,
            crash_plan,
            journal_dir,
        )
    warehouse = None
    if shards > 1:
        from ..core.sharding import Shard, ShardedWarehouse

        warehouse = ShardedWarehouse(
            [
                Shard(
                    0,
                    engine,
                    manager,
                    scheduler,
                    (view.name,),
                    recovery=recovery,
                )
            ],
            router,
        )
    testbed = Testbed(
        engine,
        manager,
        scheduler,
        tuples_per_relation,
        rng,
        strategy=strategy,
        parallel_workers=parallel_workers,
        batch_policy=batch_policy,
        recovery=recovery,
        shards=shards,
        warehouse=warehouse,
    )
    if warehouse is not None:
        # Per-shard recovery reports surface through the testbed list.
        warehouse.shards[0].crash_reports = testbed.crash_reports
    return testbed


def subview_query(first: int, last: int) -> SPJQuery:
    """An equi-join of testbed relations ``R{first+1}..R{last}``,
    projecting each relation's ``A`` attribute."""
    relations = tuple(
        RelationRef(
            source_of_relation(index), relation_name(index), f"T{index + 1}"
        )
        for index in range(first, last)
    )
    projection = tuple(
        AttrRef(f"T{index + 1}", f"A{index + 1}")
        for index in range(first, last)
    )
    joins = tuple(
        JoinCondition(
            AttrRef(f"T{index + 1}", "K"), AttrRef(f"T{index + 2}", "K")
        )
        for index in range(first, last - 1)
    )
    return SPJQuery(relations, projection, joins)


def build_multiview_testbed(
    strategy: Strategy,
    tuples_per_relation: int = 200,
    cost_model: CostModel | None = None,
    seed: int = 3,
    backend: str = "memory",
    parallel_workers: int | None = None,
    snapshot_cache: bool = False,
    self_maintenance: bool = False,
    batch_policy: BatchPolicy | None = None,
    spans: tuple[tuple[int, int], ...] = ((0, 3), (2, RELATION_COUNT)),
    journal: bool = False,
    checkpoint_every: int = 8,
    crash_plan=None,
    journal_dir=None,
) -> Testbed:
    """Like :func:`build_testbed` but with several overlapping subviews
    maintained by one :class:`~repro.views.multi.MultiViewManager`.

    Each ``(first, last)`` span becomes a subview joining
    ``R{first+1}..R{last}``; the defaults give the two-view split used
    by the multi-view convergence tests (relations R3 shared).  This is
    the testbed for the ABL-8 group-maintenance ablation: several views
    touched per update amplify the per-round savings of batching.
    """
    engine, rng = _populated_engine(
        tuples_per_relation, cost_model, seed, backend, snapshot_cache
    )
    views = [
        ViewDefinition(f"V{index + 1}", subview_query(first, last))
        for index, (first, last) in enumerate(spans)
    ]
    manager = MultiViewManager(engine, views)
    if self_maintenance:
        store = manager.install_self_maintenance()
        for source in engine.sources.values():
            store.seed_from_source(source)
    scheduler = _make_scheduler(
        manager, strategy, parallel_workers, batch_policy
    )
    recovery = None
    if journal or crash_plan is not None:
        recovery = _arm_recovery(
            engine,
            manager,
            scheduler,
            strategy,
            parallel_workers,
            batch_policy,
            checkpoint_every,
            crash_plan,
            journal_dir,
        )
    return Testbed(
        engine,
        manager,
        scheduler,
        tuples_per_relation,
        rng,
        strategy=strategy,
        parallel_workers=parallel_workers,
        batch_policy=batch_policy,
        recovery=recovery,
    )


#: four overlapping subviews covering R1..R6 with every relation in at
#: most two views — the balanced multi-view workload the sharding
#: ablation (ABL-11) scales across shards
SHARDED_SPANS: tuple[tuple[int, int], ...] = (
    (0, 2),
    (1, 3),
    (3, 5),
    (4, 6),
)


def sharded_world_specs(
    strategy: Strategy,
    shards: int = 1,
    tuples_per_relation: int = 200,
    cost_model: CostModel | None = None,
    seed: int = 3,
    backend: str = "memory",
    parallel_workers: int | None = None,
    snapshot_cache: bool = False,
    self_maintenance: bool = False,
    batch_policy: BatchPolicy | None = None,
    spans: tuple[tuple[int, int], ...] = SHARDED_SPANS,
    journal: bool = False,
    checkpoint_every: int = 8,
    crash_plan=None,
    journal_dir=None,
    fault_plan=None,
) -> list:
    """Plan the sharded warehouse as picklable per-shard world specs.

    Runs the same LPT view placement as :func:`build_sharded_testbed`
    and captures, per effective shard, everything needed to rebuild its
    world — spans, seeds, knobs.  Both the inline build and the
    process-parallel runtime's workers consume these specs through
    :func:`build_shard_world`, so the worlds are identical **by
    construction**, not by careful duplication.
    """
    from ..core.runtime import ShardWorldSpec
    from ..core.sharding import assign_views

    views = [
        ViewDefinition(f"V{index + 1}", subview_query(first, last))
        for index, (first, last) in enumerate(spans)
    ]
    span_of = {
        f"V{index + 1}": span for index, span in enumerate(spans)
    }
    buckets = assign_views(views, shards)
    specs = []
    for shard_id, bucket in enumerate(buckets):
        shard_dir = None
        if journal_dir is not None:
            from pathlib import Path

            shard_dir = str(Path(journal_dir) / f"shard-{shard_id}")
        specs.append(
            ShardWorldSpec(
                shard_id=shard_id,
                view_names=tuple(view.name for view in bucket),
                spans=tuple(span_of[view.name] for view in bucket),
                strategy=strategy,
                tuples_per_relation=tuples_per_relation,
                cost_model=cost_model,
                seed=seed,
                backend=backend,
                parallel_workers=parallel_workers,
                snapshot_cache=snapshot_cache,
                self_maintenance=self_maintenance,
                batch_policy=batch_policy,
                journal=journal or crash_plan is not None,
                checkpoint_every=checkpoint_every,
                crash_plan=crash_plan,
                journal_dir=shard_dir,
                fault_plan=fault_plan,
            )
        )
    return specs


def build_shard_world(spec, router=None):
    """Build ONE shard world from its spec; returns ``(shard,
    initial_sizes)``.

    ``router`` is the shared :class:`~repro.core.sharding.ShardRouter`
    when building inline; ``None`` (the worker-process case) creates a
    fresh worker-local router holding only this shard — behaviorally
    identical for the shard itself, because ``delivery_filter`` reads
    only its own shard's footprints.
    """
    from ..core.sharding import Shard, ShardRouter

    views = [
        ViewDefinition(name, subview_query(first, last))
        for name, (first, last) in zip(spec.view_names, spec.spans)
    ]
    engine, _ = _populated_engine(
        spec.tuples_per_relation,
        spec.cost_model,
        spec.seed,
        spec.backend,
        spec.snapshot_cache,
    )
    if spec.fault_plan is not None:
        from ..faults.injector import FaultInjector

        engine.install_faults(FaultInjector(spec.fault_plan))
    if router is None:
        router = ShardRouter()
    for view in views:
        router.register_view(spec.shard_id, view)
    message_filter = router.delivery_filter(spec.shard_id, engine.metrics)
    if len(views) == 1:
        manager = ViewManager(engine, views[0], message_filter=message_filter)
    else:
        manager = MultiViewManager(
            engine, list(views), message_filter=message_filter
        )
    if spec.self_maintenance:
        store = manager.install_self_maintenance()
        for source in engine.sources.values():
            store.seed_from_source(source)
    scheduler = _make_scheduler(
        manager, spec.strategy, spec.parallel_workers, spec.batch_policy
    )
    recovery = None
    if spec.journal:
        if spec.journal_dir is not None:
            from pathlib import Path

            Path(spec.journal_dir).mkdir(parents=True, exist_ok=True)
        recovery = _arm_recovery(
            engine,
            manager,
            scheduler,
            spec.strategy,
            spec.parallel_workers,
            spec.batch_policy,
            spec.checkpoint_every,
            spec.crash_plan,
            spec.journal_dir,
        )
    initial_sizes: dict[str, int] = {}
    for view in views:
        mv = (
            manager.manager_for(view.name).mv
            if hasattr(manager, "manager_for")
            else manager.mv
        )
        initial_sizes[view.name] = len(mv.extent)
    shard = Shard(
        spec.shard_id,
        engine,
        manager,
        scheduler,
        tuple(view.name for view in views),
        recovery=recovery,
    )
    return shard, initial_sizes


@dataclass
class ShardedTestbed:
    """A sharded multi-view warehouse plus its read front end.

    Exactly one of ``warehouse`` (inline coordinator, the oracle) or
    ``runtime`` (:class:`~repro.core.runtime.ProcessShardRuntime`,
    multi-core execution) drives the run; every accessor branches on
    which one is armed and answers identically — that equivalence *is*
    the runtime's acceptance criterion.
    """

    warehouse: object  # ShardedWarehouse | None
    tuples_per_relation: int
    shards: int
    #: view name -> extent cardinality right after the initial load
    #: (the read front end's version-0 sizes); resolved post-launch in
    #: process mode
    initial_sizes: dict[str, int]
    strategy: Strategy | None = None
    parallel_workers: int | None = None
    #: process-parallel runtime when ``shard_processes > 0``
    runtime: object | None = None

    @property
    def metrics(self):
        """Aggregated metrics; ``metrics.makespan`` is the aggregate
        makespan (completion time of the slowest shard)."""
        if self.runtime is not None:
            return self.runtime.aggregate_metrics()
        return self.warehouse.aggregate_metrics()

    def schedule_du_workload(
        self,
        count: int,
        start: float,
        interval: float,
        insert_fraction: float = 0.8,
        seed: int = 7,
        key_domain: int | None = None,
    ) -> None:
        """Fan the DU stream out: one identically-seeded copy per shard
        world (sources evolve identically; the router filters only the
        wrapper -> UMQ delivery)."""
        if self.runtime is not None:
            from ..core.runtime import WorkloadSpec

            self.runtime.add_workload_spec(
                WorkloadSpec(
                    "du",
                    {
                        "tuples_per_relation": self.tuples_per_relation,
                        "count": count,
                        "start": start,
                        "interval": interval,
                        "insert_fraction": insert_fraction,
                        "seed": seed,
                        "key_domain": key_domain,
                    },
                )
            )
            return
        self.warehouse.schedule_workload(
            lambda: make_du_workload(
                self.tuples_per_relation,
                count,
                start,
                interval,
                insert_fraction=insert_fraction,
                seed=seed,
                key_domain=key_domain,
            )
        )

    def schedule_sc_workload(
        self,
        count: int,
        start: float,
        interval: float,
        seed: int = 11,
        drop_first: bool = True,
    ) -> None:
        if self.runtime is not None:
            from ..core.runtime import WorkloadSpec

            self.runtime.add_workload_spec(
                WorkloadSpec(
                    "sc",
                    {
                        "count": count,
                        "start": start,
                        "interval": interval,
                        "seed": seed,
                        "drop_first": drop_first,
                    },
                )
            )
            return
        self.warehouse.schedule_workload(
            lambda: make_sc_workload(
                count, start, interval, seed=seed, drop_first=drop_first
            )
        )

    def run(self) -> None:
        if self.runtime is not None:
            self.runtime.run()
            self.initial_sizes = self.runtime.initial_sizes()
            return
        self.warehouse.run()

    def committed_updates(self) -> frozenset:
        if self.runtime is not None:
            return self.runtime.committed_updates()
        return self.warehouse.committed_updates()

    def extent_rows(self) -> dict[str, tuple]:
        if self.runtime is not None:
            return self.runtime.extent_rows()
        return self.warehouse.extent_rows()

    def shard_clocks(self) -> dict[int, float]:
        """Per-shard virtual clocks after the run (identity checks)."""
        if self.runtime is not None:
            return self.runtime.shard_clocks()
        return self.warehouse.shard_clocks()

    def check_consistency(self) -> bool:
        """Every shard's views converge to the fresh-recompute oracle.

        Process mode: convergence was checked *inside* each worker at
        COLLECT time, against the worker's own live sources.
        """
        if self.runtime is not None:
            return self.runtime.consistent()
        from ..views.consistency import check_convergence

        return all(
            check_convergence(manager).consistent
            for shard in self.warehouse.shards
            for manager in shard.view_managers()
        )

    def read_front_end(self):
        """Build the post-run read front end over the install logs."""
        from ..frontend.reads import ReadFrontEnd

        if self.runtime is not None:
            view_shard = {
                name: spec.shard_id
                for spec in self.runtime.specs
                for name in spec.view_names
            }
            return ReadFrontEnd.from_install_logs(
                self.runtime.install_logs(),
                view_shard,
                self.runtime.initial_sizes(),
                self.runtime.cost_model(),
                self.runtime.horizon(),
            )
        return ReadFrontEnd.for_warehouse(self.warehouse, self.initial_sizes)


def build_sharded_testbed(
    strategy: Strategy,
    shards: int = 1,
    tuples_per_relation: int = 200,
    cost_model: CostModel | None = None,
    seed: int = 3,
    backend: str = "memory",
    parallel_workers: int | None = None,
    snapshot_cache: bool = False,
    self_maintenance: bool = False,
    batch_policy: BatchPolicy | None = None,
    spans: tuple[tuple[int, int], ...] = SHARDED_SPANS,
    journal: bool = False,
    checkpoint_every: int = 8,
    crash_plan=None,
    journal_dir=None,
    fault_plan=None,
    shard_processes: int = 0,
) -> ShardedTestbed:
    """The sharded analogue of :func:`build_multiview_testbed`.

    Builds one full warehouse *world* per effective shard — its own
    engine, identically-seeded source replicas, snapshot cache,
    self-maintenance store, journal (under ``journal_dir/shard-N``) and
    fault injector — assigns the span subviews across shards with
    :func:`~repro.core.sharding.assign_views`, and wires every shard's
    wrappers through the footprint router.  ``shards=1`` is the oracle
    arm: one scheduler owning every view, still driven through the
    coordinator so the code path (not just the answer) is comparable.

    ``shard_processes=N`` (N >= 1) executes the shard worlds across N
    OS worker processes through
    :class:`~repro.core.runtime.ProcessShardRuntime` instead of the
    inline coordinator — bit-identical results on multiple cores; ``0``
    (the default) keeps the inline single-process oracle path.
    """
    from ..core.sharding import ShardedWarehouse, ShardRouter

    specs = sharded_world_specs(
        strategy,
        shards=shards,
        tuples_per_relation=tuples_per_relation,
        cost_model=cost_model,
        seed=seed,
        backend=backend,
        parallel_workers=parallel_workers,
        snapshot_cache=snapshot_cache,
        self_maintenance=self_maintenance,
        batch_policy=batch_policy,
        spans=spans,
        journal=journal,
        checkpoint_every=checkpoint_every,
        crash_plan=crash_plan,
        journal_dir=journal_dir,
        fault_plan=fault_plan,
    )
    if shard_processes:
        from ..core.runtime import ProcessShardRuntime

        runtime = ProcessShardRuntime(specs, shard_processes)
        return ShardedTestbed(
            None,
            tuples_per_relation,
            len(specs),
            {},
            strategy=strategy,
            parallel_workers=parallel_workers,
            runtime=runtime,
        )
    router = ShardRouter()
    shard_list = []
    initial_sizes: dict[str, int] = {}
    for spec in specs:
        shard, sizes = build_shard_world(spec, router=router)
        initial_sizes.update(sizes)
        shard_list.append(shard)
    warehouse = ShardedWarehouse(shard_list, router)
    return ShardedTestbed(
        warehouse,
        tuples_per_relation,
        len(specs),
        initial_sizes,
        strategy=strategy,
        parallel_workers=parallel_workers,
    )


def fixed_drop_attribute(
    relation_index: int, attribute: str | None = None
) -> FixedUpdate:
    """A deterministic drop of one non-key attribute of R_{i+1}."""
    name = relation_name(relation_index)
    target = attribute or f"B{relation_index + 1}"
    return FixedUpdate(DropAttribute(name, target))


def fixed_rename_relation(relation_index: int, version: int = 2) -> FixedUpdate:
    name = relation_name(relation_index)
    return FixedUpdate(RenameRelation(name, f"{name}__v{version}"))
