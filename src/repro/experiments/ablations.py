"""Ablation studies for Dyno's design choices.

* **Blind merge vs cycle-only merge** (Section 4.2's argument): the
  simplistic alternative merges the *whole* UMQ whenever a query breaks.
  The paper argues this loses intermediate view states and enlarges the
  abortable window.  We measure total cost, abort cost, and the number
  of view refreshes (a proxy for intermediate states preserved).
* **Dependency-graph construction scaling** (Section 4.1.1's O(mn)
  claim): wall-clock time of ``find_dependencies`` as the number of
  updates and schema changes grows.
"""

from __future__ import annotations

import random
import time

from ..core.dependencies import find_dependencies
from ..core.strategies import BLIND_MERGE, PESSIMISTIC
from ..relational.delta import Delta
from ..sources.messages import DataUpdate, RenameRelation, UpdateMessage
from ..views.consistency import check_convergence
from .runner import FigureResult
from .testbed import build_testbed, relation_schema


def run_blind_merge_ablation(
    du_count: int = 200,
    sc_count: int = 10,
    sc_interval: float = 17.0,
    tuples_per_relation: int = 2000,
    seed: int = 7,
) -> FigureResult:
    result = FigureResult(
        figure_id="ABL-1",
        title="Cycle-only merge (Dyno) vs blind whole-queue merge",
        x_label="strategy",
        series_names=["total_cost", "abort_cost", "view_refreshes"],
    )
    for label, strategy in (
        ("dyno_cycle_merge", PESSIMISTIC),
        ("blind_merge", BLIND_MERGE),
    ):
        testbed = build_testbed(
            strategy, tuples_per_relation=tuples_per_relation
        )
        testbed.engine.schedule_workload(
            testbed.random_du_workload(
                du_count, start=0.0, interval=0.5, seed=seed
            )
        )
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(
                sc_count, start=0.0, interval=sc_interval, seed=seed + 4
            )
        )
        testbed.run()
        report = check_convergence(testbed.manager)
        if not report.consistent:
            result.consistent = False
            result.notes.append(f"{label}: {report.summary()}")
        result.add(
            label,
            total_cost=testbed.metrics.maintenance_cost,
            abort_cost=testbed.metrics.abort_cost,
            view_refreshes=float(testbed.metrics.view_refreshes),
        )
    dyno_refreshes = result.points[0].values["view_refreshes"]
    blind_refreshes = result.points[1].values["view_refreshes"]
    result.notes.append(
        "intermediate view states preserved: "
        f"Dyno {dyno_refreshes:.0f} vs blind merge {blind_refreshes:.0f}"
    )
    return result


def _synthetic_queue(
    n_updates: int, n_schema_changes: int, seed: int = 5
) -> list[UpdateMessage]:
    """A UMQ snapshot with the requested DU/SC mixture."""
    rng = random.Random(seed)
    messages: list[UpdateMessage] = []
    sc_positions = set(
        rng.sample(range(n_updates), min(n_schema_changes, n_updates))
    )
    for position in range(n_updates):
        relation_index = rng.randrange(6)
        schema = relation_schema(relation_index)
        source = f"src{relation_index // 2 + 1}"
        if position in sc_positions:
            payload = RenameRelation(
                schema.name, f"{schema.name}__v{position}"
            )
        else:
            delta = Delta.insertion(
                schema, [(position, "x", 1.0, position)]
            )
            payload = DataUpdate(schema.name, delta)
        messages.append(
            UpdateMessage(source, position + 1, float(position), payload)
        )
    return messages


def run_graph_scaling_ablation(
    sizes: tuple[tuple[int, int], ...] = (
        (100, 5),
        (200, 10),
        (400, 20),
        (800, 40),
        (1600, 80),
    ),
) -> FigureResult:
    """Wall-clock scaling of dependency-graph construction (O(mn))."""
    view_query = build_testbed(
        PESSIMISTIC, tuples_per_relation=4
    ).manager.view.query

    result = FigureResult(
        figure_id="ABL-2",
        title="Dependency graph construction scaling (wall-clock ms)",
        x_label="n_updates",
        series_names=["m_schema_changes", "edges", "build_ms"],
    )
    for n_updates, n_schema_changes in sizes:
        messages = _synthetic_queue(n_updates, n_schema_changes)
        started = time.perf_counter()
        dependencies = find_dependencies(messages, view_query)
        elapsed_ms = (time.perf_counter() - started) * 1000
        result.add(
            n_updates,
            m_schema_changes=float(n_schema_changes),
            edges=float(len(dependencies)),
            build_ms=elapsed_ms,
        )
    return result
