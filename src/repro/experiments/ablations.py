"""Ablation studies for Dyno's design choices.

* **Blind merge vs cycle-only merge** (Section 4.2's argument): the
  simplistic alternative merges the *whole* UMQ whenever a query breaks.
  The paper argues this loses intermediate view states and enlarges the
  abortable window.  We measure total cost, abort cost, and the number
  of view refreshes (a proxy for intermediate states preserved).
* **Dependency-graph construction scaling** (Section 4.1.1's O(mn)
  claim): wall-clock time of ``find_dependencies`` as the number of
  updates and schema changes grows.
"""

from __future__ import annotations

import random
import time

from ..core.dependencies import find_dependencies
from ..core.graph import DependencyGraph
from ..core.incremental import IncrementalDependencyGraph
from ..core.strategies import BLIND_MERGE, PESSIMISTIC
from ..relational.delta import Delta
from ..sources.messages import (
    DataUpdate,
    DropAttribute,
    RenameRelation,
    UpdateMessage,
)
from ..views.consistency import check_convergence
from ..views.umq import UpdateMessageQueue
from .runner import FigureResult
from .testbed import (
    build_multiview_testbed,
    build_testbed,
    relation_schema,
)


def run_blind_merge_ablation(
    du_count: int = 200,
    sc_count: int = 10,
    sc_interval: float = 17.0,
    tuples_per_relation: int = 2000,
    seed: int = 7,
) -> FigureResult:
    result = FigureResult(
        figure_id="ABL-1",
        title="Cycle-only merge (Dyno) vs blind whole-queue merge",
        x_label="strategy",
        series_names=["total_cost", "abort_cost", "view_refreshes"],
    )
    for label, strategy in (
        ("dyno_cycle_merge", PESSIMISTIC),
        ("blind_merge", BLIND_MERGE),
    ):
        testbed = build_testbed(
            strategy, tuples_per_relation=tuples_per_relation
        )
        testbed.engine.schedule_workload(
            testbed.random_du_workload(
                du_count, start=0.0, interval=0.5, seed=seed
            )
        )
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(
                sc_count, start=0.0, interval=sc_interval, seed=seed + 4
            )
        )
        testbed.run()
        report = check_convergence(testbed.manager)
        if not report.consistent:
            result.consistent = False
            result.notes.append(f"{label}: {report.summary()}")
        result.add(
            label,
            total_cost=testbed.metrics.maintenance_cost,
            abort_cost=testbed.metrics.abort_cost,
            view_refreshes=float(testbed.metrics.view_refreshes),
        )
    dyno_refreshes = result.points[0].values["view_refreshes"]
    blind_refreshes = result.points[1].values["view_refreshes"]
    result.notes.append(
        "intermediate view states preserved: "
        f"Dyno {dyno_refreshes:.0f} vs blind merge {blind_refreshes:.0f}"
    )
    return result


def _synthetic_queue(
    n_updates: int, n_schema_changes: int, seed: int = 5
) -> list[UpdateMessage]:
    """A UMQ snapshot with the requested DU/SC mixture."""
    rng = random.Random(seed)
    messages: list[UpdateMessage] = []
    sc_positions = set(
        rng.sample(range(n_updates), min(n_schema_changes, n_updates))
    )
    for position in range(n_updates):
        relation_index = rng.randrange(6)
        schema = relation_schema(relation_index)
        source = f"src{relation_index // 2 + 1}"
        if position in sc_positions:
            payload = RenameRelation(
                schema.name, f"{schema.name}__v{position}"
            )
        else:
            delta = Delta.insertion(
                schema, [(position, "x", 1.0, position)]
            )
            payload = DataUpdate(schema.name, delta)
        messages.append(
            UpdateMessage(source, position + 1, float(position), payload)
        )
    return messages


def _du_heavy_queue(
    count: int,
    n_schema_changes: int,
    seed: int = 9,
    first_seqno: int = 1,
) -> list[UpdateMessage]:
    """A DU-heavy stream whose schema changes are *non-lineage* drops
    (the workload where incremental detection shines: no rename chains,
    so arrivals never force a resolver rebuild)."""
    rng = random.Random(seed)
    messages: list[UpdateMessage] = []
    sc_positions = set(
        rng.sample(range(count), min(n_schema_changes, count))
    )
    for position in range(count):
        relation_index = rng.randrange(6)
        schema = relation_schema(relation_index)
        source = f"src{relation_index // 2 + 1}"
        if position in sc_positions:
            payload = DropAttribute(schema.name, f"C{relation_index + 1}")
        else:
            delta = Delta.insertion(
                schema, [(position, "x", 1.0, position)]
            )
            payload = DataUpdate(schema.name, delta)
        seqno = first_seqno + position
        messages.append(
            UpdateMessage(source, seqno, float(seqno), payload)
        )
    return messages


def _edge_set(dependencies):
    return {
        (dep.before_index, dep.after_index, dep.kind)
        for dep in dependencies
    }


def run_incremental_detection_ablation(
    sizes: tuple[int, ...] = (50, 100, 200, 400),
    rounds: int = 40,
    sc_fraction: float = 0.05,
    seed: int = 9,
) -> FigureResult:
    """Per-round detection time: from-scratch rebuild vs the
    incremental substrate, on a DU-heavy stream.

    A *round* models one scheduler step at steady queue length ``n``:
    one arrival, a detection pass, one head removal, another detection
    pass.  The from-scratch arm runs :func:`find_dependencies` over the
    whole queue each pass (what every detection round cost before the
    substrate existed); the incremental arm reads the live
    :class:`~repro.core.incremental.IncrementalDependencyGraph`.  Both
    arms consume the identical stream, and the final edge sets and
    corrected orders are verified bit-identical.
    """
    view_query = build_testbed(
        PESSIMISTIC, tuples_per_relation=4
    ).manager.view.query

    result = FigureResult(
        figure_id="ABL-5",
        title="Incremental vs from-scratch detection (per-round ms)",
        x_label="n_updates",
        series_names=["full_ms", "incremental_ms", "speedup"],
    )
    for n_updates in sizes:
        n_schema_changes = max(1, int(n_updates * sc_fraction))
        prefill = _du_heavy_queue(n_updates, n_schema_changes, seed)
        arrivals = _du_heavy_queue(
            rounds,
            max(1, int(rounds * sc_fraction)),
            seed + 1,
            first_seqno=n_updates + 1,
        )

        # -- from-scratch arm ------------------------------------------
        queue: list[UpdateMessage] = list(prefill)
        started = time.perf_counter()
        for message in arrivals:
            queue.append(message)
            find_dependencies(queue, view_query)
            del queue[0]
            find_dependencies(queue, view_query)
        full_ms = (time.perf_counter() - started) * 1000 / (2 * rounds)

        # -- incremental arm -------------------------------------------
        umq = UpdateMessageQueue()
        incremental = IncrementalDependencyGraph(
            umq, lambda query=view_query: (query,)
        )
        for message in prefill:
            umq.receive(message)
        started = time.perf_counter()
        for message in arrivals:
            umq.receive(message)
            incremental.dependencies()
            umq.remove_head()
            incremental.dependencies()
        incremental_ms = (
            (time.perf_counter() - started) * 1000 / (2 * rounds)
        )

        # Both arms saw the same stream: outputs must be bit-identical.
        oracle = find_dependencies(umq.messages(), view_query)
        live = incremental.dependencies()
        if _edge_set(oracle) != _edge_set(live) or (
            DependencyGraph(len(queue), oracle).legal_order()
            != incremental.detection().graph.legal_order()
        ):
            result.consistent = False
            result.notes.append(
                f"n={n_updates}: incremental output diverged from oracle"
            )

        result.add(
            n_updates,
            full_ms=full_ms,
            incremental_ms=incremental_ms,
            speedup=full_ms / incremental_ms if incremental_ms else 0.0,
        )
    result.notes.append(
        "corrected orders verified identical between both arms"
    )
    return result


def run_graph_scaling_ablation(
    sizes: tuple[tuple[int, int], ...] = (
        (100, 5),
        (200, 10),
        (400, 20),
        (800, 40),
        (1600, 80),
    ),
) -> FigureResult:
    """Wall-clock scaling of dependency-graph construction (O(mn))."""
    view_query = build_testbed(
        PESSIMISTIC, tuples_per_relation=4
    ).manager.view.query

    result = FigureResult(
        figure_id="ABL-2",
        title="Dependency graph construction scaling (wall-clock ms)",
        x_label="n_updates",
        series_names=["m_schema_changes", "edges", "build_ms"],
    )
    for n_updates, n_schema_changes in sizes:
        messages = _synthetic_queue(n_updates, n_schema_changes)
        started = time.perf_counter()
        dependencies = find_dependencies(messages, view_query)
        elapsed_ms = (time.perf_counter() - started) * 1000
        result.add(
            n_updates,
            m_schema_changes=float(n_schema_changes),
            edges=float(len(dependencies)),
            build_ms=elapsed_ms,
        )
    return result


def _run_parallel_arm(
    strategy,
    workers: int | None,
    du_count: int,
    tuples_per_relation: int,
    fault_seed: int | None,
    seed: int,
):
    """One (strategy, worker-count) arm of ABL-6.

    Returns ``(makespan, extent, processed, metrics)`` where *extent*
    is the final view as a sorted row tuple (byte-comparable across
    arms) and *processed* is the set of (source, seqno) pairs the
    scheduler committed.
    """
    from ..faults.injector import FaultInjector
    from ..faults.plan import FaultPlan

    testbed = build_testbed(
        strategy,
        tuples_per_relation=tuples_per_relation,
        parallel_workers=workers,
    )
    if fault_seed is not None:
        plan = FaultPlan.random(
            fault_seed,
            sources=list(testbed.engine.sources),
            horizon=3.0,
            max_crashes=1,
            crash_length=(0.2, 0.8),
        )
        testbed.engine.install_faults(FaultInjector(plan))
    workload = testbed.random_du_workload(
        du_count, start=0.05, interval=0.01, seed=seed
    )
    testbed.engine.schedule_workload(workload)
    testbed.run()
    metrics = testbed.metrics
    makespan = metrics.makespan if workers is not None else metrics.elapsed
    extent = tuple(
        sorted(map(tuple, testbed.manager.mv.extent.rows()))
    )
    processed = set(testbed.scheduler.stats.processed_messages)
    report = check_convergence(testbed.manager)
    return makespan, extent, processed, metrics, report


def run_parallel_ablation(
    workers: tuple[int, ...] = (1, 2, 4, 8),
    du_count: int = 40,
    tuples_per_relation: int = 200,
    fault_seed: int | None = 23,
    seed: int = 17,
) -> FigureResult:
    """ABL-6: multi-worker makespan on a DU-heavy multi-source stream.

    Sweeps the parallel executor's worker count under both conflict
    strategies, with a PR 1 fault plan injected (transients, one short
    crash window, link faults).  ``workers=1`` is the honest serial
    baseline: same dispatch overheads and event machinery, zero
    concurrency.  Every arm must end with a view extent byte-identical
    to its strategy's 1-worker arm *and* to the plain serial
    :class:`~repro.core.scheduler.DynoScheduler`, and must have
    committed exactly the same (source, seqno) set — Theorem 2's
    legal-order guarantee, observed end to end.
    """
    from ..core.strategies import OPTIMISTIC

    result = FigureResult(
        figure_id="ABL-6",
        title="Parallel executor makespan vs worker count",
        x_label="workers",
        series_names=[
            "pess_makespan",
            "pess_speedup",
            "opt_makespan",
            "opt_speedup",
            "batched_queries",
            "peak_parallelism",
        ],
    )
    arms = {"pess": PESSIMISTIC, "opt": OPTIMISTIC}
    baselines: dict[str, tuple] = {}
    for label, strategy in arms.items():
        serial = _run_parallel_arm(
            strategy, None, du_count, tuples_per_relation, fault_seed, seed
        )
        baselines[label] = serial
        if not serial[4].consistent:
            result.consistent = False
            result.notes.append(f"{label}: serial arm failed convergence")
    rows: dict[int, dict[str, float]] = {}
    for label, strategy in arms.items():
        serial_extent = baselines[label][1]
        serial_processed = baselines[label][2]
        one_worker_makespan: float | None = None
        for count in workers:
            makespan, extent, processed, metrics, report = (
                _run_parallel_arm(
                    strategy,
                    count,
                    du_count,
                    tuples_per_relation,
                    fault_seed,
                    seed,
                )
            )
            if one_worker_makespan is None:
                one_worker_makespan = makespan
            if extent != serial_extent or processed != serial_processed:
                result.consistent = False
                result.notes.append(
                    f"{label} workers={count}: diverged from serial oracle"
                )
            if not report.consistent:
                result.consistent = False
                result.notes.append(
                    f"{label} workers={count}: failed convergence check"
                )
            row = rows.setdefault(count, {})
            row[f"{label}_makespan"] = makespan
            row[f"{label}_speedup"] = (
                one_worker_makespan / makespan if makespan else 0.0
            )
            if label == "pess":
                row["batched_queries"] = float(metrics.batched_queries)
                row["peak_parallelism"] = float(metrics.peak_parallelism)
    for count in workers:
        result.add(count, **rows[count])
    result.notes.append(
        "extents and committed (source, seqno) sets verified identical "
        "to the serial scheduler in every arm"
    )
    if fault_seed is not None:
        result.notes.append(f"fault plan seed={fault_seed}")
    return result


def _run_cache_arm(
    strategy,
    snapshot_cache: bool,
    du_count: int,
    tuples_per_relation: int,
    seed: int,
    key_domain: int,
    workers: int | None = None,
    fault_seed: int | None = None,
    self_maintenance: bool = False,
):
    """One (strategy, cache on/off) arm of ABL-7 (and, with
    ``self_maintenance``, of ABL-10).

    Returns ``(cost, trips, extent, processed, metrics, report)`` where
    *cost* is the virtual-clock total (makespan under the parallel
    executor, summed busy time serially), *trips* the number of
    maintenance queries that actually travelled, *extent* the final view
    as a sorted row tuple and *processed* the committed (source, seqno)
    set — the latter two byte-comparable across arms.
    """
    from ..faults.injector import FaultInjector
    from ..faults.plan import FaultPlan

    testbed = build_testbed(
        strategy,
        tuples_per_relation=tuples_per_relation,
        parallel_workers=workers,
        snapshot_cache=snapshot_cache,
        self_maintenance=self_maintenance,
    )
    if fault_seed is not None:
        plan = FaultPlan.random(
            fault_seed,
            sources=list(testbed.engine.sources),
            horizon=3.0,
            max_crashes=1,
            crash_length=(0.2, 0.8),
        )
        testbed.engine.install_faults(FaultInjector(plan))
    testbed.engine.schedule_workload(
        testbed.random_du_workload(
            du_count,
            start=0.05,
            interval=0.01,
            seed=seed,
            key_domain=key_domain,
        )
    )
    testbed.run()
    metrics = testbed.metrics
    cost = metrics.elapsed
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    processed = set(testbed.scheduler.stats.processed_messages)
    report = check_convergence(testbed.manager)
    return (
        cost,
        metrics.source_round_trips,
        extent,
        processed,
        metrics,
        report,
    )


def run_snapshot_cache_ablation(
    du_counts: tuple[int, ...] = (60, 120, 240),
    tuples_per_relation: int = 200,
    key_domain: int = 40,
    seed: int = 5,
) -> FigureResult:
    """ABL-7: snapshot cache with local delta patching, on vs off.

    A DU-heavy hot-key stream (keys drawn from a small domain, so
    adjacent maintenance passes probe the same join keys) under both
    conflict strategies.  The cache-on arm must produce a view extent
    and a committed (source, seqno) set byte-identical to the cache-off
    arm — the cache is a pure fast path — while cutting total source
    round trips by >= 1.5x and lowering the virtual-clock total.  A
    4-worker parallel arm rides along to show hits composing with the
    executor (zero-channel-occupancy answers).
    """
    from ..core.strategies import OPTIMISTIC

    result = FigureResult(
        figure_id="ABL-7",
        title="Snapshot cache: source round trips and cost, on vs off",
        x_label="data updates",
        series_names=[
            "pess_trips_off",
            "pess_trips_on",
            "pess_trip_speedup",
            "pess_cost_speedup",
            "opt_trip_speedup",
            "opt_cost_speedup",
            "parallel_trip_speedup",
            "cache_hits",
            "patched_answers",
        ],
    )
    arms = {"pess": PESSIMISTIC, "opt": OPTIMISTIC}
    for du_count in du_counts:
        row: dict[str, float] = {}
        for label, strategy in arms.items():
            off = _run_cache_arm(
                strategy, False, du_count, tuples_per_relation, seed,
                key_domain,
            )
            on = _run_cache_arm(
                strategy, True, du_count, tuples_per_relation, seed,
                key_domain,
            )
            for name, arm in (("off", off), ("on", on)):
                if not arm[5].consistent:
                    result.consistent = False
                    result.notes.append(
                        f"{label} cache={name} du={du_count}: "
                        "failed convergence check"
                    )
            if off[2] != on[2] or off[3] != on[3]:
                result.consistent = False
                result.notes.append(
                    f"{label} du={du_count}: cache-on arm diverged from "
                    "cache-off arm"
                )
            row[f"{label}_trip_speedup"] = (
                off[1] / on[1] if on[1] else 0.0
            )
            row[f"{label}_cost_speedup"] = off[0] / on[0] if on[0] else 0.0
            if label == "pess":
                row["pess_trips_off"] = float(off[1])
                row["pess_trips_on"] = float(on[1])
                row["cache_hits"] = float(on[4].cache_hits)
                row["patched_answers"] = float(on[4].patched_answers)
        par_off = _run_cache_arm(
            PESSIMISTIC, False, du_count, tuples_per_relation, seed,
            key_domain, workers=4,
        )
        par_on = _run_cache_arm(
            PESSIMISTIC, True, du_count, tuples_per_relation, seed,
            key_domain, workers=4,
        )
        if par_off[2] != par_on[2]:
            result.consistent = False
            result.notes.append(
                f"parallel du={du_count}: cache-on arm diverged"
            )
        row["parallel_trip_speedup"] = (
            par_off[1] / par_on[1] if par_on[1] else 0.0
        )
        result.add(du_count, **row)
    result.notes.append(
        "extents and committed (source, seqno) sets verified identical "
        "between cache-on and cache-off arms in every row"
    )
    result.notes.append(
        f"hot-key stream: keys drawn from 1..{key_domain} over "
        f"{tuples_per_relation}-tuple relations"
    )
    return result


def run_self_maintenance_ablation(
    du_counts: tuple[int, ...] = (60, 120, 240),
    tuples_per_relation: int = 200,
    key_domain: int = 40,
    seed: int = 5,
) -> FigureResult:
    """ABL-10: auxiliary self-maintenance store vs cache-only vs bare.

    The same DU-heavy hot-key stream as ABL-7, three arms per strategy:

    * **off** — no local answering at all (the oracle);
    * **cache** — the PR 4 snapshot cache alone (the arm to beat);
    * **aux** — the self-maintenance store alone: per-relation
      projections of the view's needed columns, seeded free from the
      initial load and synced from committed deltas, answer every
      covered probe with **zero** source round trips.

    The aux arm must produce a view extent and a committed
    (source, seqno) set byte-identical to the off arm — replica-served
    answers are exact because projection commutes with the probe's
    select/project and is linear in deltas — while self-maintaining
    >= 80% of data-update units (zero wire trips from dispatch to
    install) and beating the cache-only arm on total virtual-clock
    cost.  A 4-worker parallel aux arm rides along (aux hits occupy no
    source channel, like cache hits).
    """
    from ..core.strategies import OPTIMISTIC

    result = FigureResult(
        figure_id="ABL-10",
        title="Self-maintenance: zero-trip fraction and cost vs cache",
        x_label="data updates",
        series_names=[
            "pess_trips_off",
            "pess_trips_aux",
            "pess_selfmaint_fraction",
            "pess_cost_speedup",
            "pess_cost_speedup_vs_cache",
            "opt_selfmaint_fraction",
            "opt_cost_speedup",
            "parallel_selfmaint_fraction",
            "aux_hits",
        ],
    )
    arms = {"pess": PESSIMISTIC, "opt": OPTIMISTIC}
    for du_count in du_counts:
        row: dict[str, float] = {}
        for label, strategy in arms.items():
            off = _run_cache_arm(
                strategy, False, du_count, tuples_per_relation, seed,
                key_domain,
            )
            cache = _run_cache_arm(
                strategy, True, du_count, tuples_per_relation, seed,
                key_domain,
            )
            aux = _run_cache_arm(
                strategy, False, du_count, tuples_per_relation, seed,
                key_domain, self_maintenance=True,
            )
            for name, arm in (("off", off), ("cache", cache), ("aux", aux)):
                if not arm[5].consistent:
                    result.consistent = False
                    result.notes.append(
                        f"{label} arm={name} du={du_count}: "
                        "failed convergence check"
                    )
            for name, arm in (("cache", cache), ("aux", aux)):
                if off[2] != arm[2] or off[3] != arm[3]:
                    result.consistent = False
                    result.notes.append(
                        f"{label} du={du_count}: {name} arm diverged "
                        "from the off oracle"
                    )
            metrics = aux[4]
            fraction = (
                metrics.self_maintained_units / metrics.data_unit_rounds
                if metrics.data_unit_rounds
                else 0.0
            )
            row[f"{label}_selfmaint_fraction"] = fraction
            row[f"{label}_cost_speedup"] = (
                off[0] / aux[0] if aux[0] else 0.0
            )
            if label == "pess":
                row["pess_trips_off"] = float(off[1])
                row["pess_trips_aux"] = float(aux[1])
                row["pess_cost_speedup_vs_cache"] = (
                    cache[0] / aux[0] if aux[0] else 0.0
                )
                row["aux_hits"] = float(metrics.aux_hits)
        par_off = _run_cache_arm(
            PESSIMISTIC, False, du_count, tuples_per_relation, seed,
            key_domain, workers=4,
        )
        par_aux = _run_cache_arm(
            PESSIMISTIC, False, du_count, tuples_per_relation, seed,
            key_domain, workers=4, self_maintenance=True,
        )
        if par_off[2] != par_aux[2] or par_off[3] != par_aux[3]:
            result.consistent = False
            result.notes.append(
                f"parallel du={du_count}: aux arm diverged from oracle"
            )
        par_metrics = par_aux[4]
        row["parallel_selfmaint_fraction"] = (
            par_metrics.self_maintained_units / par_metrics.data_unit_rounds
            if par_metrics.data_unit_rounds
            else 0.0
        )
        result.add(du_count, **row)
    result.notes.append(
        "extents and committed (source, seqno) sets verified identical "
        "between the aux, cache-only and off arms in every row "
        "(serial both strategies, plus a 4-worker aux arm)"
    )
    result.notes.append(
        f"hot-key stream: keys drawn from 1..{key_domain} over "
        f"{tuples_per_relation}-tuple relations"
    )
    return result


def _run_group_arm(
    strategy,
    batching: bool,
    du_count: int,
    tuples_per_relation: int,
    seed: int,
    workers: int | None = None,
):
    """One (strategy, batching on/off) arm of ABL-8.

    Returns ``(cost, trips, rounds, extents, processed, metrics,
    consistent)`` where *rounds* is the number of maintenance rounds
    actually paid, *extents* the per-view final extents as sorted row
    tuples and *processed* the committed (source, seqno) set — the
    latter two byte-comparable across arms.
    """
    from ..maintenance.grouping import BatchPolicy

    testbed = build_multiview_testbed(
        strategy,
        tuples_per_relation=tuples_per_relation,
        parallel_workers=workers,
        batch_policy=BatchPolicy(max_batch_size=24) if batching else None,
    )
    testbed.engine.schedule_workload(
        testbed.random_du_workload(
            du_count, start=0.05, interval=0.01, seed=seed
        )
    )
    testbed.run()
    metrics = testbed.metrics
    extents = tuple(
        tuple(sorted(map(tuple, manager.mv.extent.rows())))
        for manager in testbed.manager.managers
    )
    processed = set(testbed.scheduler.stats.processed_messages)
    consistent = all(
        check_convergence(manager).consistent
        for manager in testbed.manager.managers
    )
    return (
        metrics.elapsed,
        metrics.source_round_trips,
        metrics.maintenance_rounds,
        extents,
        processed,
        metrics,
        consistent,
    )


def run_group_maintenance_ablation(
    du_counts: tuple[int, ...] = (60, 120, 240),
    tuples_per_relation: int = 200,
    seed: int = 5,
) -> FigureResult:
    """ABL-8: adaptive group maintenance, batching on vs off.

    A DU-heavy stream against the two-subview multi-view testbed (every
    update fans out to the views that join its relation).  The
    batching-on arm merges safe runs of the corrected UMQ into single
    batched maintenance rounds — one coalesced delta per touched
    relation, one probe set per source per batch — and must produce
    per-view extents and a committed (source, seqno) set byte-identical
    to the off arm, while cutting both maintenance rounds and source
    round trips by >= 2x at the heaviest stream.  A 4-worker parallel
    arm rides along to show DU-only batches staying leapfrog-eligible
    (no barrier) under the parallel executor.
    """
    from ..core.strategies import OPTIMISTIC

    result = FigureResult(
        figure_id="ABL-8",
        title="Group maintenance: rounds and round trips, on vs off",
        x_label="data updates",
        series_names=[
            "pess_rounds_off",
            "pess_rounds_on",
            "pess_round_speedup",
            "pess_trips_off",
            "pess_trips_on",
            "pess_trip_speedup",
            "pess_cost_speedup",
            "opt_round_speedup",
            "opt_trip_speedup",
            "par_round_speedup",
            "par_trip_speedup",
            "batches_formed",
            "grouped_messages",
        ],
    )
    arms = {"pess": PESSIMISTIC, "opt": OPTIMISTIC}
    for du_count in du_counts:
        row: dict[str, float] = {}
        for label, strategy in arms.items():
            off = _run_group_arm(
                strategy, False, du_count, tuples_per_relation, seed
            )
            on = _run_group_arm(
                strategy, True, du_count, tuples_per_relation, seed
            )
            for name, arm in (("off", off), ("on", on)):
                if not arm[6]:
                    result.consistent = False
                    result.notes.append(
                        f"{label} batching={name} du={du_count}: "
                        "failed convergence check"
                    )
            if off[3] != on[3] or off[4] != on[4]:
                result.consistent = False
                result.notes.append(
                    f"{label} du={du_count}: batching-on arm diverged "
                    "from batching-off arm"
                )
            row[f"{label}_round_speedup"] = (
                off[2] / on[2] if on[2] else 0.0
            )
            row[f"{label}_trip_speedup"] = off[1] / on[1] if on[1] else 0.0
            if label == "pess":
                row["pess_rounds_off"] = float(off[2])
                row["pess_rounds_on"] = float(on[2])
                row["pess_trips_off"] = float(off[1])
                row["pess_trips_on"] = float(on[1])
                row["pess_cost_speedup"] = (
                    off[0] / on[0] if on[0] else 0.0
                )
                row["batches_formed"] = float(on[5].batches_formed)
                row["grouped_messages"] = float(on[5].grouped_messages)
        par_off = _run_group_arm(
            PESSIMISTIC, False, du_count, tuples_per_relation, seed,
            workers=4,
        )
        par_on = _run_group_arm(
            PESSIMISTIC, True, du_count, tuples_per_relation, seed,
            workers=4,
        )
        if par_off[3] != par_on[3] or par_off[4] != par_on[4]:
            result.consistent = False
            result.notes.append(
                f"parallel du={du_count}: batching-on arm diverged"
            )
        row["par_round_speedup"] = (
            par_off[2] / par_on[2] if par_on[2] else 0.0
        )
        row["par_trip_speedup"] = (
            par_off[1] / par_on[1] if par_on[1] else 0.0
        )
        result.add(du_count, **row)
    result.notes.append(
        "per-view extents and committed (source, seqno) sets verified "
        "identical between batching-on and batching-off arms in every "
        "row, serial and 4-worker parallel"
    )
    result.notes.append(
        "policy: BatchPolicy(max_batch_size=24), du_only — SC-bearing "
        "units are never voluntarily batched"
    )
    return result


def _run_recovery_arm(
    du_count: int,
    sc_count: int,
    tuples_per_relation: int,
    seed: int,
    journal: bool,
    checkpoint_every: int = 8,
    crash_plan=None,
):
    """One fig12-style run; returns (testbed, extent, committed, ok)."""
    testbed = build_testbed(
        PESSIMISTIC,
        tuples_per_relation=tuples_per_relation,
        journal=journal,
        checkpoint_every=checkpoint_every,
        crash_plan=crash_plan,
    )
    testbed.engine.schedule_workload(
        testbed.random_du_workload(
            du_count, start=0.0, interval=0.5, seed=seed
        )
    )
    testbed.engine.schedule_workload(
        testbed.schema_change_workload(
            sc_count, start=0.0, interval=25.0, seed=seed + 4
        )
    )
    testbed.run()
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    committed = testbed.committed_updates()
    ok = check_convergence(testbed.manager).consistent
    return testbed, extent, committed, ok


def run_recovery_ablation(
    checkpoint_intervals: tuple[int, ...] = (2, 8, 16),
    du_count: int = 48,
    sc_count: int = 3,
    tuples_per_relation: int = 300,
    seed: int = 5,
    crash_hit: int | None = None,
) -> FigureResult:
    """ABL-9: recovery overhead vs checkpoint interval.

    A fig12-style mixed workload (DUs at 0.5 s plus a short
    schema-change train) runs three ways per checkpoint interval:

    * **oracle** — journal off: the no-overhead, no-crash reference;
    * **journaled** — journal + checkpoints on, no crash: measures the
      write amplification (journal bytes per data update), checkpoint
      count, and the busy-time cost of both.  Durability charges busy
      time only, never the virtual clock, so this arm must land on the
      *same* virtual clock and extent as the oracle;
    * **crashed** — same, plus a crash at a fixed mid-run point
      (``serial.pre_maintain`` hit ``crash_hit``, default half the
      stream): measures replayed entries and replay cost.  The
      recovered extent and committed (source, seqno) set must equal
      the oracle's.

    Expected shape: checkpoints grow and replay shrinks as the interval
    tightens — a checkpoint bounds the journal suffix a crash replays —
    while journal traffic itself is interval-independent.
    """
    from ..recovery import CrashPlan

    hit = crash_hit if crash_hit is not None else max(du_count // 2, 1)
    result = FigureResult(
        figure_id="ABL-9",
        title="Recovery overhead vs checkpoint interval",
        x_label="checkpoint_every",
        series_names=[
            "journal_entries",
            "journal_kb",
            "kb_per_du",
            "journal_cost",
            "checkpoints_taken",
            "checkpoint_cost",
            "recoveries",
            "replayed_entries",
            "replay_cost",
        ],
    )
    oracle, oracle_extent, oracle_committed, oracle_ok = _run_recovery_arm(
        du_count, sc_count, tuples_per_relation, seed, journal=False
    )
    if not oracle_ok:
        result.consistent = False
        result.notes.append("oracle arm failed convergence check")
    for interval in checkpoint_intervals:
        journaled, extent, committed, ok = _run_recovery_arm(
            du_count,
            sc_count,
            tuples_per_relation,
            seed,
            journal=True,
            checkpoint_every=interval,
        )
        if not ok or extent != oracle_extent:
            result.consistent = False
            result.notes.append(
                f"ckpt={interval}: journaled arm diverged from oracle"
            )
        if journaled.engine.clock.now != oracle.engine.clock.now:
            result.consistent = False
            result.notes.append(
                f"ckpt={interval}: durability advanced the virtual "
                "clock (must charge busy time only)"
            )
        crashed, crashed_extent, crashed_committed, crashed_ok = (
            _run_recovery_arm(
                du_count,
                sc_count,
                tuples_per_relation,
                seed,
                journal=True,
                checkpoint_every=interval,
                crash_plan=CrashPlan("serial.pre_maintain", hit),
            )
        )
        if (
            not crashed_ok
            or crashed_extent != oracle_extent
            or crashed_committed != oracle_committed
        ):
            result.consistent = False
            result.notes.append(
                f"ckpt={interval}: crashed arm diverged from oracle"
            )
        if crashed.metrics.recoveries < 1:
            result.consistent = False
            result.notes.append(f"ckpt={interval}: crash never fired")
        metrics = journaled.metrics
        busy = metrics.busy_time
        result.add(
            interval,
            journal_entries=float(metrics.journal_entries),
            journal_kb=metrics.journal_bytes / 1024.0,
            kb_per_du=metrics.journal_bytes / 1024.0 / du_count,
            journal_cost=busy.get("journal", 0.0),
            checkpoints_taken=float(metrics.checkpoints_taken),
            checkpoint_cost=busy.get("checkpoint", 0.0),
            recoveries=float(crashed.metrics.recoveries),
            replayed_entries=float(crashed.metrics.replayed_entries),
            replay_cost=crashed.metrics.busy_time.get("replay", 0.0),
        )
    result.notes.append(
        "journaled and crashed extents (and committed update sets) "
        "verified identical to the journal-off oracle in every row; "
        f"crash plan: serial.pre_maintain hit {hit}"
    )
    return result


def _run_shard_arm(
    strategy,
    shards: int,
    du_count: int,
    tuples_per_relation: int,
    seed: int,
    sc_count: int = 0,
    workers: int | None = None,
    fault_plan=None,
    crash_plan=None,
    shard_processes: int = 0,
):
    """One sharded-warehouse arm of ABL-11.

    Returns ``(testbed, extents, committed, consistent)`` with extents
    as a view-name -> sorted-row-tuples dict, byte-comparable across
    shard counts (and, since results are bit-identical by construction,
    across ``shard_processes`` — 0 inline, N = OS worker processes).
    """
    from .testbed import build_sharded_testbed

    testbed = build_sharded_testbed(
        strategy,
        shards=shards,
        tuples_per_relation=tuples_per_relation,
        parallel_workers=workers,
        fault_plan=fault_plan,
        crash_plan=crash_plan,
        shard_processes=shard_processes,
    )
    testbed.schedule_du_workload(
        du_count, start=0.05, interval=0.05, seed=seed
    )
    if sc_count:
        testbed.schedule_sc_workload(
            sc_count, start=1.0, interval=9.0, seed=seed + 4
        )
    testbed.run()
    return (
        testbed,
        testbed.extent_rows(),
        testbed.committed_updates(),
        testbed.check_consistency(),
    )


def run_sharding_ablation(
    shard_counts: tuple[int, ...] = (1, 2, 4),
    du_count: int = 160,
    tuples_per_relation: int = 160,
    seed: int = 5,
    reads: int = 1_000_000,
    crash_seed: int = 1,
    fault_seed: int = 9,
    shard_processes: int = 0,
) -> FigureResult:
    """ABL-11: sharded multi-scheduler warehouse + read front end.

    The four-subview workload of ``SHARDED_SPANS`` (every relation in at
    most two views) under a DU-heavy stream, swept over shard counts.
    Each shard owns its own scheduler/UMQ/substrate world; the footprint
    router delivers each update only to shards whose views reference the
    touched relation; the aggregate makespan is the completion time of
    the slowest shard.  Acceptance bar: >= 2x aggregate-makespan
    improvement at 4 shards, with per-view extents and committed
    (source, seqno) sets byte-identical to the 1-shard oracle — also
    under the optimistic strategy, a seeded fault plan, a seeded crash
    plan (per-shard journals + recovery), a 2-worker parallel executor,
    and an SC-bearing stream exercising the cross-shard barrier.

    On top, ``reads`` point/scan reads (split over the two consistency
    levels) are replayed per shard count against the recorded install
    timelines, reporting p50/p99 latency and staleness.

    ``shard_processes=N`` executes the swept multi-shard arms across N
    OS worker processes (:mod:`repro.core.runtime`); results are
    bit-identical, so every oracle comparison still holds — ABL-13
    owns the wall-clock speedup story.
    """
    from ..core.strategies import OPTIMISTIC
    from ..frontend.reads import (
        READ_COMMITTED_VERSION,
        READ_LATEST,
        ReadWorkload,
    )

    result = FigureResult(
        figure_id="ABL-11",
        title="Sharded warehouse: aggregate makespan + read latency",
        x_label="shards",
        series_names=[
            "pess_makespan_speedup",
            "opt_makespan_speedup",
            "pess_makespan",
            "pess_busy_time",
            "router_delivered",
            "router_dropped",
            "barrier_deferrals",
            "reads_served",
            "read_p50_latest",
            "read_p99_latest",
            "read_p99_committed",
            "staleness_latest",
            "staleness_committed",
            "stale_fraction_latest",
        ],
    )
    oracles: dict = {}
    for label, strategy in (("pess", PESSIMISTIC), ("opt", OPTIMISTIC)):
        oracles[label] = _run_shard_arm(
            strategy, 1, du_count, tuples_per_relation, seed
        )
    for shards in shard_counts:
        row: dict[str, float] = {}
        arms = {}
        for label, strategy in (("pess", PESSIMISTIC), ("opt", OPTIMISTIC)):
            arm = _run_shard_arm(
                strategy,
                shards,
                du_count,
                tuples_per_relation,
                seed,
                shard_processes=shard_processes,
            )
            arms[label] = arm
            testbed, extents, committed, consistent = arm
            oracle = oracles[label]
            if not consistent:
                result.consistent = False
                result.notes.append(
                    f"{label} shards={shards}: failed convergence check"
                )
            if extents != oracle[1] or committed != oracle[2]:
                result.consistent = False
                result.notes.append(
                    f"{label} shards={shards}: diverged from 1-shard oracle"
                )
            metrics = testbed.metrics
            row[f"{label}_makespan_speedup"] = (
                oracle[0].metrics.makespan / metrics.makespan
                if metrics.makespan
                else 0.0
            )
            if label == "pess":
                row["pess_makespan"] = metrics.makespan
                row["pess_busy_time"] = metrics.total_busy_time
                row["router_delivered"] = float(metrics.router_delivered)
                row["router_dropped"] = float(metrics.router_dropped)
                row["barrier_deferrals"] = float(metrics.barrier_deferrals)
        # Read front end: half the budget per consistency level against
        # the pessimistic arm's install timelines.
        front_end = arms["pess"][0].read_front_end()
        per_level = max(1, reads // 2)
        latest = front_end.serve(
            ReadWorkload(count=per_level, seed=17), READ_LATEST
        )
        committed_level = front_end.serve(
            ReadWorkload(count=per_level, seed=17), READ_COMMITTED_VERSION
        )
        row["reads_served"] = float(latest.count + committed_level.count)
        row["read_p50_latest"] = latest.p50_latency
        row["read_p99_latest"] = latest.p99_latency
        row["read_p99_committed"] = committed_level.p99_latency
        row["staleness_latest"] = latest.mean_staleness
        row["staleness_committed"] = committed_level.mean_staleness
        row["stale_fraction_latest"] = latest.stale_fraction
        result.add(shards, **row)
    # Equivalence cross-product at the widest shard count: every knob
    # that could break determinism runs against a matching 1-shard
    # oracle and must reproduce its extents + committed sets exactly.
    widest = max(shard_counts)
    from ..faults.plan import FaultPlan
    from ..recovery import CrashPlan
    from .testbed import SOURCE_COUNT, source_name

    fault_plan = FaultPlan.random(
        fault_seed,
        sources=tuple(source_name(i) for i in range(SOURCE_COUNT)),
    )
    crash_plan = CrashPlan.random(crash_seed)
    hardened = (
        ("faults", {"fault_plan": fault_plan}),
        ("crash", {"crash_plan": crash_plan}),
        ("workers", {"workers": 2}),
        ("sc_barrier", {"sc_count": 3}),
    )
    for name, knobs in hardened:
        oracle = _run_shard_arm(
            PESSIMISTIC, 1, du_count, tuples_per_relation, seed, **knobs
        )
        arm = _run_shard_arm(
            PESSIMISTIC, widest, du_count, tuples_per_relation, seed, **knobs
        )
        if not (oracle[3] and arm[3]):
            result.consistent = False
            result.notes.append(f"{name}: failed convergence check")
        if arm[1] != oracle[1] or arm[2] != oracle[2]:
            result.consistent = False
            result.notes.append(
                f"{name}: {widest}-shard arm diverged from oracle"
            )
        if name == "crash" and arm[0].metrics.recoveries < 1:
            result.consistent = False
            result.notes.append("crash: plan never fired")
        if name == "sc_barrier" and arm[0].metrics.barrier_deferrals < 1:
            result.notes.append("sc_barrier: barrier never deferred")
    result.notes.append(
        "per-view extents and committed (source, seqno) sets verified "
        "byte-identical to the 1-shard oracle at every shard count, and "
        "again at the widest count under optimistic strategy, fault "
        "plan, crash plan (per-shard journals), 2-worker parallel "
        "executor, and an SC stream crossing the shard barrier"
    )
    result.notes.append(
        "reads are replayed post hoc against recorded install "
        "timelines: read-latest serves each shard's freshest version, "
        "read-committed-version the newest version within the global "
        "min-across-shards commit watermark"
    )
    return result
