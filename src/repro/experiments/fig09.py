"""Figure 9 — the cost of a broken query.

Two conflicting workloads (Section 6.3):

* ``one DU + one SC`` — a data update immediately followed by a
  drop-attribute schema change that conflicts with the DU's maintenance
  queries;
* ``one SC + one SC`` — a drop-attribute schema change followed by a
  conflicting rename-relation schema change.

Three settings each:

* ``no_concurrency`` — the updates are spaced far apart, so neither
  maintenance overlaps the other commit: the minimum cost;
* ``pessimistic`` — pre-exec detection discovers the conflict before
  starting doomed work and reorders/merges;
* ``optimistic`` — maintenance starts immediately, the query breaks,
  the partial work is aborted and redone after correction.

Expected shape: for ``one SC + one SC`` the optimistic bar towers over
the other two (aborting schema-change maintenance wastes tens of
seconds); for ``one DU + one SC`` the gap is small (a DU abort is
cheap).  Pessimistic ≈ no-concurrency in both workloads.
"""

from __future__ import annotations

from ..core.strategies import OPTIMISTIC, PESSIMISTIC, Strategy
from ..maintenance.grouping import BatchPolicy
from ..sources.workload import Workload
from ..views.consistency import check_convergence
from .runner import FigureResult
from .testbed import (
    build_testbed,
    fixed_drop_attribute,
    fixed_rename_relation,
    recovery_knobs,
)

#: spacing that guarantees no overlap (≫ one SC maintenance time)
NO_CONCURRENCY_SPACING = 200.0


def _run_one(
    workload_kind: str,
    strategy: Strategy,
    spacing: float,
    tuples_per_relation: int,
    snapshot_cache: bool = False,
    self_maintenance: bool = False,
    group_maintenance: bool = False,
    recovery: dict | None = None,
    shards: int = 1,
) -> tuple[float, float, bool]:
    testbed = build_testbed(
        strategy,
        tuples_per_relation=tuples_per_relation,
        snapshot_cache=snapshot_cache,
        self_maintenance=self_maintenance,
        batch_policy=BatchPolicy() if group_maintenance else None,
        shards=shards,
        **(recovery or {}),
    )
    workload = Workload()
    if workload_kind == "du_sc":
        du_intent = testbed.random_du_workload(1, 0.0, 1.0).items[0].intent
        workload.add(0.0, "src1", du_intent)
        # Drop a non-key attribute of R6: the last relation the DU sweep
        # probes, so an optimistic break wastes the most probe work.
        workload.add(spacing, "src3", fixed_drop_attribute(5))
    elif workload_kind == "sc_sc":
        workload.add(0.0, "src1", fixed_drop_attribute(0))
        # Rename R6, scanned last during the first SC's adaptation.
        workload.add(spacing, "src3", fixed_rename_relation(5))
    else:  # pragma: no cover
        raise ValueError(workload_kind)
    testbed.engine.schedule_workload(workload)
    testbed.run()
    report = check_convergence(testbed.manager)
    return (
        testbed.metrics.maintenance_cost,
        testbed.metrics.abort_cost,
        report.consistent,
    )


def run_figure(
    tuples_per_relation: int = 2000,
    conflict_spacing: float = 0.0,
    snapshot_cache: bool = False,
    self_maintenance: bool = False,
    group_maintenance: bool = False,
    journal: bool = False,
    checkpoint_every: int = 8,
    crash_seed: int | None = None,
    shards: int = 1,
) -> FigureResult:
    """``conflict_spacing`` = 0 commits both updates at the same instant
    (they flood the UMQ together, the paper's conflicting setup)."""
    recovery = recovery_knobs(journal, checkpoint_every, crash_seed)
    result = FigureResult(
        figure_id="FIG-9",
        title="Cost of broken query (virtual s, total incl. abort)",
        x_label="workload",
        series_names=["no_concurrency", "pessimistic", "optimistic"],
    )
    for kind, label in (
        ("du_sc", "One DU + One SC"),
        ("sc_sc", "One SC + One SC"),
    ):
        no_concurrency, _, ok0 = _run_one(
            kind,
            PESSIMISTIC,
            NO_CONCURRENCY_SPACING,
            tuples_per_relation,
            snapshot_cache,
            self_maintenance,
            group_maintenance,
            recovery,
            shards,
        )
        pessimistic, _, ok1 = _run_one(
            kind,
            PESSIMISTIC,
            conflict_spacing,
            tuples_per_relation,
            snapshot_cache,
            self_maintenance,
            group_maintenance,
            recovery,
            shards,
        )
        optimistic, abort, ok2 = _run_one(
            kind,
            OPTIMISTIC,
            conflict_spacing,
            tuples_per_relation,
            snapshot_cache,
            self_maintenance,
            group_maintenance,
            recovery,
            shards,
        )
        if not (ok0 and ok1 and ok2):
            result.consistent = False
        result.add(
            label,
            no_concurrency=no_concurrency,
            pessimistic=pessimistic,
            optimistic=optimistic,
        )
        result.notes.append(
            f"{label}: optimistic abort cost {abort:.2f} virtual s"
        )
    return result
