"""Schema history: translating stale update names forward.

Correction can legally move a schema-change batch *ahead* of a data
update that committed under the old schema (the CD edge of another
relation forces the batch forward; no semantic dependency pins the DU).
When that data update finally reaches the head, its payload still
speaks the old language — old relation name, old attribute names — while
the view definition and the sources have moved on.

The view manager therefore records every schema change it has
*installed* in a :class:`SchemaHistory` and translates stale data
updates forward before maintaining or compensating them: relation names
follow rename chains, attribute values are projected onto the current
layout (renamed attributes follow, dropped ones disappear, added ones
become NULL), and updates whose relation was dropped translate to
nothing.

Without this, a stale update is silently absorbed by the batch's
adaptation scans (convergence survives) but the view's *intermediate*
states stop corresponding to maintained prefixes — strong consistency
is lost — and attribute-level staleness can break the probe sweep
outright.  The strong-consistency integration tests pin this behaviour.
"""

from __future__ import annotations

from ..relational.delta import Delta
from ..relational.schema import RelationSchema
from ..sources.messages import (
    AddAttribute,
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    SchemaChange,
)


class SchemaHistory:
    """Per-source record of installed schema changes."""

    def __init__(self) -> None:
        #: (source, past name) -> current name, or None if dropped
        self._relation_now: dict[tuple[str, str], str | None] = {}
        #: (source, current relation) -> {past attribute -> current or None}
        self._attribute_now: dict[tuple[str, str], dict[str, str | None]] = {}
        #: (source, current relation) -> attributes added after the fact
        self._added: dict[tuple[str, str], list] = {}

    def is_empty(self) -> bool:
        return not self._relation_now and not self._attribute_now

    # ------------------------------------------------------------------
    # recording installed changes
    # ------------------------------------------------------------------

    def record(self, source: str, change: SchemaChange) -> None:
        if isinstance(change, RenameRelation):
            self._rename_relation(source, change.old, change.new)
        elif isinstance(change, RenameAttribute):
            relation = self.current_relation(source, change.relation)
            if relation is None:
                return
            attributes = self._attribute_now.setdefault(
                (source, relation), {}
            )
            # re-point every past name that currently maps to `old`
            for past, now in attributes.items():
                if now == change.old:
                    attributes[past] = change.new
            attributes.setdefault(change.old, change.new)
        elif isinstance(change, DropAttribute):
            relation = self.current_relation(source, change.relation)
            if relation is None:
                return
            attributes = self._attribute_now.setdefault(
                (source, relation), {}
            )
            for past, now in attributes.items():
                if now == change.attribute:
                    attributes[past] = None
            attributes.setdefault(change.attribute, None)
        elif isinstance(change, DropRelation):
            self._drop_relation(source, change.relation)
        elif isinstance(change, RestructureRelations):
            for relation in change.dropped:
                self._drop_relation(source, relation)
            # the created relation starts a fresh lineage
            self._relation_now.pop(
                (source, change.new_schema.name), None
            )
        elif isinstance(change, AddAttribute):
            relation = self.current_relation(source, change.relation)
            if relation is None:
                return
            self._added.setdefault((source, relation), []).append(
                change.attribute
            )
        elif isinstance(change, CreateRelation):
            pass  # a brand-new relation needs no translation
        # unknown change kinds are ignored: translation is best-effort

    def _rename_relation(self, source: str, old: str, new: str) -> None:
        current_old = self.current_relation(source, old)
        for key, now in list(self._relation_now.items()):
            if key[0] == source and now == old:
                self._relation_now[key] = new
        self._relation_now[(source, old)] = new
        # attribute maps are keyed by current relation name: re-key
        if current_old is not None:
            attributes = self._attribute_now.pop(
                (source, current_old), None
            )
            if attributes is not None:
                self._attribute_now[(source, new)] = attributes
            added = self._added.pop((source, current_old), None)
            if added is not None:
                self._added[(source, new)] = added

    def _drop_relation(self, source: str, relation: str) -> None:
        for key, now in list(self._relation_now.items()):
            if key[0] == source and now == relation:
                self._relation_now[key] = None
        self._relation_now[(source, relation)] = None
        self._attribute_now.pop((source, relation), None)
        self._added.pop((source, relation), None)

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------

    def current_relation(self, source: str, name: str) -> str | None:
        """The relation's current name, or None if it was dropped."""
        return self._relation_now.get((source, name), name)

    def current_attribute(
        self, source: str, current_relation: str, past_attribute: str
    ) -> str | None:
        attributes = self._attribute_now.get((source, current_relation))
        if attributes is None:
            return past_attribute
        return attributes.get(past_attribute, past_attribute)

    def translate_data_update(
        self, source: str, update: DataUpdate
    ) -> DataUpdate | None:
        """Project a (possibly stale) data update through the history.

        The target layout is derived purely from the *recorded* changes
        — NOT the live source schema, which may already be ahead of what
        the view manager has maintained (later schema changes are still
        queued).  Returns ``None`` when the relation was dropped;
        returns the update unchanged when nothing recorded affects it.
        """
        current_name = self.current_relation(source, update.relation)
        if current_name is None:
            return None

        from ..relational.schema import Attribute

        stale = update.delta.schema
        attributes: list[Attribute] = []
        positions: list[int | None] = []
        for index, attribute in enumerate(stale.attributes):
            mapped = self.current_attribute(
                source, current_name, attribute.name
            )
            if mapped is None:
                continue  # dropped since the commit
            attributes.append(Attribute(mapped, attribute.type))
            positions.append(index)
        present = {attribute.name for attribute in attributes}
        for added in self._added.get((source, current_name), []):
            if added.name not in present:
                attributes.append(added)
                positions.append(None)
                present.add(added.name)

        unchanged = (
            current_name == update.relation
            and tuple(a.name for a in attributes) == stale.attribute_names
        )
        if unchanged:
            return update

        schema = RelationSchema(current_name, tuple(attributes))
        translated = Delta(schema)
        for row, count in update.delta.items():
            translated.add(
                tuple(
                    row[position] if position is not None else None
                    for position in positions
                ),
                count,
            )
        return DataUpdate(current_name, translated)
