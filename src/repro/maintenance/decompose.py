"""Decomposing a view query into per-source maintenance queries.

Definition 1: maintaining an update means reading the view definition,
decomposing the view query into individual source queries, probing each
source, and assembling the answers locally.  This module owns the
decomposition: which columns of each relation the view manager needs,
which selection conjuncts can be pushed to a source, and how to build
probe (IN-list) and scan queries for one alias.
"""

from __future__ import annotations

from collections import deque

from ..relational.predicate import (
    TRUE,
    AttrRef,
    Conjunction,
    InPredicate,
    Predicate,
    conjunction,
)
from ..relational.query import RelationRef, SPJQuery


def needed_columns(query: SPJQuery, alias: str) -> tuple[str, ...]:
    """Attributes of ``alias`` the view manager needs (projection order
    first, then join/selection attributes)."""
    ordered: list[str] = []
    seen: set[str] = set()
    for ref in query.projection:
        if ref.relation == alias and ref.name not in seen:
            ordered.append(ref.name)
            seen.add(ref.name)
    for ref in sorted(
        query.all_attribute_refs(), key=lambda r: (r.relation or "", r.name)
    ):
        if ref.relation == alias and ref.name not in seen:
            ordered.append(ref.name)
            seen.add(ref.name)
    return tuple(ordered)


def selection_conjuncts(query: SPJQuery) -> list[Predicate]:
    selection = query.selection
    if selection is TRUE:
        return []
    if isinstance(selection, Conjunction):
        return list(selection.children)
    return [selection]


def pushdown_selection(query: SPJQuery, alias: str) -> Predicate:
    """Conjuncts of the view selection referencing only ``alias``."""
    terms = [
        term
        for term in selection_conjuncts(query)
        if {ref.relation for ref in term.references()} == {alias}
    ]
    return conjunction(terms)


def selection_within(query: SPJQuery, aliases: set[str]) -> Predicate:
    """Conjuncts whose references fall entirely inside ``aliases``."""
    terms = [
        term
        for term in selection_conjuncts(query)
        if {ref.relation for ref in term.references()} <= aliases
    ]
    return conjunction(terms)


def probe_query(
    query: SPJQuery,
    alias: str,
    probes: dict[str, frozenset],
) -> SPJQuery:
    """A single-relation probe: needed columns of ``alias`` where each
    probe attribute is IN its value list, plus pushdown selection."""
    ref = query.relation_ref(alias)
    predicates: list[Predicate] = [pushdown_selection(query, alias)]
    for attribute, values in sorted(probes.items()):
        predicates.append(InPredicate(AttrRef(alias, attribute), values))
    return SPJQuery(
        relations=(ref,),
        projection=tuple(
            AttrRef(alias, name) for name in needed_columns(query, alias)
        ),
        joins=(),
        selection=conjunction(predicates),
    )


def scan_query(query: SPJQuery, alias: str) -> SPJQuery:
    """A full single-relation read of the needed columns of ``alias``."""
    ref = query.relation_ref(alias)
    return SPJQuery(
        relations=(ref,),
        projection=tuple(
            AttrRef(alias, name) for name in needed_columns(query, alias)
        ),
        joins=(),
        selection=pushdown_selection(query, alias),
    )


def subquery_over(
    query: SPJQuery,
    aliases: list[str],
    projection: tuple[AttrRef, ...],
) -> SPJQuery:
    """The view query restricted to a subset of aliases."""
    alias_set = set(aliases)
    relations = tuple(
        ref for ref in query.relations if ref.alias in alias_set
    )
    joins = tuple(
        join
        for join in query.joins
        if join.left.relation in alias_set and join.right.relation in alias_set
    )
    return SPJQuery(
        relations=relations,
        projection=projection,
        joins=joins,
        selection=selection_within(query, alias_set),
    )


def bfs_alias_order(query: SPJQuery, start_alias: str) -> list[str]:
    """Aliases in breadth-first order over the join graph from ``start``.

    Aliases unreachable from the start (disconnected join graph) are
    appended at the end in query order; callers fetch them with full
    scans instead of probes.
    """
    adjacency: dict[str, set[str]] = {alias: set() for alias in query.aliases}
    for join in query.joins:
        left = join.left.relation
        right = join.right.relation
        adjacency[left].add(right)  # type: ignore[index]
        adjacency[right].add(left)  # type: ignore[index]
    order: list[str] = []
    seen: set[str] = set()
    queue: deque[str] = deque([start_alias])
    seen.add(start_alias)
    while queue:
        alias = queue.popleft()
        order.append(alias)
        for neighbour in sorted(adjacency[alias]):
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
    for alias in query.aliases:
        if alias not in seen:
            order.append(alias)
            seen.add(alias)
    return order


def connecting_joins(
    query: SPJQuery, alias: str, visited: set[str]
) -> list:
    """Join conditions linking ``alias`` to already-visited aliases."""
    return [
        join
        for join in query.joins
        if join.touches(alias)
        and join.other_side(alias).relation in visited
    ]


def owner_ref(query: SPJQuery, alias: str) -> RelationRef:
    return query.relation_ref(alias)
