"""Maintenance algorithms: VM (with compensation), VS, VA, batching."""

from .batch import (
    combine_schema_changes,
    data_updates_of,
    homogenize_data_updates,
    schema_changes_of,
)
from .compensation import (
    CompensationLog,
    compensate_answer,
    effect_on_answer,
    pending_data_updates,
)
from .grouping import (
    BatchPolicy,
    coalesce_data_updates,
    find_safe_runs,
    merge_runs,
)
from .decompose import (
    bfs_alias_order,
    needed_columns,
    probe_query,
    pushdown_selection,
    scan_query,
    subquery_over,
)
from .va import adapt_view, telescoping_delta
from .vm import maintain_data_update
from .vs import (
    RewriteReport,
    SynchronizationResult,
    ViewSynchronizationError,
    ViewSynchronizer,
)

__all__ = [
    "BatchPolicy",
    "CompensationLog",
    "RewriteReport",
    "SynchronizationResult",
    "ViewSynchronizationError",
    "ViewSynchronizer",
    "adapt_view",
    "bfs_alias_order",
    "coalesce_data_updates",
    "combine_schema_changes",
    "compensate_answer",
    "data_updates_of",
    "effect_on_answer",
    "find_safe_runs",
    "merge_runs",
    "homogenize_data_updates",
    "maintain_data_update",
    "needed_columns",
    "pending_data_updates",
    "probe_query",
    "pushdown_selection",
    "scan_query",
    "schema_changes_of",
    "subquery_over",
    "telescoping_delta",
]
