"""Adaptive group maintenance: merging safe UMQ runs into batches.

Section 5's batch preprocessing (combine the schema changes, homogenize
the data updates) is mandatory only when correction forces a dependency
cycle into one batch node.  Everything else in the UMQ pays a full
maintenance round — probe sweep plus compensation — per message, so
DU-heavy streams scale linearly in source round trips.  This module
adds the *voluntary* counterpart: a :class:`BatchPolicy` scans the
(corrected) queue for maximal **safe runs** and coalesces each into one
batch unit maintained in a single round.

A *safe run* is a maximal sequence of **consecutive** queue units such
that merging them preserves a legal order (Definition 7 / Theorem 2):

* every member is admitted by the policy — by default only SC-free
  units (``du_only``), so Theorem 1's broken-query detection keeps its
  meaning: a schema change is never silently folded into a voluntary
  batch, and a query broken by a concurrent SC still aborts and
  reorders exactly as before;
* no concurrent dependency (CD, Definition 6) connects a member to any
  other member.  CD edges originate at schema changes, so under
  ``du_only`` this holds vacuously; in mixed mode the check consults
  the live edge set (O(deg) per candidate, no graph rebuild);
* the merged unit respects ``max_batch_size`` (messages) and
  ``batch_window`` (committed-at span).

Why merging a safe run is legal: the batch occupies the run's position,
so every edge *crossing* the run keeps its relative order unchanged.
Edges *inside* the run are semantic dependencies (SD) between
consecutive touches of one ``(source, relation)``; they always point
forward in queue order, and the batch maintains its messages in exactly
that order — an SD inside a batch is satisfied by construction
(Section 4.2's argument for cycle batches, applied voluntarily).

The payoff is realized by :func:`coalesce_data_updates`: inside one
unit, same-relation deltas merge into a single delta, so the batch
issues **one probe sweep per touched relation** (one probe set per
source) instead of one per message.  The merge is exact — SPJ joins are
bilinear in their relations, so summing same-relation deltas before
probing reassociates the telescoping sum of per-message view deltas
without changing its value; insert/delete pairs that cancel inside the
batch simply drop out of the probe traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.dependencies import Dependency, DependencyKind
from ..relational.delta import Delta
from ..sources.messages import DataUpdate, UpdateMessage
from ..views.umq import MaintenanceUnit


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs for voluntary group maintenance.

    ``max_batch_size`` caps the *messages* per voluntary batch (latency
    bound: one huge batch would delay every member's visibility until
    the last probe answers).  ``batch_window`` caps the committed-at
    span a batch may cover (staleness bound; ``None`` = unlimited).
    ``du_only`` admits only SC-free units — the safe default; mixed
    mode additionally admits SC-bearing units with no concurrent edge
    into the run, trading detection transparency for fewer VS rounds.
    """

    enabled: bool = True
    max_batch_size: int = 16
    batch_window: float | None = None
    du_only: bool = True

    def admits(self, unit: MaintenanceUnit) -> bool:
        """May ``unit`` join a voluntary batch at all?"""
        if not self.enabled:
            return False
        return not (self.du_only and unit.has_schema_change)


def _span(unit: MaintenanceUnit) -> tuple[float, float]:
    stamps = [message.committed_at for message in unit]
    return min(stamps), max(stamps)


def find_safe_runs(
    units: Sequence[MaintenanceUnit],
    policy: BatchPolicy,
    dependencies: Iterable[Dependency] = (),
) -> list[tuple[int, int]]:
    """Maximal safe runs as ``[start, end)`` unit-index ranges.

    Only runs of two or more units are returned (a single unit is
    already its own maintenance round).  ``dependencies`` are
    message-level edges in *current queue positions* (the incremental
    substrate's :meth:`dependencies`); only concurrent edges matter —
    semantic edges between consecutive units point forward and are
    preserved by in-batch commit order.  Under ``du_only`` the edge set
    may be empty: CD edges need a schema-change endpoint and SC-bearing
    units are never admitted.
    """
    if not policy.enabled or len(units) < 2:
        return []
    unit_of: list[int] = []
    for index, unit in enumerate(units):
        unit_of.extend([index] * len(unit))
    # Unordered CD partnership per unit: merging two partners would
    # hide the very conflict Theorem 1 detects.
    partners: dict[int, set[int]] = {}
    for dependency in dependencies:
        if dependency.kind is not DependencyKind.CONCURRENT:
            continue
        before = unit_of[dependency.before_index]
        after = unit_of[dependency.after_index]
        if before == after:
            continue
        partners.setdefault(before, set()).add(after)
        partners.setdefault(after, set()).add(before)

    runs: list[tuple[int, int]] = []
    index = 0
    while index < len(units):
        if not policy.admits(units[index]):
            index += 1
            continue
        start = index
        members = {index}
        size = len(units[index])
        low, high = _span(units[index])
        index += 1
        while index < len(units) and size < policy.max_batch_size:
            candidate = units[index]
            if not policy.admits(candidate):
                break
            if size + len(candidate) > policy.max_batch_size:
                break
            c_low, c_high = _span(candidate)
            if policy.batch_window is not None and (
                max(high, c_high) - min(low, c_low) > policy.batch_window
            ):
                break
            if partners.get(index, set()) & members:
                break
            members.add(index)
            size += len(candidate)
            low, high = min(low, c_low), max(high, c_high)
            index += 1
        if len(members) >= 2:
            runs.append((start, start + len(members)))
    return runs


def merge_runs(
    units: Sequence[MaintenanceUnit], runs: Sequence[tuple[int, int]]
) -> tuple[list[MaintenanceUnit], int]:
    """The new unit order with every run merged in place.

    Returns ``(order, grouped)`` where *grouped* counts the messages
    *newly* entering a voluntary batch — members of an existing batch
    unit being extended (the parallel executor regroups every dispatch
    round as messages trickle in) are not recounted.  Runs must be
    disjoint and sorted (as :func:`find_safe_runs` yields them).
    """
    order: list[MaintenanceUnit] = []
    grouped = 0
    cursor = 0
    for start, end in runs:
        order.extend(units[cursor:start])
        batch = MaintenanceUnit.merged(units[start:end])
        grouped += sum(
            len(unit) for unit in units[start:end] if not unit.is_batch
        )
        order.append(batch)
        cursor = end
    order.extend(units[cursor:])
    return order, grouped


def coalesce_data_updates(
    messages: Sequence[UpdateMessage],
) -> list[UpdateMessage]:
    """Merge same-``(source, relation)`` data updates into one message.

    Input messages must be translated data updates (all deltas already
    expressed against current names).  Groups keep first-occurrence
    order; within a group, signed counts sum into one delta — exact by
    bilinearity of the SPJ join, since the in-unit pending overlay
    compensates every cross term exactly once regardless of how the
    per-relation sum is associated.  Synthetic messages carry the
    group's newest ``committed_at`` (all members are committed before
    the batch's maintenance starts, so every probe answer still
    post-dates them) and the last member's seqno; they exist only
    inside the maintenance computation and never enter the UMQ or the
    processed-message log.

    Falls back to the untouched sequence when any group mixes delta
    schemas (updates straddling an untranslated schema gap) — applying
    them one by one is always correct, merging is the optimization.
    """
    if len(messages) < 2:
        return list(messages)
    groups: dict[tuple[str, str], list[UpdateMessage]] = {}
    for message in messages:
        payload = message.payload
        assert isinstance(payload, DataUpdate)
        groups.setdefault(
            (message.source, payload.relation), []
        ).append(message)
    if len(groups) == len(messages):
        return list(messages)
    coalesced: list[UpdateMessage] = []
    for (source, relation), group in groups.items():
        if len(group) == 1:
            coalesced.append(group[0])
            continue
        schema = group[0].payload.delta.schema
        if any(
            message.payload.delta.schema != schema
            for message in group[1:]
        ):
            return list(messages)
        merged = Delta(schema)
        for message in group:
            for row, count in message.payload.delta.items():
                merged.add(row, count)
        if merged.is_empty():
            continue  # the group cancelled out: no probes needed
        coalesced.append(
            UpdateMessage(
                source,
                group[-1].seqno,
                max(message.committed_at for message in group),
                DataUpdate(relation, merged),
            )
        )
    return coalesced
