"""View maintenance (VM) for data updates: the probe sweep.

Given a data update Δ on one relation, the maintenance process (the
``M(DU)`` of Definition 1):

1. reads the view definition,
2. walks the view's join graph breadth-first from the updated relation,
   probing each other relation with an IN-list built from the partially
   joined result so far (the per-source queries ``r(DS1)..r(DSn)``),
3. compensates every answer for concurrent data updates that leaked in
   (SWEEP-style, see :mod:`repro.maintenance.compensation`),
4. assembles the view delta locally with the bag-semantics executor, and
5. returns the delta for the scheduler to write and commit (``w(MV)``,
   ``c(MV)``).

The process is a generator of effects; a concurrent schema change makes
one of the probes raise
:class:`~repro.sources.errors.BrokenQueryError`, which propagates out of
the generator — the scheduler's in-exec detection.
"""

from __future__ import annotations

from ..relational.delta import Delta
from ..relational.table import Table
from ..relational.executor import execute
from ..sim.effects import SourceQuery
from ..sim.engine import MaintenanceProcess, QueryAnswer
from ..sources.messages import DataUpdate
from ..views.definition import ViewDefinition
from ..views.umq import MaintenanceUnit, UpdateMessageQueue
from .compensation import (
    CompensationLog,
    compensate_answer,
    pending_data_updates,
)
from .decompose import (
    bfs_alias_order,
    connecting_joins,
    probe_query,
    scan_query,
    subquery_over,
)


def _delta_part_as_table(delta: Delta, positive: bool) -> Table:
    part = delta.insertions if positive else delta.deletions
    table = Table(part.schema)
    for row, count in part.items():
        table.insert(row, count)
    return table


def _abs_table(delta: Delta) -> Table:
    table = Table(delta.schema)
    for row, count in delta.items():
        table.insert(row, abs(count))
    return table


def _distinct_values(table: Table, column_positions: list[int]) -> list[frozenset]:
    values: list[set] = [set() for _ in column_positions]
    for row in table:
        for index, position in enumerate(column_positions):
            values[index].add(row[position])
    return [frozenset(collected) for collected in values]


def maintain_data_update(
    view: ViewDefinition,
    unit: MaintenanceUnit,
    umq: UpdateMessageQueue,
    log: CompensationLog | None = None,
) -> MaintenanceProcess:
    """Maintenance process for a single data update unit.

    Returns (via StopIteration) the signed view delta, or ``None`` when
    the update does not involve the view.
    """
    message = unit.head_message
    payload = message.payload
    assert isinstance(payload, DataUpdate)
    query = view.query

    occurrences = [
        ref
        for ref in query.relations
        if ref.source == message.source and ref.relation == payload.relation
    ]
    if not occurrences or payload.delta.is_empty():
        return None

    total: Delta | None = None
    for k_ref in occurrences:
        delta_alias = k_ref.alias
        bindings: dict[str, Table] = {delta_alias: _abs_table(payload.delta)}
        order = bfs_alias_order(query, delta_alias)
        visited: set[str] = {delta_alias}

        for alias in order[1:]:
            ref = query.relation_ref(alias)
            joins = connecting_joins(query, alias, visited)
            if joins:
                # IN-list values come from the partial join over what we
                # have so far.
                target_attrs = tuple(
                    join.other_side(alias) for join in joins
                )
                partial = subquery_over(query, sorted(visited), target_attrs)
                context = execute(
                    partial,
                    {a: bindings[a] for a in visited},
                )
                positions = list(range(len(target_attrs)))
                value_sets = _distinct_values(context, positions)
                probes = {
                    join.attr_of(alias).name: value_sets[index]
                    for index, join in enumerate(joins)
                }
                source_query = probe_query(query, alias, probes)
            else:
                # Disconnected relation: full scan.
                source_query = scan_query(query, alias)

            # Indexed IN-list probes may coalesce with probes from other
            # concurrently maintained units against the same source.
            # Both probes and scans bind a single relation, so the
            # snapshot cache can patch them forward locally.
            answer = yield SourceQuery(
                ref.source,
                source_query,
                batchable=bool(joins),
                cacheable=True,
            )
            assert isinstance(answer, QueryAnswer)

            leaked = pending_data_updates(
                umq.messages_behind(unit),
                ref.source,
                ref.relation,
                answer.answered_at,
            )
            # Self-join rule: probes of *later* occurrences of the
            # updated relation must see the pre-update state, so the
            # update's own delta is compensated away there; earlier
            # occurrences keep the post-update state.
            extra: list[Delta] = []
            occurrence_aliases = [other.alias for other in occurrences]
            if alias in occurrence_aliases:
                own_position = occurrence_aliases.index(delta_alias)
                alias_position = occurrence_aliases.index(alias)
                if alias_position > own_position:
                    extra.append(payload.delta)

            bindings[alias] = compensate_answer(
                answer.table, source_query, alias, leaked, log, extra
            )
            visited.add(alias)

        positive = execute(
            query,
            {
                **bindings,
                delta_alias: _delta_part_as_table(payload.delta, True),
            },
        )
        negative = execute(
            query,
            {
                **bindings,
                delta_alias: _delta_part_as_table(payload.delta, False),
            },
        )
        contribution = positive.as_delta()
        contribution.merge(negative.as_delta().negated())
        if total is None:
            total = contribution
        else:
            total.merge(contribution)

    return total
