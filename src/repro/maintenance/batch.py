"""Preprocessing of merged update batches (Section 5).

When dependency correction merges a cycle into one batch unit, the batch
is maintained atomically.  Preprocessing first partitions the batch per
source into a data-update subgroup and a schema-change subgroup, then

* **combines** the schema changes of each source — ``rename A to B``
  then ``rename B to C`` collapses to ``rename A to C``; a rename
  followed by a drop collapses to a drop of the original name — so the
  view definition is rewritten as few times as possible; and
* **homogenizes** the data updates — tuples committed under different
  schema versions are projected onto the attributes of the final
  (rewritten) schema so they can be merged into one delta per relation
  ("insert (3,4)", drop first attribute, "insert (5)" becomes
  "insert (4),(5)").

Combination falls back to the original sequence whenever a change type
it cannot compose symbolically (restructure/create) is present; applying
schema changes one by one is always correct, composition is the
optimization the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..relational.delta import Delta
from ..relational.schema import RelationSchema
from ..sources.messages import (
    AddAttribute,
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    SchemaChange,
    UpdateMessage,
)
from ..views.umq import MaintenanceUnit


@dataclass
class _RelationState:
    """Symbolic evolution of one relation during combination."""

    original_name: str
    current_name: str
    #: original attribute name -> current name (dropped ones removed)
    attr_names: dict[str, str]
    dropped: bool = False
    dropped_message: DropRelation | None = None
    new_attributes: list[AddAttribute] = field(default_factory=list)


def combine_schema_changes(
    changes: list[tuple[str, SchemaChange]],
) -> list[tuple[str, SchemaChange]]:
    """Combine a per-commit-order list of ``(source, change)`` pairs.

    Returns an equivalent, usually shorter list expressed against the
    *original* names (the names the current view definition knows), so
    it can be applied to the definition front to back.
    """
    if any(
        isinstance(change, (RestructureRelations, CreateRelation))
        for _source, change in changes
    ):
        return list(changes)  # conservative fallback: apply sequentially

    # Simulate the schema evolution per (source, relation).
    states: list[tuple[str, _RelationState]] = []

    def state_for(source: str, name: str) -> _RelationState:
        for owner, state in states:
            if (
                owner == source
                and state.current_name == name
                and not state.dropped
            ):
                return state
        state = _RelationState(name, name, {})
        states.append((source, state))
        return state

    def attr_key(state: _RelationState, current: str) -> str | None:
        for original, now in state.attr_names.items():
            if now == current:
                return original
        return None

    for source, change in changes:
        if isinstance(change, RenameRelation):
            state = state_for(source, change.old)
            state.current_name = change.new
        elif isinstance(change, RenameAttribute):
            state = state_for(source, change.relation)
            # Renaming an attribute ADDED earlier in the batch folds
            # into the addition itself (the attribute has no original
            # name to rename against).
            for index, added in enumerate(state.new_attributes):
                if added.attribute.name == change.old:
                    state.new_attributes[index] = AddAttribute(
                        added.relation,
                        added.attribute.renamed(change.new),
                        added.default,
                    )
                    break
            else:
                original = attr_key(state, change.old) or change.old
                state.attr_names[original] = change.new
        elif isinstance(change, DropAttribute):
            state = state_for(source, change.relation)
            # Dropping an attribute ADDED earlier in the batch cancels
            # the addition entirely.
            for index, added in enumerate(state.new_attributes):
                if added.attribute.name == change.attribute:
                    del state.new_attributes[index]
                    break
            else:
                original = (
                    attr_key(state, change.attribute) or change.attribute
                )
                state.attr_names[original] = ""  # tombstone
        elif isinstance(change, AddAttribute):
            state = state_for(source, change.relation)
            state.new_attributes.append(change)
        elif isinstance(change, DropRelation):
            state = state_for(source, change.relation)
            state.dropped = True
            state.dropped_message = change
        else:  # pragma: no cover - excluded by the fallback above
            raise AssertionError(f"uncombinable change {change!r}")

    # Emit the minimal equivalent sequence per relation.  Ordering is
    # chosen so the emitted sequence is applicable step by step:
    #
    # 1. drops whose name is some rename's *target* (the target slot
    #    must be vacated before the rename lands);
    # 2. renames;
    # 3. additions (before the remaining drops, so a relation whose
    #    original attributes all go away is never transiently empty);
    # 4. the remaining drops;
    # 5. the relation-level rename last.
    #
    # Rename *swaps* (a→b together with b→a) cannot be expressed without
    # temporaries; when one is detected the whole batch falls back to
    # the original (always-applicable) sequence.
    combined: list[tuple[str, SchemaChange]] = []
    for source, state in states:
        if state.dropped:
            message = state.dropped_message
            assert message is not None
            combined.append(
                (source, DropRelation(state.original_name,
                                      message.dropped_extent))
            )
            continue
        renames = {
            original: now
            for original, now in state.attr_names.items()
            if now != "" and now != original
        }
        drops = [
            original
            for original, now in state.attr_names.items()
            if now == ""
        ]
        sources_of_renames = set(renames)
        if any(target in sources_of_renames for target in renames.values()):
            return list(changes)  # swap detected: emit uncombined

        rename_targets = set(renames.values())
        early_drops = [name for name in drops if name in rename_targets]
        late_drops = [name for name in drops if name not in rename_targets]

        for name in early_drops:
            combined.append(
                (source, DropAttribute(state.original_name, name))
            )
        for original, now in renames.items():
            combined.append(
                (
                    source,
                    RenameAttribute(state.original_name, original, now),
                )
            )
        for added in state.new_attributes:
            combined.append(
                (
                    source,
                    AddAttribute(
                        state.original_name, added.attribute, added.default
                    ),
                )
            )
        for name in late_drops:
            combined.append(
                (source, DropAttribute(state.original_name, name))
            )
        if state.current_name != state.original_name:
            combined.append(
                (
                    source,
                    RenameRelation(state.original_name, state.current_name),
                )
            )
    return combined


def schema_changes_of(unit: MaintenanceUnit) -> list[tuple[str, SchemaChange]]:
    """The batch's schema changes in commit order, with their sources."""
    return [
        (message.source, message.payload)
        for message in unit.messages
        if isinstance(message.payload, SchemaChange)
    ]


def data_updates_of(unit: MaintenanceUnit) -> list[UpdateMessage]:
    return [
        message for message in unit.messages if message.is_data_update
    ]


def homogenize_data_updates(
    updates: list[UpdateMessage],
    final_schemas: dict[tuple[str, str], RelationSchema],
    name_map: dict[tuple[str, str], str],
) -> dict[tuple[str, str], Delta]:
    """Merge per-relation data updates across schema versions.

    ``final_schemas`` maps ``(source, final_relation_name)`` to the
    relation's final schema; ``name_map`` maps ``(source,
    commit_time_name)`` to the final name.  Each delta row is projected
    by *attribute name* onto the final schema (missing attributes become
    NULL, dropped ones disappear), then merged into one delta per final
    relation — the "homogeneous update tuples that can be merged" of
    Section 5.
    """
    merged: dict[tuple[str, str], Delta] = {}
    for message in updates:
        payload = message.payload
        assert isinstance(payload, DataUpdate)
        final_name = name_map.get(
            (message.source, payload.relation), payload.relation
        )
        key = (message.source, final_name)
        final_schema = final_schemas.get(key)
        if final_schema is None:
            continue  # relation dropped without replacement
        target = merged.setdefault(key, Delta(final_schema))
        source_names = payload.delta.schema.attribute_names
        positions: list[int | None] = []
        for attribute in final_schema.attribute_names:
            positions.append(
                source_names.index(attribute)
                if attribute in source_names
                else None
            )
        for row, count in payload.delta.items():
            projected = tuple(
                row[position] if position is not None else None
                for position in positions
            )
            target.add(projected, count)
    return merged
