"""View adaptation (VA): making the extent match a rewritten definition.

Section 5 of the paper represents the adapted view as
``V' = (R1+ΔR1) ⋈ ... ⋈ (Rn+ΔRn)`` and computes the extent delta with
the telescoping sum of Equation 6:

    ΔV =  ΔR1 ⋈ R2   ⋈ ... ⋈ Rn
        + R1' ⋈ ΔR2  ⋈ ... ⋈ Rn
        + ...
        + R1' ⋈ R2'  ⋈ ... ⋈ ΔRn

(primes are post-change states).  :func:`telescoping_delta` implements
that formula exactly over locally bound tables, and the test suite
proves it equal to the recompute diff for arbitrary inputs.

The *effectful* adaptation process (:func:`adapt_view`) obtains each
relation's post-change target state with one compensated scan per alias
and recomputes the extent — the same source reads Equation 6 needs
(every relation exactly once), assembled in the closed form.  For a
batch of *k* combined schema changes it performs *k* scan rounds (one
per change, mirroring DyDa's per-change adaptation queries inside the
atomic batch); only the final round's extent is installed.
"""

from __future__ import annotations

from ..relational.delta import Delta
from ..relational.executor import execute
from ..relational.query import SPJQuery
from ..relational.table import Table
from ..sim.costs import CostModel
from ..sim.effects import Delay, SourceQuery
from ..sim.engine import MaintenanceProcess, QueryAnswer
from ..views.definition import ViewDefinition
from ..views.umq import MaintenanceUnit, UpdateMessageQueue
from .compensation import (
    CompensationLog,
    compensate_answer,
    pending_data_updates,
)
from .decompose import scan_query


def telescoping_delta(
    query: SPJQuery,
    old_tables: dict[str, Table],
    new_tables: dict[str, Table],
) -> Delta | None:
    """Equation 6: the signed view delta from old to new source states.

    ``old_tables`` and ``new_tables`` bind every alias of ``query``.
    Returns ``None`` when no relation changed.
    """
    total: Delta | None = None
    aliases = list(query.aliases)
    for index, alias in enumerate(aliases):
        delta_i = new_tables[alias].as_delta()
        delta_i.merge(old_tables[alias].as_delta().negated())
        if delta_i.is_empty():
            continue
        bindings: dict[str, Table] = {}
        for j, other in enumerate(aliases):
            if j < index:
                bindings[other] = new_tables[other]
            elif j > index:
                bindings[other] = old_tables[other]
        positive = Table(delta_i.schema)
        negative = Table(delta_i.schema)
        for row, count in delta_i.items():
            if count > 0:
                positive.insert(row, count)
            else:
                negative.insert(row, -count)
        plus = execute(query, {**bindings, alias: positive})
        minus = execute(query, {**bindings, alias: negative})
        contribution = plus.as_delta()
        contribution.merge(minus.as_delta().negated())
        if total is None:
            total = contribution
        else:
            total.merge(contribution)
    return total


def adapt_view(
    view: ViewDefinition,
    unit: MaintenanceUnit,
    umq: UpdateMessageQueue,
    cost: CostModel,
    rounds: int = 1,
    log: CompensationLog | None = None,
) -> MaintenanceProcess:
    """Adaptation process: returns the rebuilt extent for ``view``.

    ``rounds`` scan passes are performed (one per combined schema change
    in the unit); each pass reads every relation of the rewritten
    definition, so a schema change committing concurrently breaks the
    pass and aborts the maintenance — in-exec detection at work.
    """
    query = view.query
    extent: Table | None = None
    for round_index in range(max(1, rounds)):
        fetched: dict[str, Table] = {}
        for alias in query.aliases:
            ref = query.relation_ref(alias)
            source_query = scan_query(query, alias)
            answer = yield SourceQuery(ref.source, source_query)
            assert isinstance(answer, QueryAnswer)
            leaked = pending_data_updates(
                umq.messages_behind(unit),
                ref.source,
                ref.relation,
                answer.answered_at,
            )
            fetched[alias] = compensate_answer(
                answer.table, source_query, alias, leaked, log
            )
        extent = execute(query, fetched)
        yield Delay(
            cost.va_base + cost.va_per_tuple * len(extent),
            "va_install",
        )
    assert extent is not None
    return extent
