"""View synchronization (VS): rewriting the view under schema changes.

After a source schema change, the old view definition is no longer well
defined.  VS produces a new (possibly non-equivalent, footnote 1 of the
paper) definition, in the spirit of the EVE system [9]:

* renames propagate through the query;
* a dropped attribute is replaced from the meta-knowledge base when a
  stand-in exists (the ``ReaderDigest.Comments AS Review`` rewriting of
  Query (4)), otherwise pruned from the view;
* a dropped relation is replaced by an MKB-declared alternative — the
  multi-relation form folds several aliases into one, reproducing the
  ``Store ⋈ Item → StoreItems`` rewriting of Query (3) — otherwise the
  relation is evolved out of the view.

The synchronizer is pure: it maps (definition, schema change) to a new
definition plus a :class:`RewriteReport`; all timing is charged by the
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..relational.errors import ReproError
from ..relational.predicate import AttrRef, conjunction
from ..relational.query import JoinCondition, RelationRef, SPJQuery
from ..sources.messages import (
    AddAttribute,
    CreateRelation,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    SchemaChange,
    UpdateMessage,
)
from ..sources.mkb import MetaKnowledgeBase, RelationReplacement
from ..views.definition import ViewDefinition
from .decompose import selection_conjuncts


class ViewSynchronizationError(ReproError):
    """The view could not be rewritten over the changed schema."""


@dataclass
class RewriteReport:
    """What one synchronization step did (diagnostics and tests)."""

    changed: bool = False
    replaced_relations: list[str] = field(default_factory=list)
    pruned_attributes: list[str] = field(default_factory=list)
    added_relations: list[str] = field(default_factory=list)
    removed_relations: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)


@dataclass
class SynchronizationResult:
    definition: ViewDefinition
    report: RewriteReport


class ViewSynchronizer:
    """Rewrites view definitions after schema changes."""

    def __init__(
        self,
        mkb: MetaKnowledgeBase | None = None,
        schema_lookup=None,
        extend_on_add: bool = False,
    ) -> None:
        """``schema_lookup(source, relation) -> RelationSchema | None``
        optionally validates replacement attributes against live schemas;
        when absent the MKB mapping is trusted.

        ``extend_on_add`` opts into the EVE-style view-extension policy:
        an ``AddAttribute`` on a relation in the view appends the new
        attribute to the view projection (by default additions are
        ignored, preserving the original projection).
        """
        self.mkb = mkb or MetaKnowledgeBase()
        self.schema_lookup = schema_lookup
        self.extend_on_add = extend_on_add

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def synchronize(
        self, view: ViewDefinition, message: UpdateMessage
    ) -> SynchronizationResult:
        payload = message.payload
        if not isinstance(payload, SchemaChange):
            raise ViewSynchronizationError(
                f"not a schema change: {payload.describe()}"
            )
        return self.synchronize_change(view, message.source, payload)

    def synchronize_change(
        self, view: ViewDefinition, source: str, change: SchemaChange
    ) -> SynchronizationResult:
        """Rewrite ``view`` for one (possibly combined) schema change."""
        report = RewriteReport()
        query = self._rewrite(view.query, source, change, report)
        if query is view.query:
            return SynchronizationResult(view, report)
        report.changed = True
        return SynchronizationResult(view.rewritten(query), report)

    # ------------------------------------------------------------------
    # per-change rewrites
    # ------------------------------------------------------------------

    def _rewrite(
        self,
        query: SPJQuery,
        source: str,
        change: SchemaChange,
        report: RewriteReport,
    ) -> SPJQuery:
        if isinstance(change, RenameRelation):
            if not query.references_relation(source, change.old):
                return query
            return query.with_relation_renamed(source, change.old, change.new)

        if isinstance(change, RenameAttribute):
            if not query.references_attribute(
                source, change.relation, change.old
            ):
                return query
            for ref in query.relations:
                if ref.source == source and ref.relation == change.relation:
                    query = query.with_attribute_renamed(
                        ref.alias, change.old, change.new
                    )
            return query

        if isinstance(change, AddAttribute):
            if not self.extend_on_add:
                return query  # additions never invalidate the view
            return self._extend_with_attribute(query, source, change, report)

        if isinstance(change, CreateRelation):
            return query  # new relations never invalidate the view

        if isinstance(change, DropAttribute):
            if not query.references_attribute(
                source, change.relation, change.attribute
            ):
                return query
            return self._drop_attribute(
                query, source, change.relation, change.attribute, report
            )

        if isinstance(change, DropRelation):
            if not query.references_relation(source, change.relation):
                return query
            rule = self.mkb.relation_replacement(source, change.relation)
            if rule is None:
                return self._remove_relation(
                    query, source, change.relation, report
                )
            return self._apply_relation_replacement(query, source, rule, report)

        if isinstance(change, RestructureRelations):
            referenced = [
                relation
                for relation in change.dropped
                if query.references_relation(source, relation)
            ]
            if not referenced:
                return query
            rule = self.mkb.relation_replacement(source, change.dropped[0])
            if rule is None:
                rule = self._auto_rule(source, change)
                report.notes.append(
                    f"auto-derived replacement rule onto "
                    f"{change.new_schema.name}"
                )
            return self._apply_relation_replacement(query, source, rule, report)

        raise ViewSynchronizationError(
            f"unsupported schema change {change.describe()}"
        )

    def _extend_with_attribute(
        self,
        query: SPJQuery,
        source: str,
        change: AddAttribute,
        report: RewriteReport,
    ) -> SPJQuery:
        """View-extension policy: surface newly added attributes."""
        from dataclasses import replace as _replace

        extended = query
        for ref in query.relations:
            if ref.source != source or ref.relation != change.relation:
                continue
            new_ref = AttrRef(ref.alias, change.attribute.name)
            if new_ref in extended.projection:
                continue
            extended = _replace(
                extended, projection=extended.projection + (new_ref,)
            )
            report.notes.append(
                f"extended projection with {new_ref.qualified()}"
            )
        return extended

    # ------------------------------------------------------------------
    # drop attribute
    # ------------------------------------------------------------------

    def _drop_attribute(
        self,
        query: SPJQuery,
        source: str,
        relation: str,
        attribute: str,
        report: RewriteReport,
    ) -> SPJQuery:
        aliases = [
            ref.alias
            for ref in query.relations
            if ref.source == source and ref.relation == relation
        ]
        for alias in aliases:
            target = AttrRef(alias, attribute)
            rule = self.mkb.attribute_replacement(source, relation, attribute)
            if rule is not None:
                rewritten = self._apply_attribute_replacement(
                    query, target, rule, report
                )
                if rewritten is not None:
                    query = rewritten
                    continue
            query = self._prune_attribute(query, target, report)
        return query

    def _apply_attribute_replacement(
        self, query: SPJQuery, target: AttrRef, rule, report: RewriteReport
    ) -> SPJQuery | None:
        # The stand-in relation joins the view on rule.join_on =
        # (surviving_relation, surviving_attribute).
        anchor_alias = None
        for ref in query.relations:
            if ref.relation == rule.join_on[0]:
                anchor_alias = ref.alias
                break
        if anchor_alias is None:
            report.notes.append(
                f"attribute replacement for {target.qualified()} "
                f"needs relation {rule.join_on[0]!r} which is not in the view"
            )
            return None
        new_alias = self._fresh_alias(query, rule.new_relation)
        new_ref = RelationRef(rule.new_source, rule.new_relation, new_alias)
        substitution = {target: AttrRef(new_alias, rule.new_attribute)}
        # Substitute components individually: the new alias must be in
        # the relation list before SPJQuery validates references.
        relations = query.relations + (new_ref,)
        projection = tuple(
            substitution.get(ref, ref) for ref in query.projection
        )
        joins = tuple(
            join.substituted(substitution) for join in query.joins
        ) + (
            JoinCondition(
                AttrRef(anchor_alias, rule.join_on[1]),
                AttrRef(new_alias, rule.join_attribute),
            ),
        )
        selection = query.selection.substituted(substitution)
        report.added_relations.append(rule.new_relation)
        report.notes.append(
            f"{target.qualified()} replaced by "
            f"{new_alias}.{rule.new_attribute}"
        )
        return SPJQuery(relations, projection, joins, selection)

    def _prune_attribute(
        self, query: SPJQuery, target: AttrRef, report: RewriteReport
    ) -> SPJQuery:
        in_joins = any(target in join.references() for join in query.joins)
        if in_joins:
            # A broken join with no stand-in: evolve the relation out of
            # the view entirely rather than degrade to a cross product.
            report.notes.append(
                f"join attribute {target.qualified()} dropped without "
                f"replacement; removing relation {target.relation!r}"
            )
            return self._remove_alias(query, target.relation, report)
        projection = tuple(
            ref for ref in query.projection if ref != target
        )
        if not projection:
            raise ViewSynchronizationError(
                f"dropping {target.qualified()} would empty the view"
            )
        selection = conjunction(
            [
                term
                for term in selection_conjuncts(query)
                if target not in term.references()
            ]
        )
        report.pruned_attributes.append(target.qualified())
        return SPJQuery(query.relations, projection, query.joins, selection)

    # ------------------------------------------------------------------
    # drop / replace relations
    # ------------------------------------------------------------------

    def _remove_relation(
        self, query: SPJQuery, source: str, relation: str, report: RewriteReport
    ) -> SPJQuery:
        for ref in list(query.relations):
            if ref.source == source and ref.relation == relation:
                query = self._remove_alias(query, ref.alias, report)
        return query

    def _remove_alias(
        self, query: SPJQuery, alias: str | None, report: RewriteReport
    ) -> SPJQuery:
        if alias is None:
            raise ViewSynchronizationError("cannot remove unqualified alias")
        try:
            pruned = query.without_relation(alias)
        except Exception as exc:
            raise ViewSynchronizationError(
                f"cannot evolve relation {alias!r} out of the view: {exc}"
            ) from exc
        report.removed_relations.append(alias)
        return pruned

    def _apply_relation_replacement(
        self,
        query: SPJQuery,
        source: str,
        rule: RelationReplacement,
        report: RewriteReport,
    ) -> SPJQuery:
        covered_refs = [
            ref
            for ref in query.relations
            if ref.source == source and ref.relation in rule.covers
        ]
        if not covered_refs:
            return query
        keep_alias = covered_refs[0].alias
        covered_aliases = {ref.alias: ref.relation for ref in covered_refs}

        new_schema = None
        if self.schema_lookup is not None:
            new_schema = self.schema_lookup(rule.new_source, rule.new_relation)

        # Build the attribute substitution for every reference on a
        # covered alias; unmappable references are pruned.
        substitution: dict[AttrRef, AttrRef] = {}
        unmappable: list[AttrRef] = []
        for ref in query.all_attribute_refs():
            if ref.relation not in covered_aliases:
                continue
            old_relation = covered_aliases[ref.relation]
            mapped = rule.maps_attribute(old_relation, ref.name)
            if mapped is None:
                mapped = ref.name  # assume the name survives
            if new_schema is not None and mapped not in new_schema:
                unmappable.append(ref)
                continue
            substitution[ref] = AttrRef(keep_alias, mapped)

        # Prune unmappable projection refs and selection conjuncts.
        projection = tuple(
            ref for ref in query.projection if ref not in unmappable
        )
        if not projection:
            raise ViewSynchronizationError(
                "relation replacement would empty the view projection"
            )
        selection_terms = [
            term
            for term in selection_conjuncts(query)
            if not (set(term.references()) & set(unmappable))
        ]

        # Drop joins internal to the covered set; keep external joins
        # unless they use an unmappable attribute.
        joins: list[JoinCondition] = []
        for join in query.joins:
            sides_covered = [
                join.left.relation in covered_aliases,
                join.right.relation in covered_aliases,
            ]
            if all(sides_covered):
                continue  # internal: the replacement already embodies it
            if set(join.references()) & set(unmappable):
                raise ViewSynchronizationError(
                    f"replacement breaks external join {join.sql()}"
                )
            joins.append(join)

        relations: list[RelationRef] = []
        inserted = False
        for ref in query.relations:
            if ref.alias in covered_aliases:
                if not inserted:
                    relations.append(
                        RelationRef(
                            rule.new_source, rule.new_relation, keep_alias
                        )
                    )
                    inserted = True
                continue
            relations.append(ref)

        # Substitute before constructing: the covered aliases no longer
        # exist, and SPJQuery validates alias references on construction.
        rewritten = SPJQuery(
            tuple(relations),
            tuple(substitution.get(ref, ref) for ref in projection),
            tuple(join.substituted(substitution) for join in joins),
            conjunction(
                [term.substituted(substitution) for term in selection_terms]
            ),
        )
        for ref in unmappable:
            report.pruned_attributes.append(ref.qualified())
        report.replaced_relations.extend(sorted(covered_aliases.values()))
        report.notes.append(
            f"{', '.join(sorted(set(covered_aliases.values())))} replaced "
            f"by {rule.new_relation}"
        )
        return rewritten

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _auto_rule(
        self, source: str, change: RestructureRelations
    ) -> RelationReplacement:
        """Derive a same-name replacement rule for a restructuring."""
        attr_map: dict[tuple[str, str], str] = {}
        for relation, extent in change.dropped_extents.items():
            for attribute in extent.schema.attribute_names:
                if attribute in change.new_schema:
                    attr_map[(relation, attribute)] = attribute
        return RelationReplacement(
            source=source,
            covers=tuple(change.dropped),
            new_source=source,
            new_relation=change.new_schema.name,
            attr_map=attr_map,
        )

    @staticmethod
    def _fresh_alias(query: SPJQuery, base: str) -> str:
        candidate = base[0].upper()
        existing = set(query.aliases)
        if candidate not in existing:
            return candidate
        counter = 2
        while f"{candidate}{counter}" in existing:
            counter += 1
        return f"{candidate}{counter}"
