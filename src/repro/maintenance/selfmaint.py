"""Self-maintaining views: auxiliary data answering maintenance locally.

The snapshot cache (:mod:`repro.cache.snapshot`) memoizes *answers* —
it only helps when an identical probe recurs.  The auxiliary store kept
here goes one step further along the self-maintenance trajectory
(Quass et al.; arXiv 1406.7685): for every relation a registered view
joins, the warehouse keeps a **projected replica** — the relation
restricted to the columns the view's maintenance probes can ever
reference (:func:`~repro.maintenance.decompose.needed_columns`, unioned
across views).  The replica is brought forward *locally* through the
source's committed log, so any single-relation maintenance query whose
referenced attributes are covered is evaluated in the warehouse with
**zero source round trips** — first-time probes included, which is what
the cache can never do.

Exactness rests on two linearity facts the executor guarantees:

* projection commutes with selection/projection — evaluating a probe
  over the replica (whose columns cover every attribute the probe
  references) yields a bag byte-identical to evaluating it over the
  full relation;
* projection is linear in the delta — projecting each committed gap
  delta onto the stored columns and sign-merging it into the replica
  reproduces the projection of the new relation state exactly.

Broken-query semantics (Theorem 1) mirror the cache rule: any schema
change in the version gap invalidates the entry (drop/rename could have
broken a real query shipped now; serving locally would mask in-exec
detection).  The entry is rebuilt for free the next time a full scan of
the relation travels on the wire — view adaptation's scans are exactly
such queries — or re-seeded from the catalog when a view (re)registers.

Interaction with the rest of the stack:

* the engine consults the store *before* the snapshot cache, which
  stays as the second line of defence for non-covered queries;
* parallel workers serve aux hits channel-free (no admission, no slot),
  exactly like cache hits, with the same dispatch-order install and
  taint-restart discipline;
* a fully self-maintainable coalesced batch pays zero trips — the
  grouping layer needs no changes, its per-relation probes simply all
  hit the store;
* recovery checkpoints the replicas with their version stamps and
  restores them under the same contiguous-watermark rule as cache
  entries; a crash clears the volatile store.
"""

from __future__ import annotations

import operator
from collections import Counter
from dataclasses import dataclass

from ..relational.delta import Delta
from ..relational.errors import RelationalError
from ..relational.executor import execute
from ..relational.predicate import TruePredicate
from ..relational.query import SPJQuery
from ..relational.schema import RelationSchema
from ..relational.table import Table
from ..sim.metrics import Metrics
from ..sources.source import DataSource
from .decompose import needed_columns


@dataclass(frozen=True)
class AuxHit:
    """One locally answered query plus the sync work it took."""

    table: Table
    #: signed tuples folded into the replica while syncing it through
    #: the source-log gap; the caller charges ``aux_update_per_row`` each
    applied_rows: int


@dataclass
class _Replica:
    """One per-(source, relation) projected replica."""

    version: int
    #: stored column names (a cover of every registered requirement)
    columns: tuple[str, ...]
    table: Table


class SelfMaintenanceStore:
    """Projected per-relation replicas, synced from the committed log.

    Keys are ``(source name, relation name)`` — relation-versioned, not
    query-versioned: one replica answers *every* covered probe over the
    relation, which is what makes first-time probes free.
    """

    def __init__(self, metrics: Metrics | None = None) -> None:
        self.metrics = metrics
        #: (source, relation) -> union of column names any registered
        #: view's maintenance can reference on that relation
        self._required: dict[tuple[str, str], set[str]] = {}
        self._replicas: dict[tuple[str, str], _Replica] = {}

    def __len__(self) -> int:
        return len(self._replicas)

    def _count(self, counter: str, amount: int = 1) -> None:
        if self.metrics is not None:
            setattr(
                self.metrics, counter, getattr(self.metrics, counter) + amount
            )

    # ------------------------------------------------------------------
    # registration / seeding
    # ------------------------------------------------------------------

    def register_view(self, query: SPJQuery) -> None:
        """Record the columns ``query``'s maintenance may reference.

        Safe to call repeatedly (view rewrites re-register their new
        definition); a registration that widens an existing requirement
        drops the now-too-narrow replica, to be re-seeded or rebuilt
        from the next travelling full scan.
        """
        for ref in query.relations:
            key = (ref.source, ref.relation)
            columns = set(needed_columns(query, ref.alias))
            required = self._required.setdefault(key, set())
            required |= columns
            replica = self._replicas.get(key)
            if replica is not None and not required.issubset(
                replica.columns
            ):
                del self._replicas[key]

    def seed_from_source(self, source: DataSource) -> int:
        """Build replicas from the source's live catalog (free, like the
        initial view load — no maintenance query ships).  Returns how
        many replicas were (re)built."""
        built = 0
        version = source.commit_version
        for (source_name, relation), required in self._required.items():
            if source_name != source.name or not source.has_relation(
                relation
            ):
                continue
            schema = source.schema_of(relation)
            if not required.issubset(schema.attribute_names):
                continue
            columns = tuple(
                name for name in schema.attribute_names if name in required
            )
            table = _project_table(
                source.catalog.table(relation), schema, columns, relation
            )
            self._replicas[(source_name, relation)] = _Replica(
                version, columns, table
            )
            built += 1
        return built

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def covers(self, query: SPJQuery) -> bool:
        """Is ``query`` answerable locally right now (modulo the gap)?"""
        return self._lookup(query) is not None

    def _lookup(self, query: SPJQuery) -> _Replica | None:
        if len(query.relations) != 1 or query.joins:
            return None
        ref = query.relations[0]
        replica = self._replicas.get((ref.source, ref.relation))
        if replica is None:
            return None
        referenced = {
            attr.name
            for attr in query.all_attribute_refs()
            if attr.relation == ref.alias
        }
        if not referenced.issubset(replica.columns):
            return None
        return replica

    def serve(self, source: DataSource, query: SPJQuery) -> AuxHit | None:
        """Answer ``query`` from the replica, syncing it forward first.

        Returns ``None`` when coverage fails or a schema change
        committed since the stamp (the replica is dropped — Theorem 1's
        rule, identical to the snapshot cache).  A returned hit reflects
        every update committed up to *now*, byte-identical to a
        zero-latency round trip.
        """
        replica = self._lookup(query)
        if replica is None:
            self._count("aux_misses")
            return None
        ref = query.relations[0]
        key = (ref.source, ref.relation)
        gap = source.updates_since(replica.version)
        if any(message.is_schema_change for message in gap):
            del self._replicas[key]
            self._count("aux_invalidations_sc")
            self._count("aux_misses")
            return None
        applied = 0
        if gap:
            projected = Delta(replica.table.schema)
            try:
                for message in gap:
                    if not message.is_data_update:
                        continue
                    payload = message.payload
                    if payload.relation != ref.relation:
                        continue
                    _project_delta(
                        payload.delta, replica.columns, projected
                    )
                applied = sum(
                    abs(count) for _row, count in projected.items()
                )
                if applied:
                    replica.table.apply_delta(projected)
            except RelationalError:
                # Schema drift the gap scan did not explain: drop the
                # replica, go remote (the cache or the wire answers).
                del self._replicas[key]
                self._count("aux_misses")
                return None
            replica.version = source.commit_version
        answer = execute(query, {ref.alias: replica.table})
        self._count("aux_hits")
        self._count("saved_round_trips")
        self._count("aux_applied_rows", applied)
        return AuxHit(answer, applied)

    # ------------------------------------------------------------------
    # observation (free rebuild from travelling full scans)
    # ------------------------------------------------------------------

    def observe(
        self, source: DataSource, query: SPJQuery, answer: Table
    ) -> bool:
        """Re-seed a replica from a full scan that travelled anyway.

        View adaptation ships full-relation scans (never cacheable);
        their answers are exactly a projected replica at the evaluation
        instant, so an invalidated entry rebuilds itself for free on the
        first post-SC adaptation round.  Only selection-free
        single-relation scans covering the registered requirement are
        observed — a filtered or partial answer must never masquerade as
        the whole relation.
        """
        if (
            len(query.relations) != 1
            or query.joins
            or not isinstance(query.selection, TruePredicate)
        ):
            return False
        ref = query.relations[0]
        key = (ref.source, ref.relation)
        required = self._required.get(key)
        if required is None:
            return False
        columns = tuple(answer.schema.attribute_names)
        if not required.issubset(columns):
            return False
        self._replicas[key] = _Replica(
            source.commit_version, columns, answer.copy()
        )
        return True

    # ------------------------------------------------------------------
    # maintenance / checkpoint plumbing
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every replica (the store is volatile across crashes);
        registrations survive — they describe the views, not the data."""
        self._replicas.clear()

    def export_entries(self) -> list[tuple[str, str, int, list, Table]]:
        """Snapshot replicas for a warehouse checkpoint:
        ``(source, relation, version, columns, table)`` rows."""
        return [
            (
                source,
                relation,
                replica.version,
                list(replica.columns),
                replica.table.copy(),
            )
            for (source, relation), replica in self._replicas.items()
        ]

    def restore_entries(
        self, entries: list[tuple[str, str, int, list, Table]]
    ) -> int:
        """Re-seed replicas from checkpointed entries (post-recovery).

        The caller filters by the committed-update watermark; entries
        narrower than the (re-registered) requirement are skipped — they
        would fail coverage on every serve anyway.
        """
        restored = 0
        for source, relation, version, columns, table in entries:
            required = self._required.get((source, relation), set())
            if not required.issubset(columns):
                continue
            self._replicas[(source, relation)] = _Replica(
                version, tuple(columns), table.copy()
            )
            restored += 1
        return restored


def _projector(indexes: list[int]):
    """Row projector over column positions at C speed.

    ``operator.itemgetter`` with a single position returns a scalar,
    and with none it cannot be built at all — both cases must still
    yield tuples to stay rows.
    """
    if not indexes:
        return lambda row: ()
    if len(indexes) == 1:
        index = indexes[0]
        return lambda row: (row[index],)
    return operator.itemgetter(*indexes)


def _project_table(
    table: Table,
    schema: RelationSchema,
    columns: tuple[str, ...],
    relation: str,
) -> Table:
    """Project ``table`` onto ``columns`` (bag semantics preserved)."""
    project = _projector([schema.index_of(name) for name in columns])
    projected_schema = RelationSchema(
        relation, tuple(schema.attribute(name) for name in columns)
    )
    counts: Counter = Counter()
    get = counts.get
    for row, count in table.items():
        key = project(row)
        counts[key] = get(key, 0) + count
    # Values came out of a validated table; adopt the bag wholesale.
    return Table.from_counts(projected_schema, counts)


def _project_delta(
    delta: Delta, columns: tuple[str, ...], into: Delta
) -> None:
    """Sign-merge ``delta`` projected onto ``columns`` into ``into``."""
    schema = delta.schema
    project = _projector([schema.index_of(name) for name in columns])
    for row, count in delta.items():
        into.add(project(row), count)
