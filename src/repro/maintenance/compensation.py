"""SWEEP-style local compensation for concurrent data updates.

A maintenance query answered at virtual time *t* reflects every update
the source committed up to *t* — including data updates that are still
queued *behind* the update currently being maintained.  Left alone,
those leaked effects produce the duplication anomaly (Example 1.a).

Compensation removes them **locally**, without issuing further queries
(Agrawal et al. [1]): the view manager already holds the concurrent
deltas in its UMQ, so it evaluates the same probe query against each
pending delta and subtracts the effect from the answer.

All maintenance probes in this library are single-relation queries,
which makes local compensation *exact*: the effect of a pending delta on
a probe answer is simply the probe query evaluated over the delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..relational.delta import Delta
from ..relational.errors import RelationalError
from ..relational.executor import execute
from ..relational.query import SPJQuery
from ..relational.table import Table
from ..sources.messages import DataUpdate, UpdateMessage


class OverCompensationError(RelationalError):
    """A corrected probe answer went negative.

    Compensation subtracted an effect that was not in the answer —
    possible only when maintenance ordering is broken.  Under Dyno's
    corrected orders this is a real bug, so strict mode surfaces it
    instead of clamping; baseline strategies (which deliberately skip
    correction) keep the historical clamp-and-note behaviour.
    """


@dataclass
class CompensationLog:
    """Diagnostics: what compensation did during one maintenance run."""

    compensated_tuples: int = 0
    compensated_queries: int = 0
    skipped_incompatible: int = 0
    notes: list[str] = field(default_factory=list)
    #: raise :class:`OverCompensationError` on a negative corrected
    #: count instead of clamping (armed for Dyno-corrected strategies)
    strict: bool = False


def _effect_of_part(query: SPJQuery, alias: str, part: Delta) -> Table:
    table = Table(part.schema)
    for row, count in part.items():
        table.insert(row, count)
    return execute(query, {alias: table})


def effect_on_answer(query: SPJQuery, alias: str, delta: Delta) -> Delta:
    """Signed effect of ``delta`` on the answer of probe ``query``."""
    result_schema = None
    positive = delta.insertions
    negative = delta.deletions
    effect: Delta | None = None
    if len(positive):
        inserted = _effect_of_part(query, alias, positive)
        effect = inserted.as_delta()
        result_schema = inserted.schema
    if len(negative):
        deleted = _effect_of_part(query, alias, negative)
        if effect is None:
            effect = deleted.as_delta().negated()
            result_schema = deleted.schema
        else:
            effect.merge(deleted.as_delta().negated())
    if effect is None:
        # Empty delta: produce an empty effect with the right arity by
        # executing over an empty table.
        empty = _effect_of_part(query, alias, delta)
        effect = empty.as_delta()
    return effect


def pending_data_updates(
    messages_behind: list[UpdateMessage],
    source: str,
    relation: str,
    answered_at: float,
) -> list[UpdateMessage]:
    """Which queued updates leaked into an answer from ``source``.

    An update leaked iff it is a data update on the probed relation of
    the probed source and it committed no later than the answer was
    evaluated.  Updates committed *after* evaluation (e.g. during result
    transfer) did not affect the answer and must not be compensated.
    """
    leaked: list[UpdateMessage] = []
    for message in messages_behind:
        if not message.is_data_update:
            continue
        payload = message.payload
        assert isinstance(payload, DataUpdate)
        if (
            message.source == source
            and payload.relation == relation
            and message.committed_at <= answered_at + 1e-12
        ):
            leaked.append(message)
    return leaked


def compensate_answer(
    answer: Table,
    query: SPJQuery,
    alias: str,
    leaked: list[UpdateMessage],
    log: CompensationLog | None = None,
    extra_deltas: list[Delta] | None = None,
) -> Table:
    """Subtract the effect of leaked updates from a probe answer.

    ``extra_deltas`` lets the caller compensate effects that are not UMQ
    messages — the self-join case where the update's own delta must be
    removed from probes of later occurrences of the same relation.

    Returns a fresh table; the input answer is not modified.  If a
    leaked delta cannot be evaluated against the probe (schema drift),
    it is skipped and counted in the log — under Dyno's corrected
    orders this never happens (see tests), but baseline strategies that
    skip correction can hit it.
    """
    corrected = answer.as_delta()
    deltas: list[Delta] = [
        message.payload.delta  # type: ignore[union-attr]
        for message in leaked
    ]
    if extra_deltas:
        deltas.extend(extra_deltas)
    for delta in deltas:
        if delta.is_empty():
            continue
        try:
            effect = effect_on_answer(query, alias, delta)
        except RelationalError as exc:
            if log is not None:
                log.skipped_incompatible += 1
                log.notes.append(f"skipped incompatible delta: {exc}")
            continue
        if not effect.is_empty():
            corrected.merge(effect.negated())
            if log is not None:
                log.compensated_tuples += effect.net_size()
    if log is not None:
        log.compensated_queries += 1

    table = Table(answer.schema)
    for row, count in corrected.items():
        if count < 0:
            # A negative corrected count means we subtracted an effect
            # that was not actually in the answer — possible only when
            # maintenance ordering is broken (baseline strategies).
            if log is not None and log.strict:
                raise OverCompensationError(
                    f"over-compensation on {row!r} (count {count})"
                )
            if log is not None:
                log.notes.append(
                    f"over-compensation on {row!r} (count {count})"
                )
            continue
        table.insert(row, count)
    return table
