"""The materialized view extent.

The extent is a bag table maintained incrementally by deltas (``w(MV)``
followed by ``c(MV)`` in Definition 1).  Schema changes replace the
extent wholesale when view adaptation rebuilds it against a new view
definition.
"""

from __future__ import annotations

from ..relational.delta import Delta
from ..relational.schema import RelationSchema
from ..relational.table import Table


class MaterializedView:
    """A view extent plus refresh bookkeeping."""

    def __init__(self, name: str, schema: RelationSchema) -> None:
        self.name = name
        self.extent = Table(schema.renamed(name))
        self.refresh_count = 0
        #: version of the view definition the extent is consistent with
        self.definition_version = 1

    @property
    def schema(self) -> RelationSchema:
        return self.extent.schema

    def apply(self, delta: Delta) -> None:
        """Refresh: apply one signed delta and commit."""
        self.extent.apply_delta(delta)
        self.refresh_count += 1

    def replace_extent(self, table: Table, definition_version: int) -> None:
        """Adaptation installed a rebuilt extent for a new definition."""
        self.extent = table.copy(self.name)
        self.definition_version = definition_version
        self.refresh_count += 1

    def __len__(self) -> int:
        return len(self.extent)

    def __repr__(self) -> str:
        return (
            f"MaterializedView({self.name!r}, rows={len(self.extent)}, "
            f"refreshes={self.refresh_count}, v{self.definition_version})"
        )
