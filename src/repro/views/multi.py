"""Multiple materialized views over one update stream.

The paper closes by noting Dyno "is a general strategy ... and thus has
the potential to be plugged into any view system".  This module realizes
that claim: a :class:`MultiViewManager` maintains several materialized
views over the same autonomous sources, sharing **one** UMQ and one Dyno
scheduler.

Semantics:

* dependency detection considers the union of all views' maintenance
  footprints (a schema change conflicting with *any* view must be
  ordered first);
* one maintenance unit is maintained for every view **atomically**: all
  per-view outcomes are computed first (any broken query aborts the
  whole unit before anything is written), then installed together — the
  multi-view generalization of ``w(MV) c(MV)``.
"""

from __future__ import annotations

from ..relational.query import SPJQuery
from ..sim.costs import CostModel
from ..sim.engine import MaintenanceProcess, SimEngine
from ..sim.metrics import Metrics
from ..sources.messages import UpdateMessage
from ..sources.mkb import MetaKnowledgeBase
from ..sources.source import DataSource
from ..sources.wrapper import Wrapper
from .definition import ViewDefinition
from .manager import (
    MaintenanceOutcome,
    ViewManager,
    filtered_sink,
    install_messages,
)
from .umq import MaintenanceUnit, UpdateMessageQueue


class MultiViewManager:
    """Maintains a set of materialized views over shared sources.

    Exposes the same protocol :class:`~repro.core.scheduler
    .DynoScheduler` drives (``umq``, ``maintenance_queries``,
    ``speculative_queries``, ``build_maintenance``, ``cost``,
    ``metrics``), so the scheduler works unchanged.
    """

    def __init__(
        self,
        engine: SimEngine,
        views: list[ViewDefinition],
        mkb: MetaKnowledgeBase | None = None,
        initial_extents: "dict | None" = None,
        message_filter=None,
    ) -> None:
        """``initial_extents`` (view name -> Table) is the crash-recovery
        restore path; see :class:`~repro.views.manager.ViewManager`.

        ``message_filter`` gates wrapper delivery into the shared UMQ
        (see :class:`~repro.views.manager.ViewManager`); shard routers
        use it to keep out-of-footprint messages off this queue."""
        if not views:
            raise ValueError("MultiViewManager needs at least one view")
        names = [view.name for view in views]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate view names: {names}")
        self.engine = engine
        #: write-ahead maintenance journal (armed by a RecoveryHarness)
        self.journal = None
        self.umq = UpdateMessageQueue()
        self._sink = filtered_sink(self.umq, message_filter)
        self.wrappers: list[Wrapper] = [
            Wrapper(source, self._sink, engine=engine)
            for source in engine.sources.values()
        ]
        extents = initial_extents or {}
        self.managers: list[ViewManager] = [
            ViewManager(
                engine,
                view,
                mkb,
                umq=self.umq,
                attach_wrappers=False,
                initial_extent=extents.get(view.name),
            )
            for view in views
        ]
        for manager in self.managers:
            # Share the wrapper list (by reference — connect() extends
            # it) so each manager's compensation sees in-flight messages.
            manager.wrappers = self.wrappers

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @property
    def cost(self) -> CostModel:
        return self.engine.cost_model

    @property
    def metrics(self) -> Metrics:
        return self.engine.metrics

    @property
    def snapshot_cache(self):
        """The shared snapshot cache (one memo across all views): a
        probe answered for one view's maintenance serves the identical
        probe issued by every sibling view."""
        return self.engine.snapshot_cache

    def install_snapshot_cache(self):
        return self.engine.install_snapshot_cache()

    @property
    def selfmaint(self):
        """The shared auxiliary store: replicas cover the union of all
        views' requirements, so one store serves every sibling view."""
        return self.engine.selfmaint

    def install_self_maintenance(self):
        store = self.engine.install_self_maintenance()
        for manager in self.managers:
            store.register_view(manager.view.query)
        return store

    def manager_for(self, view_name: str) -> ViewManager:
        for manager in self.managers:
            if manager.view.name == view_name:
                return manager
        raise KeyError(view_name)

    def view(self, view_name: str) -> ViewDefinition:
        return self.manager_for(view_name).view

    def connect(self, source: DataSource) -> None:
        self.engine.add_source(source)
        self.wrappers.append(
            Wrapper(source, self._sink, engine=self.engine)
        )

    # ------------------------------------------------------------------
    # the scheduler protocol
    # ------------------------------------------------------------------

    @property
    def maintenance_queries(self) -> tuple[SPJQuery, ...]:
        return tuple(manager.view.query for manager in self.managers)

    @property
    def detection_epoch(self) -> tuple:
        """Version key for cached detection metadata (all views)."""
        return tuple(manager.view.version for manager in self.managers)

    def speculative_queries(
        self, message: UpdateMessage
    ) -> tuple[SPJQuery, ...]:
        queries: list[SPJQuery] = []
        for manager in self.managers:
            queries.extend(manager.speculative_queries(message))
        return tuple(queries)

    def build_maintenance(
        self, unit: MaintenanceUnit, pending_feed=None
    ) -> MaintenanceProcess:
        """Maintain one unit for every view, atomically.

        Compute-then-install: a broken query during any view's compute
        phase aborts the whole unit with no view touched; the update is
        counted as maintained exactly once.
        """
        outcomes = yield from self.compute_unit(unit, pending_feed)
        self.install_unit(outcomes, unit)
        return outcomes

    def compute_unit(
        self, unit: MaintenanceUnit, pending_feed=None
    ) -> MaintenanceProcess:
        """Compute (but do not install) one unit's effect on every view."""
        outcomes: list[MaintenanceOutcome] = []
        for manager in self.managers:
            outcome = yield from manager.compute_maintenance(
                unit, pending_feed
            )
            outcomes.append(outcome)
        return outcomes

    def install_unit(
        self, prepared: list[MaintenanceOutcome], unit: MaintenanceUnit
    ) -> None:
        """Install every view's prepared outcome atomically.

        With a journal armed, one write-ahead entry covers the whole
        unit across every view *before* any extent is touched: a crash
        between per-view applies is repaired by replay, which re-applies
        all recorded effects — restoring the atomicity a live run gets
        from compute-then-install."""
        self.engine.crash_point("install.pre_journal")
        if self.journal is not None:
            self.journal.record_install(unit, list(prepared))
            self.engine.crash_point("install.post_journal")
        for index, (manager, outcome) in enumerate(
            zip(self.managers, prepared)
        ):
            manager.apply_outcome(
                outcome, counted_updates=len(unit) if index == 0 else 0
            )
        self.engine.record_install(
            {
                manager.view.name: len(manager.mv.extent)
                for manager in self.managers
            },
            install_messages(unit),
        )
        self.engine.crash_point("install.post_apply")
