"""Consistency oracle.

The correctness criterion we test throughout (and the paper proves for
Dyno): after the system quiesces, the materialized view extent equals
the current view definition evaluated over the current source states —
convergence — and every dependency was honoured along the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..relational.table import Table
from .manager import ViewManager


@dataclass
class ConsistencyReport:
    """Outcome of one convergence check."""

    consistent: bool
    expected_rows: int
    actual_rows: int
    missing: list = field(default_factory=list)
    unexpected: list = field(default_factory=list)
    #: set when the view definition itself no longer evaluates over the
    #: live sources — the terminal failure mode of the naive baseline
    stale_definition: str | None = None

    def summary(self) -> str:
        if self.stale_definition is not None:
            return (
                "INCONSISTENT: the view definition is stale and cannot "
                f"be evaluated over the sources ({self.stale_definition})"
            )
        if self.consistent:
            return (
                f"consistent: view matches recompute "
                f"({self.actual_rows} rows)"
            )
        return (
            f"INCONSISTENT: expected {self.expected_rows} rows, "
            f"materialized {self.actual_rows}; "
            f"{len(self.missing)} missing, {len(self.unexpected)} unexpected"
        )


def check_convergence(manager: ViewManager, sample: int = 10) -> ConsistencyReport:
    """Compare the materialized extent against a fresh recompute.

    ``sample`` bounds how many differing rows are listed in the report.
    """
    from ..relational.errors import SchemaError

    try:
        expected: Table = manager.recompute_reference()
    except SchemaError as exc:
        return ConsistencyReport(
            consistent=False,
            expected_rows=0,
            actual_rows=len(manager.mv.extent),
            stale_definition=str(exc),
        )
    actual = manager.mv.extent

    missing = []
    unexpected = []
    if expected != actual:
        expected_delta = expected.as_delta()
        expected_delta.merge(actual.as_delta().negated())
        for row, count in expected_delta.items():
            if count > 0 and len(missing) < sample:
                missing.append((row, count))
            elif count < 0 and len(unexpected) < sample:
                unexpected.append((row, -count))
    return ConsistencyReport(
        consistent=expected == actual,
        expected_rows=len(expected),
        actual_rows=len(actual),
        missing=missing,
        unexpected=unexpected,
    )
