"""View layer: definitions, materialized extents, UMQ, manager, oracle."""

from .consistency import ConsistencyReport, check_convergence
from .definition import ViewDefinition
from .manager import MaintenanceOutcome, ViewManager
from .multi import MultiViewManager
from .materialized import MaterializedView
from .umq import MaintenanceUnit, UMQError, UpdateMessageQueue

__all__ = [
    "ConsistencyReport",
    "MaintenanceUnit",
    "MaintenanceOutcome",
    "MaterializedView",
    "MultiViewManager",
    "UMQError",
    "UpdateMessageQueue",
    "ViewDefinition",
    "ViewManager",
    "check_convergence",
]
