"""Audit mode: runtime verification of strong consistency.

An :class:`AuditingScheduler` is a drop-in Dyno scheduler that, after
every successfully maintained unit, replays the units maintained so far
(in maintenance order) onto pristine copies of the initial sources and
checks that the materialized extent equals the current definition
evaluated over the replayed state — i.e. that every intermediate view
state corresponds to a *legal prefix* of the update stream, the paper's
strong-consistency guarantee.

Auditing is expensive (a full replay + recompute per unit) and meant
for tests, debugging and demos — not for measuring costs.

Replay order is well-defined because correction only reorders updates
that commute at the sources: per-relation commit order is pinned by
semantic dependencies, and updates of different relations commute.
"""

from __future__ import annotations

from ..core.scheduler import DynoScheduler
from ..core.strategies import PESSIMISTIC, Strategy
from ..relational.errors import ReproError
from ..relational.executor import execute
from ..sources.source import DataSource
from .manager import ViewManager


class StrongConsistencyViolation(ReproError):
    """An intermediate view state did not match any maintained prefix."""


def clone_source(source) -> DataSource:
    """A pristine in-memory copy of a source's current state."""
    duplicate = DataSource(source.name)
    for table in source.catalog:
        duplicate.catalog.add_table(table.copy())
    return duplicate


class AuditingScheduler(DynoScheduler):
    """Dyno with the strong-consistency invariant checked per unit."""

    def __init__(
        self,
        manager: ViewManager,
        strategy: Strategy = PESSIMISTIC,
        **kwargs,
    ) -> None:
        super().__init__(manager, strategy, **kwargs)
        # Snapshot the sources as they are NOW (before any audited
        # maintenance): the replay baseline.
        self._baseline = {
            name: clone_source(source)
            for name, source in manager.engine.sources.items()
        }
        self.maintained_messages: list = []
        self.audited_states = 0

    def step(self) -> bool:
        before_messages = list(self.umq.messages())
        before_count = self.manager.metrics.maintained_updates
        alive = super().step()
        maintained = self.manager.metrics.maintained_updates - before_count
        if maintained > 0:
            after_ids = {id(m) for m in self.umq.messages()}
            removed = [
                m for m in before_messages if id(m) not in after_ids
            ]
            removed.sort(key=lambda m: (m.committed_at, m.source, m.seqno))
            self.maintained_messages.extend(removed)
            self._audit()
        return alive

    def _audit(self) -> None:
        replayed = {
            name: clone_source(source)
            for name, source in self._baseline.items()
        }
        for message in self.maintained_messages:
            replayed[message.source].commit(message.payload, at=0.0)
        tables = {}
        for ref in self.manager.view.query.relations:
            tables[ref.alias] = replayed[ref.source].catalog.table(
                ref.relation
            )
        expected = execute(self.manager.view.query, tables)
        if self.manager.mv.extent != expected:
            raise StrongConsistencyViolation(
                f"after {len(self.maintained_messages)} maintained "
                f"updates the extent has {len(self.manager.mv.extent)} "
                f"rows but the maintained prefix yields {len(expected)}"
            )
        self.audited_states += 1
