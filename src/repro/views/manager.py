"""The view manager (Figure 3).

Owns the materialized view, the UMQ, the synchronizer and the
connections to the sources, and builds one *maintenance process*
(a generator of effects) per maintenance unit:

* a data-update unit runs the probe sweep of
  :mod:`repro.maintenance.vm` and refreshes the view with the resulting
  delta;
* a unit containing schema changes runs VS per combined change and then
  view adaptation, installing the rewritten definition and rebuilt
  extent atomically at the end (so an abort mid-way leaves both the
  definition and the extent untouched — "this abort is just to discard
  any temporary query results");
* a batch unit's data updates are folded into the adaptation scans
  automatically (they are already committed at the sources and are not
  compensated away, because they are not *behind* the unit).

The Dyno scheduler (:mod:`repro.core.scheduler`) drives these processes
and decides their order.
"""

from __future__ import annotations

from ..relational.delta import Delta
from ..relational.executor import execute
from ..relational.schema import RelationSchema
from ..relational.table import Table
from ..sim.costs import CostModel
from ..sim.effects import Delay
from ..sim.engine import MaintenanceProcess, SimEngine
from ..sim.metrics import Metrics
from ..sources.messages import SchemaChange
from ..sources.mkb import MetaKnowledgeBase
from ..sources.source import DataSource
from ..sources.wrapper import Wrapper
from ..maintenance.batch import (
    combine_schema_changes,
    data_updates_of,
    schema_changes_of,
)
from ..maintenance.compensation import CompensationLog
from ..maintenance.grouping import coalesce_data_updates
from ..maintenance.history import SchemaHistory
from ..maintenance.va import adapt_view
from ..maintenance.vm import maintain_data_update
from ..maintenance.vs import ViewSynchronizer
from .definition import ViewDefinition
from .materialized import MaterializedView
from .umq import MaintenanceUnit, UpdateMessageQueue


from dataclasses import dataclass


@dataclass
class MaintenanceOutcome:
    """The computed-but-uninstalled effect of one maintenance unit.

    Exactly one of these shapes applies:

    * ``delta`` set — a data-update refresh (apply to the extent);
    * ``definition`` + ``extent`` set — a schema-change adaptation
      (install the rewritten definition and the rebuilt extent);
    * all ``None`` — the unit did not affect this view.

    ``applied_changes`` carries the unit's (combined) schema changes so
    installation can record them in the manager's
    :class:`~repro.maintenance.history.SchemaHistory`.
    """

    delta: Delta | None = None
    definition: ViewDefinition | None = None
    extent: Table | None = None
    applied_changes: list = None  # list[(source, SchemaChange)] | None


def filtered_sink(umq: UpdateMessageQueue, message_filter):
    """Wrapper sink delivering into ``umq`` through an optional filter.

    With ``message_filter=None`` this is exactly ``umq.receive``; with a
    predicate, messages the filter rejects are silently not enqueued
    (the source commit itself is untouched — filtering is a delivery
    concern, so maintenance queries still observe full source state)."""
    if message_filter is None:
        return umq.receive

    def sink(message) -> None:
        if message_filter(message):
            umq.receive(message)

    return sink


def install_messages(unit: MaintenanceUnit) -> tuple:
    """The ``(source, seqno, committed_at)`` triples a unit covers, in
    the shape :meth:`~repro.sim.engine.SimEngine.record_install` wants."""
    return tuple(
        (m.source, m.seqno, m.committed_at) for m in unit.messages
    )


class ViewManager:
    """Maintains one materialized view over autonomous sources."""

    def __init__(
        self,
        engine: SimEngine,
        view: ViewDefinition,
        mkb: MetaKnowledgeBase | None = None,
        umq: UpdateMessageQueue | None = None,
        attach_wrappers: bool = True,
        initial_extent: "Table | None" = None,
        message_filter=None,
    ) -> None:
        """``umq``/``attach_wrappers`` let several managers share one
        queue (see :class:`~repro.views.multi.MultiViewManager`).

        ``initial_extent`` is the crash-recovery restore path: the
        extent is installed verbatim (no ``result_schema`` resolution
        against live sources — the definition may reference renamed
        relations — and no initial load).

        ``message_filter`` (``Callable[[UpdateMessage], bool] | None``)
        sits between the wrappers and the UMQ: a message is enqueued
        only when the filter accepts it.  Shard routers use this to
        deliver each shard only the slice of the committed stream its
        registered views reference."""
        self.engine = engine
        self.view = view
        #: write-ahead maintenance journal (armed by a RecoveryHarness)
        self.journal = None
        # NOTE: ``umq or ...`` would discard a shared-but-empty queue
        # (UpdateMessageQueue defines __len__), hence the identity test.
        self.umq = umq if umq is not None else UpdateMessageQueue()
        self.mkb = mkb or MetaKnowledgeBase()
        self.synchronizer = ViewSynchronizer(
            self.mkb, schema_lookup=self._schema_lookup
        )
        self.compensation_log = CompensationLog()
        self.schema_history = SchemaHistory()
        self._sink = filtered_sink(self.umq, message_filter)
        self.wrappers: list[Wrapper] = []
        if attach_wrappers:
            for source in engine.sources.values():
                self.wrappers.append(
                    Wrapper(source, self._sink, engine=engine)
                )
        if initial_extent is not None:
            self.mv = MaterializedView(view.name, initial_extent.schema)
            self.mv.replace_extent(initial_extent, view.version)
            self.mv.refresh_count = 0
        else:
            self.mv = MaterializedView(
                view.name, view.result_schema(engine.sources)
            )
            self.initial_load()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @property
    def cost(self) -> CostModel:
        return self.engine.cost_model

    @property
    def metrics(self) -> Metrics:
        return self.engine.metrics

    @property
    def snapshot_cache(self):
        """The engine's snapshot cache (``None`` when not armed).

        The cache lives on the engine so that every view manager sharing
        the engine — e.g. the views of a
        :class:`~repro.views.multi.MultiViewManager` — shares one memo:
        a probe paid for by one view's maintenance answers the same
        probe from every other view.
        """
        return self.engine.snapshot_cache

    def install_snapshot_cache(self):
        """Arm the self-maintenance fast path (delegates to the engine;
        see :meth:`~repro.sim.engine.SimEngine.install_snapshot_cache`)."""
        return self.engine.install_snapshot_cache()

    @property
    def selfmaint(self):
        """The engine's auxiliary self-maintenance store (``None`` when
        not armed).  Like the snapshot cache, it lives on the engine so
        every view manager sharing the engine shares one set of
        replicas."""
        return self.engine.selfmaint

    def install_self_maintenance(self):
        """Arm the auxiliary store and register this view's coverage
        requirements (delegates to the engine; see
        :meth:`~repro.sim.engine.SimEngine.install_self_maintenance`)."""
        store = self.engine.install_self_maintenance()
        store.register_view(self.view.query)
        return store

    def _schema_lookup(
        self, source: str, relation: str
    ) -> RelationSchema | None:
        owner = self.engine.sources.get(source)
        if owner is None or not owner.has_relation(relation):
            return None
        return owner.schema_of(relation)

    def connect(self, source: DataSource) -> None:
        """Attach a source that joined after construction."""
        self.engine.add_source(source)
        self.wrappers.append(
            Wrapper(source, self._sink, engine=self.engine)
        )

    def _in_flight_messages(self) -> list:
        """Committed-but-undelivered messages across all wrappers.

        Link faults (and wrapper latency) open a window where an update
        is committed at its source — and therefore visible to
        maintenance queries — but not yet in the UMQ.  Compensation must
        see those messages as *behind* every unit, or the duplication
        anomaly of Example 1.a reappears under transmission delay.
        """
        pending: list = []
        for wrapper in self.wrappers:
            pending.extend(wrapper.pending_messages())
        return pending

    def _translated(self, message):
        """Map a data-update message through the schema history.

        Returns a message whose payload speaks the *current* schema
        (identity fast path when nothing ever changed), or ``None`` when
        the updated relation no longer exists.
        """
        from ..sources.messages import UpdateMessage

        if self.schema_history.is_empty():
            return message
        translated = self.schema_history.translate_data_update(
            message.source, message.payload
        )
        if translated is None:
            return None
        if translated is message.payload:
            return message
        return UpdateMessage(
            message.source,
            message.seqno,
            message.committed_at,
            translated,
        )

    # ------------------------------------------------------------------
    # the scheduler protocol (shared with MultiViewManager)
    # ------------------------------------------------------------------

    @property
    def maintenance_queries(self) -> tuple:
        """The view queries dependency detection must consider."""
        return (self.view.query,)

    @property
    def detection_epoch(self) -> tuple:
        """Version key for cached detection metadata.

        Bumps whenever a committed (or speculatively installed) schema
        rewrite changes the view definition; cached maintenance
        footprints are valid only within one epoch.
        """
        return (self.view.version,)

    def speculative_queries(self, message) -> tuple:
        """What the view queries would look like after this schema
        change — VS is pure, so we can ask without committing."""
        try:
            result = self.synchronizer.synchronize(self.view, message)
        except Exception:
            return (self.view.query,)
        return (result.definition.query,)

    # ------------------------------------------------------------------
    # initial load and oracle recompute
    # ------------------------------------------------------------------

    def _direct_tables(self, view: ViewDefinition) -> dict[str, Table]:
        tables: dict[str, Table] = {}
        for ref in view.query.relations:
            source = self.engine.sources[ref.source]
            tables[ref.alias] = source.catalog.table(ref.relation)
        return tables

    def initial_load(self) -> None:
        """Populate the extent from the current source states (free)."""
        extent = execute(self.view.query, self._direct_tables(self.view))
        self.mv.replace_extent(extent, self.view.version)
        self.mv.refresh_count = 0

    def recompute_reference(self) -> Table:
        """Oracle: what the extent *should* be right now (zero cost)."""
        return execute(self.view.query, self._direct_tables(self.view))

    # ------------------------------------------------------------------
    # maintenance process construction
    # ------------------------------------------------------------------

    def build_maintenance(
        self, unit: MaintenanceUnit, pending_feed=None
    ) -> MaintenanceProcess:
        """The maintenance process for one unit (Definition 1).

        The process is *compute then install*: all source queries and
        compensation happen first, the materialized view and the view
        definition are only written at the very end (``w(MV) c(MV)``) —
        an abort mid-way leaves both untouched.

        ``pending_feed`` (zero-argument callable) overrides where
        compensation finds the messages pending *behind* this unit: the
        parallel executor removes a unit from the UMQ at dispatch, so
        ``umq.messages_behind`` no longer answers for it — the executor
        supplies the dispatch-time snapshot plus later arrivals instead.
        """
        outcome = yield from self.compute_unit(unit, pending_feed)
        self.install_unit(outcome, unit)
        return outcome

    def compute_unit(
        self, unit: MaintenanceUnit, pending_feed=None
    ) -> MaintenanceProcess:
        """Manager-agnostic compute seam (same protocol as
        :meth:`~repro.views.multi.MultiViewManager.compute_unit`): the
        parallel executor drives this generator, holds the returned
        prepared outcome, and calls :meth:`install_unit` only when the
        unit's turn comes in dispatch order."""
        return self.compute_maintenance(unit, pending_feed)

    def install_unit(self, prepared, unit: MaintenanceUnit) -> None:
        """Install a prepared outcome from :meth:`compute_unit`.

        Write-ahead rule: when a maintenance journal is armed, the
        install entry hits the sink *before* the extent is touched, so
        a crash at any point here is recoverable (either the entry is
        absent and the unit re-runs, or it is present and replay
        re-applies the recorded effect)."""
        self.engine.crash_point("install.pre_journal")
        if self.journal is not None:
            self.journal.record_install(unit, [prepared])
            self.engine.crash_point("install.post_journal")
        self.apply_outcome(prepared, counted_updates=len(unit))
        self.engine.record_install(
            {self.view.name: len(self.mv.extent)}, install_messages(unit)
        )
        self.engine.crash_point("install.post_apply")

    def compute_maintenance(
        self, unit: MaintenanceUnit, pending_feed=None
    ) -> MaintenanceProcess:
        """Compute (but do not install) the effect of one unit.

        Returns a :class:`MaintenanceOutcome`; multi-view deployments
        compute outcomes for every view before installing any of them,
        preserving unit atomicity across views.
        """
        if unit.has_schema_change:
            outcome = yield from self._compute_schema_unit(
                unit, pending_feed
            )
        else:
            outcome = yield from self._compute_data_unit(
                unit, pending_feed=pending_feed
            )
        return outcome

    def apply_outcome(
        self, outcome: "MaintenanceOutcome", counted_updates: int
    ) -> None:
        """Install a computed outcome (``w(MV) c(MV)``)."""
        if outcome.applied_changes:
            for source, change in outcome.applied_changes:
                self.schema_history.record(source, change)
        if outcome.extent is not None and outcome.definition is not None:
            self.view = outcome.definition
            self.mv.replace_extent(outcome.extent, outcome.definition.version)
            self.metrics.view_refreshes += 1
            if self.engine.selfmaint is not None:
                # The rewritten definition may need different columns
                # (or relations under new names); re-register so future
                # probes are judged against the *current* requirements.
                self.engine.selfmaint.register_view(outcome.definition.query)
        elif outcome.delta is not None and not outcome.delta.is_empty():
            self.mv.apply(outcome.delta)
            self.metrics.view_refreshes += 1
            self.metrics.view_delta_tuples += outcome.delta.net_size()
        self.metrics.maintained_updates += counted_updates

    def _compute_data_unit(
        self,
        unit: MaintenanceUnit,
        anchor: MaintenanceUnit | None = None,
        pending_feed=None,
    ) -> MaintenanceProcess:
        """M(DU) for a unit of one or more data updates.

        ``anchor`` is the unit actually sitting at the head of the UMQ;
        it differs from ``unit`` when a batch's data updates are split
        out for sequential VM (the anchor stays the batch).
        """
        anchor = anchor or unit
        messages = [
            translated
            for m in unit.messages
            if m.is_data_update
            for translated in [self._translated(m)]
            if translated is not None
        ]
        # Batch preprocessing (Section 5, voluntary flavour): merge
        # same-relation deltas so the batch pays one probe sweep per
        # touched relation.  Exact — see grouping.coalesce_data_updates.
        messages = coalesce_data_updates(messages)
        total: Delta | None = None
        for index, message in enumerate(messages):
            sub_unit = MaintenanceUnit([message])
            # Compensation must treat later in-unit updates as pending.
            process = maintain_data_update(
                self.view,
                sub_unit,
                _UMQView(
                    self, anchor, messages[index + 1 :], pending_feed
                ),
                self.compensation_log,
            )
            delta = yield from process
            if delta is None or delta.is_empty():
                continue
            if total is None:
                total = delta
            else:
                total.merge(delta)
        if total is not None and not total.is_empty():
            yield Delay(self.cost.refresh(total.net_size()), "refresh")
        return MaintenanceOutcome(delta=total)

    def _compute_schema_unit(
        self, unit: MaintenanceUnit, pending_feed=None
    ) -> MaintenanceProcess:
        """M(SC) / batch maintenance: VS per combined change, then VA.

        The rewritten definition is kept local (``w(VD)`` is in-memory,
        footnote 1); it is installed together with the adapted extent in
        the final ``w(MV) c(MV)`` step.
        """
        combined = combine_schema_changes(schema_changes_of(unit))
        candidate = self.view
        effective_changes = 0
        for source, change in combined:
            assert isinstance(change, SchemaChange)
            yield Delay(self.cost.vs_rewrite, "vs_rewrite")
            result = self.synchronizer.synchronize_change(
                candidate, source, change
            )
            candidate = result.definition
            if result.report.changed:
                effective_changes += 1

        if effective_changes == 0:
            # No schema change touched the view.  Any batched data
            # updates still need ordinary VM against the unchanged
            # definition.
            data_updates = data_updates_of(unit)
            if data_updates:
                outcome = yield from self._compute_data_unit(
                    MaintenanceUnit(data_updates),
                    anchor=unit,
                    pending_feed=pending_feed,
                )
                outcome.applied_changes = list(combined)
                return outcome
            return MaintenanceOutcome(applied_changes=list(combined))

        if self.engine.selfmaint is not None:
            # Register the candidate's requirements *before* adaptation:
            # its full-relation scans travel (never cacheable) and their
            # answers re-seed any replica the schema change invalidated.
            # Speculative registration is harmless — a rename keys a new
            # replica slot, a widening merely drops a too-narrow replica.
            self.engine.selfmaint.register_view(candidate.query)
        extent = yield from adapt_view(
            candidate,
            unit,
            _UMQView(self, unit, [], pending_feed),
            self.cost,
            rounds=effective_changes,
            log=self.compensation_log,
        )
        assert isinstance(extent, Table)
        return MaintenanceOutcome(
            definition=candidate,
            extent=extent,
            applied_changes=list(combined),
        )


class _UMQView:
    """UMQ facade: in-unit pending messages plus stale-name translation.

    When a batch's data updates are maintained sequentially, updates
    later *within the same unit* must be compensated away exactly like
    queued updates behind the unit; this facade makes them visible to
    :func:`~repro.maintenance.compensation.pending_data_updates` without
    mutating the real queue.  It also translates every pending data
    update through the manager's schema history, so compensation matches
    updates committed under old relation/attribute names against the
    current-name queries.
    """

    def __init__(
        self, manager: "ViewManager", unit, extra, pending_feed=None
    ) -> None:
        self._manager = manager
        self._unit = unit
        self._extra = list(extra)
        #: parallel executor's override: the unit left the real queue at
        #: dispatch, so the executor supplies its pending overlay
        self._pending_feed = pending_feed

    def messages_behind(self, _sub_unit) -> list:
        behind = (
            self._pending_feed()
            if self._pending_feed is not None
            else self._manager.umq.messages_behind(self._unit)
        )
        pending = (
            self._extra
            + behind
            + self._manager._in_flight_messages()
        )
        if self._manager.schema_history.is_empty():
            return pending
        translated = []
        for message in pending:
            if not message.is_data_update:
                translated.append(message)
                continue
            mapped = self._manager._translated(message)
            if mapped is not None:
                translated.append(mapped)
        return translated
