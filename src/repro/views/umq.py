"""The Update Message Queue (UMQ).

The UMQ buffers committed source updates awaiting maintenance.  Its
entries are :class:`MaintenanceUnit` objects — normally one update each,
but dependency correction can merge several updates into one *batch
unit* that is maintained atomically (Section 4.2: cycles in the
dependency graph cannot be aborted, so their updates are processed in
one batch).

The UMQ also owns the ``NewSchemaChangeFlag`` of Figure 6/7: the
UMQ-manager side sets it when a schema change arrives, and the Dyno loop
atomically tests-and-clears it to decide whether detection can be
skipped.

Hot-path layout: the unit store is a deque (O(1) ``remove_head``), the
flat message list is cached and patched on mutation instead of being
rebuilt per call, and ``position_of``/``messages_behind`` resolve
through identity maps plus a monotone base offset instead of scanning.
Observers (the incremental detection substrate) register as *mutation
listeners* and are notified after every structural change.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Iterator, Protocol

from ..relational.errors import ReproError
from ..sources.messages import UpdateMessage


class UMQError(ReproError):
    """The UMQ was manipulated inconsistently."""


@dataclass
class MaintenanceUnit:
    """One schedulable maintenance task: a single update or a batch.

    Messages inside a batch keep their arrival order so that per-source
    preprocessing (Section 5) can combine them respecting commit order.
    """

    messages: list[UpdateMessage] = field(default_factory=list)

    @classmethod
    def single(cls, message: UpdateMessage) -> "MaintenanceUnit":
        return cls([message])

    @classmethod
    def merged(cls, units: Iterable["MaintenanceUnit"]) -> "MaintenanceUnit":
        messages: list[UpdateMessage] = []
        for unit in units:
            messages.extend(unit.messages)
        return cls(messages)

    @property
    def is_batch(self) -> bool:
        return len(self.messages) > 1

    @property
    def has_schema_change(self) -> bool:
        return any(message.is_schema_change for message in self.messages)

    @property
    def head_message(self) -> UpdateMessage:
        return self.messages[0]

    def describe(self) -> str:
        if not self.is_batch:
            return self.messages[0].describe()
        inner = "; ".join(message.describe() for message in self.messages)
        return f"BATCH[{inner}]"

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[UpdateMessage]:
        return iter(self.messages)


class UMQListener(Protocol):
    """Observer of UMQ structural mutations (notified *after* each)."""

    def umq_received(self, message: UpdateMessage) -> None: ...

    def umq_removed_head(self, unit: MaintenanceUnit) -> None: ...

    def umq_reordered(self, units: list[MaintenanceUnit]) -> None: ...

    def umq_removed_unit(
        self, unit: MaintenanceUnit, index: int
    ) -> None: ...

    def umq_requeued_front(self, unit: MaintenanceUnit) -> None: ...


class UpdateMessageQueue:
    """FIFO of maintenance units with reorder support."""

    def __init__(self) -> None:
        self._units: deque[MaintenanceUnit] = deque()
        self.new_schema_change_flag = False
        self.received_messages = 0
        #: schema-change messages ever received (monotone; part of the
        #: footprint-cache epoch — source schemas only drift when an SC
        #: commits, and every committed SC passes through here)
        self.received_schema_changes = 0
        self._listeners: list[UMQListener] = []
        # -- O(1) lookup bookkeeping -----------------------------------
        #: flat message list, patched incrementally (None = rebuild)
        self._messages_cache: list[UpdateMessage] | None = []
        #: id(unit) -> absolute position (monotone; queue index =
        #: absolute - base)
        self._unit_pos: dict[int, int] = {}
        #: id(message) -> owning unit
        self._owner: dict[int, MaintenanceUnit] = {}
        #: absolute position of the current head
        self._base = 0

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------

    def add_listener(self, listener: UMQListener) -> None:
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: UMQListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # UMQ manager side (Figure 7)
    # ------------------------------------------------------------------

    def receive(self, message: UpdateMessage) -> None:
        """Enqueue a newly arrived update; flag schema changes."""
        unit = MaintenanceUnit.single(message)
        self._units.append(unit)
        self._unit_pos[id(unit)] = self._base + len(self._units) - 1
        self._owner[id(message)] = unit
        if self._messages_cache is not None:
            self._messages_cache.append(message)
        self.received_messages += 1
        if message.is_schema_change:
            self.new_schema_change_flag = True
            self.received_schema_changes += 1
        for listener in self._listeners:
            listener.umq_received(message)

    def test_and_clear_schema_change_flag(self) -> bool:
        """The atomic ``Test_If_True_Set_False`` of Figure 6, line 1."""
        was_set = self.new_schema_change_flag
        self.new_schema_change_flag = False
        return was_set

    # ------------------------------------------------------------------
    # Dyno side
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        return not self._units

    def __len__(self) -> int:
        return len(self._units)

    @property
    def units(self) -> tuple[MaintenanceUnit, ...]:
        return tuple(self._units)

    def messages(self) -> list[UpdateMessage]:
        if self._messages_cache is None:
            self._messages_cache = [
                message for unit in self._units for message in unit
            ]
        return list(self._messages_cache)

    def head(self) -> MaintenanceUnit:
        if not self._units:
            raise UMQError("UMQ is empty")
        return self._units[0]

    def remove_head(self) -> MaintenanceUnit:
        if not self._units:
            raise UMQError("UMQ is empty")
        unit = self._units.popleft()
        self._base += 1
        self._unit_pos.pop(id(unit), None)
        for message in unit:
            self._owner.pop(id(message), None)
        if self._messages_cache is not None:
            del self._messages_cache[: len(unit)]
        for listener in self._listeners:
            listener.umq_removed_head(unit)
        return unit

    def remove_unit(self, unit: MaintenanceUnit) -> MaintenanceUnit:
        """Remove ``unit`` from any queue position (parallel dispatch).

        Head removal keeps the O(1) fast path (and fires the head
        listener event); mid-queue removal rebuilds the position maps in
        O(n) and fires ``umq_removed_unit`` with the vacated index.
        """
        absolute = self._unit_pos.get(id(unit))
        if absolute is None:
            raise UMQError("unit not in UMQ")
        index = absolute - self._base
        if index == 0:
            return self.remove_head()
        before = sum(
            len(earlier) for earlier in islice(self._units, 0, index)
        )
        del self._units[index]
        self._unit_pos.pop(id(unit), None)
        for message in unit:
            self._owner.pop(id(message), None)
        if self._messages_cache is not None:
            del self._messages_cache[before : before + len(unit)]
        # Positions after the gap all shift down by one.
        self._unit_pos = {
            id(survivor): self._base + position
            for position, survivor in enumerate(self._units)
        }
        for listener in self._listeners:
            listener.umq_removed_unit(unit, index)
        return unit

    def requeue_front(self, unit: MaintenanceUnit) -> None:
        """Put a previously removed unit back at the head (abort path).

        The unit's messages must not currently be queued; the
        schema-change flag and arrival counters are untouched (this is a
        re-admission, not a new arrival).
        """
        for message in unit:
            if id(message) in self._owner:
                raise UMQError(
                    "requeued unit's messages are already queued"
                )
        self._units.appendleft(unit)
        self._base -= 1
        self._unit_pos[id(unit)] = self._base
        for message in unit:
            self._owner[id(message)] = unit
        if self._messages_cache is not None:
            self._messages_cache[:0] = unit.messages
        for listener in self._listeners:
            listener.umq_requeued_front(unit)

    def position_of(self, message: UpdateMessage) -> int:
        """Queue position of the unit containing ``message`` (O(1))."""
        unit = self._owner.get(id(message))
        if unit is None:
            raise UMQError(f"message not in UMQ: {message.describe()}")
        return self._unit_pos[id(unit)] - self._base

    def messages_behind(
        self, unit: MaintenanceUnit
    ) -> list[UpdateMessage]:
        """All messages in units strictly after ``unit``."""
        absolute = self._unit_pos.get(id(unit))
        if absolute is None:
            raise UMQError("unit not in UMQ")
        index = absolute - self._base
        return [
            message
            for later in islice(self._units, index + 1, None)
            for message in later
        ]

    def replace_order(self, units: list[MaintenanceUnit]) -> None:
        """Install a corrected order; the message multiset must match."""
        current = Counter(id(message) for message in self.messages())
        proposed = Counter(
            id(message) for unit in units for message in unit
        )
        if current != proposed:
            raise UMQError(
                "corrected order does not preserve the queued messages"
            )
        self._units = deque(units)
        self._base = 0
        self._messages_cache = None
        self._unit_pos = {
            id(unit): index for index, unit in enumerate(units)
        }
        self._owner = {
            id(message): unit for unit in units for message in unit
        }
        for listener in self._listeners:
            listener.umq_reordered(list(units))

    def __repr__(self) -> str:
        return f"UMQ({len(self._units)} units)"
