"""The Update Message Queue (UMQ).

The UMQ buffers committed source updates awaiting maintenance.  Its
entries are :class:`MaintenanceUnit` objects — normally one update each,
but dependency correction can merge several updates into one *batch
unit* that is maintained atomically (Section 4.2: cycles in the
dependency graph cannot be aborted, so their updates are processed in
one batch).

The UMQ also owns the ``NewSchemaChangeFlag`` of Figure 6/7: the
UMQ-manager side sets it when a schema change arrives, and the Dyno loop
atomically tests-and-clears it to decide whether detection can be
skipped.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..relational.errors import ReproError
from ..sources.messages import UpdateMessage


class UMQError(ReproError):
    """The UMQ was manipulated inconsistently."""


@dataclass
class MaintenanceUnit:
    """One schedulable maintenance task: a single update or a batch.

    Messages inside a batch keep their arrival order so that per-source
    preprocessing (Section 5) can combine them respecting commit order.
    """

    messages: list[UpdateMessage] = field(default_factory=list)

    @classmethod
    def single(cls, message: UpdateMessage) -> "MaintenanceUnit":
        return cls([message])

    @classmethod
    def merged(cls, units: Iterable["MaintenanceUnit"]) -> "MaintenanceUnit":
        messages: list[UpdateMessage] = []
        for unit in units:
            messages.extend(unit.messages)
        return cls(messages)

    @property
    def is_batch(self) -> bool:
        return len(self.messages) > 1

    @property
    def has_schema_change(self) -> bool:
        return any(message.is_schema_change for message in self.messages)

    @property
    def head_message(self) -> UpdateMessage:
        return self.messages[0]

    def describe(self) -> str:
        if not self.is_batch:
            return self.messages[0].describe()
        inner = "; ".join(message.describe() for message in self.messages)
        return f"BATCH[{inner}]"

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[UpdateMessage]:
        return iter(self.messages)


class UpdateMessageQueue:
    """FIFO of maintenance units with reorder support."""

    def __init__(self) -> None:
        self._units: list[MaintenanceUnit] = []
        self.new_schema_change_flag = False
        self.received_messages = 0

    # ------------------------------------------------------------------
    # UMQ manager side (Figure 7)
    # ------------------------------------------------------------------

    def receive(self, message: UpdateMessage) -> None:
        """Enqueue a newly arrived update; flag schema changes."""
        self._units.append(MaintenanceUnit.single(message))
        self.received_messages += 1
        if message.is_schema_change:
            self.new_schema_change_flag = True

    def test_and_clear_schema_change_flag(self) -> bool:
        """The atomic ``Test_If_True_Set_False`` of Figure 6, line 1."""
        was_set = self.new_schema_change_flag
        self.new_schema_change_flag = False
        return was_set

    # ------------------------------------------------------------------
    # Dyno side
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        return not self._units

    def __len__(self) -> int:
        return len(self._units)

    @property
    def units(self) -> tuple[MaintenanceUnit, ...]:
        return tuple(self._units)

    def messages(self) -> list[UpdateMessage]:
        return [message for unit in self._units for message in unit]

    def head(self) -> MaintenanceUnit:
        if not self._units:
            raise UMQError("UMQ is empty")
        return self._units[0]

    def remove_head(self) -> MaintenanceUnit:
        if not self._units:
            raise UMQError("UMQ is empty")
        return self._units.pop(0)

    def position_of(self, message: UpdateMessage) -> int:
        """Queue position of the unit containing ``message``."""
        for index, unit in enumerate(self._units):
            if any(existing is message for existing in unit):
                return index
        raise UMQError(f"message not in UMQ: {message.describe()}")

    def messages_behind(
        self, unit: MaintenanceUnit
    ) -> list[UpdateMessage]:
        """All messages in units strictly after ``unit``."""
        for index, existing in enumerate(self._units):
            if existing is unit:
                return [
                    message
                    for later in self._units[index + 1 :]
                    for message in later
                ]
        raise UMQError("unit not in UMQ")

    def replace_order(self, units: list[MaintenanceUnit]) -> None:
        """Install a corrected order; the message multiset must match."""
        current = Counter(id(message) for message in self.messages())
        proposed = Counter(
            id(message) for unit in units for message in unit
        )
        if current != proposed:
            raise UMQError(
                "corrected order does not preserve the queued messages"
            )
        self._units = list(units)

    def __repr__(self) -> str:
        return f"UMQ({len(self._units)} units)"
