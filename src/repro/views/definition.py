"""View definitions.

A :class:`ViewDefinition` wraps the SPJ view query with a name and a
version counter.  View synchronization produces *new versions* (the
in-memory ``w(VD)`` of Definition 1); the version number lets tests and
traces observe rewrites, and footnote 1 of the paper is honoured: the
rewritten view need not be equivalent to the original.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..relational.predicate import AttrRef
from ..relational.query import SPJQuery
from ..relational.schema import Attribute, RelationSchema
from ..sources.source import DataSource


@dataclass(frozen=True)
class ViewDefinition:
    """An immutable, versioned view definition."""

    name: str
    query: SPJQuery
    version: int = 1

    def rewritten(self, query: SPJQuery) -> "ViewDefinition":
        """A new version with a rewritten query."""
        return replace(self, query=query, version=self.version + 1)

    def sql(self) -> str:
        return f"CREATE VIEW {self.name} AS {self.query.sql()}"

    # ------------------------------------------------------------------
    # schema derivation
    # ------------------------------------------------------------------

    def result_schema(self, sources: dict[str, DataSource]) -> RelationSchema:
        """The schema of the view extent, resolved against live sources.

        Output attribute names follow the executor's convention: the bare
        attribute name, qualified with the alias on collision.
        """
        names = [ref.name for ref in self.query.projection]
        attributes: list[Attribute] = []
        for ref in self.query.projection:
            attribute = self._resolve(ref, sources)
            if names.count(ref.name) > 1:
                attribute = attribute.renamed(f"{ref.relation}_{ref.name}")
            attributes.append(attribute)
        return RelationSchema(self.name, tuple(attributes))

    def _resolve(
        self, ref: AttrRef, sources: dict[str, DataSource]
    ) -> Attribute:
        relation_ref = self.query.relation_ref(ref.relation)  # type: ignore[arg-type]
        source = sources[relation_ref.source]
        return source.schema_of(relation_ref.relation).attribute(ref.name)

    def __repr__(self) -> str:
        return f"ViewDefinition({self.name!r}, v{self.version})"
