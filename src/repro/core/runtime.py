"""Process-parallel shard runtime (multi-core warehouse execution).

The inline :class:`~repro.core.sharding.ShardedWarehouse` coordinator
steps every shard world interleaved in ONE Python process: the virtual
clocks interleave but the wall clock pays for every shard serially.
This module executes the same shard worlds across OS worker processes:

* each worker **rebuilds its shard worlds deterministically** from a
  picklable :class:`ShardWorldSpec` (spans + seeds + knobs) — the exact
  construction path ``build_sharded_testbed`` uses inline, via
  :func:`repro.experiments.testbed.build_shard_world` — and schedules
  identically-seeded workload copies from :class:`WorkloadSpec`
  parameters (workload *objects* hold mutable RNGs and are rebuilt
  fresh, never shipped);
* the parent drives the workers over pipes with a small command
  protocol — ``STEP``, ``BARRIER_HOLD`` / ``BARRIER_RELEASE`` (the
  cross-shard SC barrier), ``CRASH``, ``FINISH``, ``COLLECT``,
  ``SHUTDOWN`` — replicating the inline coordinator's min-virtual-clock
  and earliest-SC-release rules from compact :class:`ShardStatus`
  snapshots returned with every reply;
* at quiescence each worker ships its shard state home — extents
  through the PR-6 checkpoint codecs
  (:func:`repro.recovery.codec.table_to_json`), committed refs,
  metrics, the per-shard :class:`~repro.sim.engine.InstallRecord` log
  for the read front end, and its virtual clock.

**Determinism / bit-identity argument.**  Shard worlds are fully
independent (each owns its engine, sources, UMQ, caches and journal;
the router filters only *delivery* into the local UMQ), so a shard's
trace — extent, committed set, install log, virtual clock — depends
only on its own step *count*, never on when peers step.  The SC
barrier is a scheduling preference, not a correctness crutch (see
:mod:`repro.core.sharding`).  The runtime therefore steps all runnable
shards **concurrently per coordinator round** — the maximal-parallel
relaxation of the inline one-shard-per-round rule, with ``STEP``
dispatch ordered by ``(virtual clock, shard id)`` — and still produces
per-shard results byte-identical to the inline coordinator.  Only the
barrier deferral/release *counters* may differ (the round structure
differs); everything the equivalence tests and ABL-13 compare —
extents, committed ``(source, seqno)`` sets, per-shard virtual clocks,
install logs — is invariant.  The virtual clock itself cannot move:
all virtual costs come from the cost model inside each world, and the
process-global plan cache / tuple interning are value-transparent.

Crashed *schedulers* (seeded :class:`~repro.recovery.crash.CrashPlan`)
recover inside the worker from the shard's own journal, exactly as
inline (:func:`repro.core.sharding.step_shard` is shared).  A dead
worker *process* is a different failure: the coordinator detects the
closed pipe, terminates the fleet and raises a clean ``RuntimeError``
instead of hanging.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from ..sim.costs import CostModel
from ..sim.metrics import Metrics

#: worker exit code after a ``CRASH`` command (hard process death)
_CRASH_EXIT_CODE = 23


@dataclass(frozen=True)
class ShardWorldSpec:
    """Everything a worker needs to rebuild one shard world.

    Pure picklable data: view definitions travel as testbed relation
    ``spans`` (rebuilt via ``subview_query``), workloads as
    :class:`WorkloadSpec` parameters.  ``build_shard_world`` consumes
    this spec on both sides — inline and in the worker — so the worlds
    are identical by construction.
    """

    shard_id: int
    view_names: tuple[str, ...]
    spans: tuple[tuple[int, int], ...]
    strategy: Any  # frozen Strategy dataclass (picklable)
    tuples_per_relation: int
    cost_model: CostModel | None
    seed: int
    backend: str
    parallel_workers: int | None
    snapshot_cache: bool
    self_maintenance: bool
    batch_policy: Any | None
    journal: bool
    checkpoint_every: int
    crash_plan: Any | None
    journal_dir: str | None
    fault_plan: Any | None


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload as rebuildable parameters (``kind`` selects the
    testbed factory: ``"du"`` or ``"sc"``)."""

    kind: str
    params: dict

    def __post_init__(self) -> None:
        if self.kind not in ("du", "sc"):
            raise ValueError(f"unknown workload kind {self.kind!r}")


@dataclass(frozen=True)
class ShardStatus:
    """One shard's coordinator-visible state after a step.

    Exactly the observables the inline coordinator reads from live
    shards — enough to replicate its quiescence, barrier-deferral and
    earliest-SC-release decisions remotely.
    """

    shard_id: int
    quiescent: bool
    clock_now: float
    #: commit time of the head unit's earliest SC (None: head not
    #: SC-bearing) — the cross-shard barrier time
    barrier_at: float | None
    #: earliest commit this shard still holds (queued + wrapper
    #: backlog); None when it holds nothing
    min_pending_commit: float | None
    #: parallel executor has in-flight dispatches
    pool_busy: bool
    #: the shard's event heap is non-empty
    has_next_event: bool

    def blocks_barrier(self, barrier_at: float) -> bool:
        """Status-snapshot twin of
        :func:`repro.core.sharding.shard_blocks_barrier`."""
        if (
            self.min_pending_commit is not None
            and self.min_pending_commit < barrier_at
        ):
            return True
        if self.pool_busy:
            return True
        return self.clock_now < barrier_at and self.has_next_event


def status_of(shard) -> ShardStatus:
    """Snapshot one live shard into a :class:`ShardStatus`."""
    from .sharding import (
        min_pending_commit,
        sc_barrier_time,
        shard_quiescent,
    )

    pool = getattr(shard.scheduler, "pool", None)
    return ShardStatus(
        shard_id=shard.shard_id,
        quiescent=shard_quiescent(shard),
        clock_now=shard.engine.clock.now,
        barrier_at=sc_barrier_time(shard),
        min_pending_commit=min_pending_commit(shard),
        pool_busy=pool is not None and pool.any_busy,
        has_next_event=shard.engine.next_event_time() is not None,
    )


def plan_round(
    statuses: dict[int, ShardStatus],
) -> tuple[list[int], list[int], int | None]:
    """One coordinator round decision from status snapshots.

    Returns ``(steps, holds, release)``: shard ids to ``STEP`` (every
    runnable shard, ordered by ``(virtual clock, shard id)`` — the
    concurrent generalization of min-clock stepping), shard ids held at
    the SC barrier, and the earliest-SC shard released when *every*
    active shard is deferred (circular wait), or ``None``.  Pure
    function of the statuses — the same rules
    :meth:`~repro.core.sharding.ShardedWarehouse.run` applies to live
    shards, unit-testable without processes.
    """
    active = [
        status for status in statuses.values() if not status.quiescent
    ]
    runnable: list[ShardStatus] = []
    deferred: list[ShardStatus] = []
    for status in active:
        barrier_at = status.barrier_at
        if barrier_at is not None and any(
            peer.blocks_barrier(barrier_at)
            for peer in statuses.values()
            if peer.shard_id != status.shard_id
        ):
            deferred.append(status)
        else:
            runnable.append(status)
    release: int | None = None
    if not runnable and deferred:
        released = min(
            deferred, key=lambda status: (status.barrier_at, status.shard_id)
        )
        deferred = [
            status for status in deferred if status is not released
        ]
        release = released.shard_id
    steps = [
        status.shard_id
        for status in sorted(
            runnable,
            key=lambda status: (status.clock_now, status.shard_id),
        )
    ]
    holds = sorted(status.shard_id for status in deferred)
    return steps, holds, release


# ----------------------------------------------------------------------
# the worker side
# ----------------------------------------------------------------------


def _collect_state(shard) -> dict:
    """Ship one quiescent shard's results home (codec-encoded extents,
    committed refs, metrics, install log, virtual clock)."""
    from ..recovery.codec import table_to_json
    from ..views.consistency import check_convergence

    extents = {}
    consistent = True
    for manager in shard.view_managers():
        extents[manager.view.name] = table_to_json(manager.mv.extent)
        if not check_convergence(manager).consistent:
            consistent = False
    committed = {
        (message_source, seqno)
        for message_source, seqno in shard.scheduler.stats.processed_messages
    }
    if shard.recovery is not None:
        committed |= set(shard.recovery.installed_refs())
    return {
        "shard_id": shard.shard_id,
        "view_names": tuple(shard.view_names),
        "extents": extents,
        "committed": sorted(committed),
        "clock_now": shard.engine.clock.now,
        "metrics": shard.engine.metrics,
        "install_log": list(shard.engine.install_log),
        "consistent": consistent,
        "crash_reports": len(shard.crash_reports),
    }


def _worker_main(
    conn,
    specs: list[ShardWorldSpec],
    workloads: list[WorkloadSpec],
    executor: str | None,
) -> None:
    """One worker process: build assigned shard worlds, serve commands.

    Every command is answered with exactly one reply (FIFO per pipe),
    so the parent can batch a whole coordinator round per worker and
    read the replies back in order.
    """
    try:
        if executor is not None:
            from ..relational.executor import set_executor_mode

            set_executor_mode(executor)
        from ..experiments.testbed import (
            build_shard_world,
            make_du_workload,
            make_sc_workload,
        )
        from .sharding import step_shard

        shards: dict[int, Any] = {}
        ready: dict[int, tuple[dict, ShardStatus]] = {}
        for spec in specs:
            shard, initial_sizes = build_shard_world(spec)
            for workload in workloads:
                factory = (
                    make_du_workload
                    if workload.kind == "du"
                    else make_sc_workload
                )
                shard.engine.schedule_workload(factory(**workload.params))
            shards[spec.shard_id] = shard
            ready[spec.shard_id] = (initial_sizes, status_of(shard))
        conn.send(("READY", ready))
        while True:
            command = conn.recv()
            op = command[0]
            if op == "SHUTDOWN":
                return
            shard_id = command[1]
            shard = shards[shard_id]
            if op == "STEP":
                step_shard(shard)
                conn.send(("STEPPED", shard_id, status_of(shard)))
            elif op == "BARRIER_HOLD":
                shard.engine.metrics.barrier_deferrals += 1
                conn.send(("HELD", shard_id, status_of(shard)))
            elif op == "BARRIER_RELEASE":
                shard.engine.metrics.barrier_releases += 1
                step_shard(shard)
                conn.send(("STEPPED", shard_id, status_of(shard)))
            elif op == "FINISH":
                shard.scheduler.finish()
                conn.send(("FINISHED", shard_id, status_of(shard)))
            elif op == "COLLECT":
                conn.send(("STATE", shard_id, _collect_state(shard)))
            elif op == "CRASH":
                # Hard process death (chaos hook / death-path tests):
                # no reply, no cleanup — the parent must detect the
                # closed pipe and fail cleanly.
                os._exit(_CRASH_EXIT_CODE)
            else:
                raise ValueError(f"unknown command {op!r}")
    except (EOFError, KeyboardInterrupt):  # parent went away
        return
    except BaseException:
        try:
            conn.send(("ERROR", None, traceback.format_exc()))
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# the parent side
# ----------------------------------------------------------------------


class WorkerDied(RuntimeError):
    """A shard worker process died mid-protocol (pipe closed)."""


@dataclass
class _Worker:
    index: int
    process: Any
    conn: Any
    shard_ids: tuple[int, ...]
    #: replies owed for the current round, in send order
    pending: int = 0


class ProcessShardRuntime:
    """Drives shard worlds across worker processes to quiescence.

    Bulk-synchronous coordinator: each round gathers the latest shard
    statuses (piggybacked on every reply), applies :func:`plan_round`
    — the inline coordinator's barrier + min-clock rules — and issues
    the round's command batch to every worker, which execute their
    shards' steps concurrently.  ``processes`` workers host
    ``len(specs)`` shards round-robin; ``processes`` is clamped to the
    shard count.

    The runtime is single-shot: :meth:`run` drives to quiescence,
    collects every shard's state and shuts the fleet down; the
    accessors then answer from the collected state.
    """

    def __init__(
        self,
        specs: list[ShardWorldSpec],
        processes: int,
        executor: str | None = None,
        reply_timeout: float = 600.0,
        kill_shard_after: tuple[int, int] | None = None,
    ) -> None:
        if not specs:
            raise ValueError("ProcessShardRuntime needs at least one shard")
        if processes < 1:
            raise ValueError(f"need at least one process, got {processes}")
        self.specs = sorted(specs, key=lambda spec: spec.shard_id)
        self.processes = min(processes, len(self.specs))
        if executor is None:
            from ..relational.executor import executor_mode

            executor = executor_mode()
        self.executor = executor
        self.reply_timeout = reply_timeout
        #: test/chaos knob: ``(shard_id, round_index)`` — at the start
        #: of that coordinator round the shard's worker is sent CRASH
        #: (hard ``os._exit``) instead of its command
        self.kill_shard_after = kill_shard_after
        self._workers: list[_Worker] = []
        self._worker_of: dict[int, _Worker] = {}
        self._workloads: list[WorkloadSpec] = []
        self._statuses: dict[int, ShardStatus] = {}
        self._initial_sizes: dict[str, int] = {}
        self._states: dict[int, dict] = {}
        self._launched = False
        self._finished = False
        self.rounds = 0
        self.commands_sent = 0
        #: wall-clock phase timings (``prepare`` = process launch +
        #: world builds, ``execute`` = coordinator rounds + FINISH,
        #: ``collect`` = state shipping + shutdown)
        self.timings: dict[str, float] = {}

    # ------------------------------------------------------------------
    # workload fan-out (before launch)
    # ------------------------------------------------------------------

    def add_workload_spec(self, workload: WorkloadSpec) -> None:
        """Queue one workload; every shard world replays its own
        identically-seeded copy (the sharded-warehouse contract)."""
        if self._launched:
            raise RuntimeError(
                "workloads must be added before the runtime launches"
            )
        self._workloads.append(workload)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def prepare(self) -> None:
        """Launch the fleet and build every shard world (not timed as
        execution: world construction happens once either way)."""
        if self._launched:
            return
        started = time.perf_counter()
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        assignments: list[list[ShardWorldSpec]] = [
            [] for _ in range(self.processes)
        ]
        for index, spec in enumerate(self.specs):
            assignments[index % self.processes].append(spec)
        for index, assigned in enumerate(assignments):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, assigned, self._workloads, self.executor),
                name=f"shard-worker-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            worker = _Worker(
                index=index,
                process=process,
                conn=parent_conn,
                shard_ids=tuple(spec.shard_id for spec in assigned),
            )
            self._workers.append(worker)
            for spec in assigned:
                self._worker_of[spec.shard_id] = worker
        self._launched = True
        try:
            for worker in self._workers:
                reply = self._recv(worker)
                if reply[0] != "READY":
                    raise WorkerDied(
                        f"worker {worker.index} failed during world "
                        f"construction: {reply[-1]}"
                    )
                for shard_id, (sizes, status) in reply[1].items():
                    self._initial_sizes.update(sizes)
                    self._statuses[shard_id] = status
        except BaseException:
            self._terminate()
            raise
        self.timings["prepare"] = time.perf_counter() - started

    def run(self) -> None:
        """Drive every shard to quiescence; collect; shut down."""
        if self._finished:
            return
        self.prepare()
        try:
            started = time.perf_counter()
            self._drive()
            self._finish()
            self.timings["execute"] = time.perf_counter() - started
            started = time.perf_counter()
            self._collect()
            self.timings["collect"] = time.perf_counter() - started
        finally:
            self._shutdown()
        self._finished = True

    def _drive(self) -> None:
        while True:
            steps, holds, release = plan_round(self._statuses)
            if not steps and not holds and release is None:
                return
            if self.kill_shard_after is not None:
                victim, kill_round = self.kill_shard_after
                if self.rounds == kill_round:
                    self._send(self._worker_of[victim], ("CRASH", victim))
            for shard_id in holds:
                self._send(
                    self._worker_of[shard_id], ("BARRIER_HOLD", shard_id)
                )
            if release is not None:
                self._send(
                    self._worker_of[release], ("BARRIER_RELEASE", release)
                )
            for shard_id in steps:
                self._send(self._worker_of[shard_id], ("STEP", shard_id))
            self._drain_replies()
            self.rounds += 1

    def _finish(self) -> None:
        for spec in self.specs:
            self._send(self._worker_of[spec.shard_id], ("FINISH", spec.shard_id))
        self._drain_replies()

    def _collect(self) -> None:
        for spec in self.specs:
            self._send(
                self._worker_of[spec.shard_id], ("COLLECT", spec.shard_id)
            )
        for worker in self._workers:
            while worker.pending:
                reply = self._recv(worker)
                worker.pending -= 1
                if reply[0] == "ERROR":
                    raise WorkerDied(
                        f"worker {worker.index} failed: {reply[2]}"
                    )
                self._states[reply[1]] = reply[2]

    # ------------------------------------------------------------------
    # pipe plumbing
    # ------------------------------------------------------------------

    def _send(self, worker: _Worker, command: tuple) -> None:
        try:
            worker.conn.send(command)
        except (BrokenPipeError, OSError) as exc:
            self._terminate()
            raise WorkerDied(
                f"worker {worker.index} (shards {list(worker.shard_ids)}) "
                f"died: pipe closed while sending {command[0]}"
            ) from exc
        if command[0] != "CRASH":  # CRASH is fire-and-forget
            worker.pending += 1
        self.commands_sent += 1

    def _recv(self, worker: _Worker):
        deadline = time.monotonic() + self.reply_timeout
        while True:
            try:
                if worker.conn.poll(0.05):
                    return worker.conn.recv()
            except (EOFError, ConnectionResetError, OSError) as exc:
                self._terminate()
                raise WorkerDied(
                    f"worker {worker.index} (shards "
                    f"{list(worker.shard_ids)}) died mid-protocol "
                    f"(exit code {worker.process.exitcode})"
                ) from exc
            if not worker.process.is_alive() and not worker.conn.poll(0.05):
                self._terminate()
                raise WorkerDied(
                    f"worker {worker.index} (shards "
                    f"{list(worker.shard_ids)}) died mid-protocol "
                    f"(exit code {worker.process.exitcode})"
                )
            if time.monotonic() > deadline:
                self._terminate()
                raise WorkerDied(
                    f"worker {worker.index} did not answer within "
                    f"{self.reply_timeout:g}s"
                )

    def _drain_replies(self) -> None:
        for worker in self._workers:
            while worker.pending:
                reply = self._recv(worker)
                worker.pending -= 1
                if reply[0] == "ERROR":
                    self._terminate()
                    raise WorkerDied(
                        f"worker {worker.index} failed: {reply[2]}"
                    )
                self._statuses[reply[1]] = reply[2]

    def _shutdown(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(("SHUTDOWN",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
        self._terminate()

    def _terminate(self) -> None:
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # collected-state accessors (post-run)
    # ------------------------------------------------------------------

    def _state(self, shard_id: int) -> dict:
        if not self._states:
            raise RuntimeError("runtime has not run to completion yet")
        return self._states[shard_id]

    def view_names(self) -> tuple[str, ...]:
        return tuple(
            name for spec in self.specs for name in spec.view_names
        )

    def extent_rows(self) -> dict[str, tuple]:
        """Canonical extents, decoded from the shipped codec tables —
        byte-comparable against the inline coordinator's."""
        from ..recovery.codec import table_from_json

        extents: dict[str, tuple] = {}
        for spec in self.specs:
            state = self._state(spec.shard_id)
            for name in spec.view_names:
                table = table_from_json(state["extents"][name])
                extents[name] = tuple(sorted(map(tuple, table.rows())))
        return extents

    def committed_updates(self) -> frozenset:
        refs: set = set()
        for spec in self.specs:
            refs.update(
                (source, seqno)
                for source, seqno in self._state(spec.shard_id)["committed"]
            )
        return frozenset(refs)

    def shard_clocks(self) -> dict[int, float]:
        return {
            spec.shard_id: self._state(spec.shard_id)["clock_now"]
            for spec in self.specs
        }

    def aggregate_makespan(self) -> float:
        return max(
            self._state(spec.shard_id)["metrics"].elapsed
            for spec in self.specs
        )

    def aggregate_metrics(self) -> Metrics:
        merged = Metrics.merge(
            self._state(spec.shard_id)["metrics"] for spec in self.specs
        )
        merged.makespan = self.aggregate_makespan()
        return merged

    def shard_metrics(self) -> dict[int, Metrics]:
        """Per-shard metrics (kernel cache efficiency per shard etc.)."""
        return {
            spec.shard_id: self._state(spec.shard_id)["metrics"]
            for spec in self.specs
        }

    def horizon(self) -> float:
        return max(
            self._state(spec.shard_id)["clock_now"] for spec in self.specs
        )

    def install_logs(self) -> dict[int, list]:
        return {
            spec.shard_id: self._state(spec.shard_id)["install_log"]
            for spec in self.specs
        }

    def initial_sizes(self) -> dict[str, int]:
        if not self._launched:
            self.prepare()
        return dict(self._initial_sizes)

    def consistent(self) -> bool:
        return all(
            self._state(spec.shard_id)["consistent"] for spec in self.specs
        )

    def crash_report_count(self) -> int:
        return sum(
            self._state(spec.shard_id)["crash_reports"]
            for spec in self.specs
        )

    def cost_model(self) -> CostModel:
        spec = self.specs[0]
        return spec.cost_model or CostModel.calibrated(
            spec.tuples_per_relation
        )
