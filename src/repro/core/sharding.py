"""Sharded multi-scheduler warehouse (scale-out maintenance plane).

Every prior optimisation still funnels the whole committed update
stream through ONE Dyno scheduler owning every view; aggregate
throughput is capped by a single UMQ and detection substrate no matter
how many workers or caches ride on it.  This module partitions the
views — each with its own UMQ, incremental dependency substrate,
snapshot cache, self-maintenance store and journal — across N scheduler
*shards* and coordinates them:

* :func:`assign_views` — deterministic longest-processing-time
  placement of views onto shards (weight = number of referenced
  relations), so a heavy 6-way join does not land next to three light
  subviews while another shard idles.

* :class:`ShardRouter` — footprint-based delivery: a shard receives an
  update message only when some registered view of that shard
  references a touched ``(source, relation)``.  Footprints follow
  renames monotonically — routing ``RenameRelation(old, new)`` to a
  shard adds ``new`` to its footprint, so later updates arriving under
  the new name keep flowing before the view rewrite installs.  Messages
  matching no footprint of a shard are dropped *for that shard only*
  (the source commit itself is untouched, so maintenance queries still
  observe full source state and SWEEP compensation stays exact).

* :class:`ShardedWarehouse` — interleaved min-virtual-clock stepping of
  all shard schedulers, with SC-bearing units acting as a cross-shard
  barrier: a shard whose head unit carries a schema change defers while
  any peer still holds messages committed before the SC, so the global
  interleaving respects the broken-query semantics of Theorem 1 (a
  query spanning shards never observes a schema change applied on one
  shard while a peer still maintains pre-SC updates).  The barrier is a
  scheduling *preference*, not a correctness crutch: shard worlds are
  independent, so every interleaving converges to the same extents; an
  earliest-SC release rule breaks any circular wait.

Per-shard legal orders are exactly the single-scheduler legal orders of
Theorem 2 restricted to the shard's footprint, which is why the final
extents are byte-identical to a 1-shard oracle (asserted by the
equivalence property tests and the ABL-11 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..sim.engine import SimEngine
from ..sim.metrics import Metrics
from ..sources.messages import RenameRelation, UpdateMessage
from ..views.definition import ViewDefinition
from .scheduler import DynoScheduler


def assign_views(
    views: list[ViewDefinition], shards: int
) -> list[list[ViewDefinition]]:
    """Partition views over at most ``shards`` schedulers.

    Deterministic LPT: views sorted by descending weight (number of
    referenced relations, ties by name) go to the least-loaded shard.
    The effective shard count is ``min(shards, len(views))`` — a view is
    the unit of placement and never splits — and empty shards are not
    returned.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if not views:
        raise ValueError("cannot shard zero views")
    effective = min(shards, len(views))
    buckets: list[list[ViewDefinition]] = [[] for _ in range(effective)]
    loads = [0] * effective
    ordered = sorted(
        views, key=lambda view: (-len(view.query.relations), view.name)
    )
    for view in ordered:
        target = min(range(effective), key=lambda i: (loads[i], i))
        buckets[target].append(view)
        loads[target] += len(view.query.relations)
    # Preserve the caller's view order inside each bucket.
    order = {view.name: index for index, view in enumerate(views)}
    for bucket in buckets:
        bucket.sort(key=lambda view: order[view.name])
    return buckets


class ShardRouter:
    """Footprint-based update routing across scheduler shards."""

    def __init__(self) -> None:
        self._footprints: dict[int, set[tuple[str, str]]] = {}

    def register_view(self, shard_id: int, view: ViewDefinition) -> None:
        """Register every ``(source, relation)`` the view references."""
        footprint = self._footprints.setdefault(shard_id, set())
        for ref in view.query.relations:
            footprint.add((ref.source, ref.relation))

    def register_relation(
        self, shard_id: int, source: str, relation: str
    ) -> None:
        self._footprints.setdefault(shard_id, set()).add((source, relation))

    def footprint(self, shard_id: int) -> frozenset[tuple[str, str]]:
        return frozenset(self._footprints.get(shard_id, ()))

    def accepts(self, shard_id: int, message: UpdateMessage) -> bool:
        """Does the shard's footprint cover the message?

        Accepting a ``RenameRelation`` grows the footprint with the new
        name (monotone, closed under rename chains), so data updates
        arriving under the new name are still delivered even before the
        shard's view definition is rewritten.
        """
        footprint = self._footprints.get(shard_id)
        if footprint is None:
            return False
        touched = message.payload.touched_relations()
        if not any(
            (message.source, relation) in footprint for relation in touched
        ):
            return False
        if isinstance(message.payload, RenameRelation):
            footprint.add((message.source, message.payload.new))
        return True

    def shards_for(self, message: UpdateMessage) -> tuple[int, ...]:
        """Every shard whose footprint covers the message (sorted)."""
        return tuple(
            shard_id
            for shard_id in sorted(self._footprints)
            if any(
                (message.source, relation) in self._footprints[shard_id]
                for relation in message.payload.touched_relations()
            )
        )

    def delivery_filter(
        self, shard_id: int, metrics: Metrics
    ) -> Callable[[UpdateMessage], bool]:
        """A wrapper-sink predicate for one shard (counts into
        ``metrics.router_delivered`` / ``router_dropped``)."""

        def accept(message: UpdateMessage) -> bool:
            if self.accepts(shard_id, message):
                metrics.router_delivered += 1
                return True
            metrics.router_dropped += 1
            return False

        return accept


def step_shard(shard: "Shard") -> None:
    """Step one shard once, recovering crashes from its own journal.

    Shared by the inline coordinator (:meth:`ShardedWarehouse.run`) and
    the process runtime's workers (:mod:`repro.core.runtime`), so both
    execute byte-identical per-shard work: a
    :class:`~repro.recovery.SchedulerCrash` raised mid-step tears the
    shard's warehouse down, replays checkpoint + journal (idempotently,
    so a crash during recovery is also safe) and swaps the rebuilt
    manager/scheduler/harness into the shard in place.
    """
    from ..recovery import SchedulerCrash, simulate_crash

    try:
        shard.scheduler.step()
    except SchedulerCrash:
        if shard.recovery is None:
            raise
        while True:
            simulate_crash(shard.engine)
            try:
                recovered = shard.recovery.recover()
                break
            except SchedulerCrash:
                # Crashed during recovery: idempotent replay makes a
                # second attempt from the same durable state safe.
                continue
        shard.manager = recovered.manager
        shard.scheduler = recovered.scheduler
        shard.recovery = recovered.harness
        shard.crash_reports.append(recovered.report)


def shard_quiescent(shard: "Shard") -> bool:
    """Nothing queued, nothing scheduled, nothing in flight."""
    scheduler = shard.scheduler
    if scheduler.stats.iterations >= scheduler.max_iterations:
        return True  # runaway guard, same contract as run()
    if not scheduler.umq.is_empty():
        return False
    if shard.engine.next_event_time() is not None:
        return False
    pool = getattr(scheduler, "pool", None)
    return pool is None or not pool.any_busy


def sc_barrier_time(shard: "Shard") -> float | None:
    """Commit time of the head unit's earliest schema change, or
    ``None`` when the head is not SC-bearing."""
    scheduler = shard.scheduler
    if scheduler.umq.is_empty():
        return None
    head = scheduler.umq.head()
    if not head.has_schema_change:
        return None
    return min(
        message.committed_at
        for message in head.messages
        if message.is_schema_change
    )


def min_pending_commit(shard: "Shard") -> float | None:
    """Earliest commit time this shard still holds un-maintained:
    queued UMQ messages plus the wrappers' committed-but-undelivered
    stream.  ``None`` when the shard holds nothing."""
    commits = [
        message.committed_at
        for message in shard.scheduler.umq.messages()
    ]
    commits.extend(
        message.committed_at
        for wrapper in shard.manager.wrappers
        for message in wrapper.pending_messages()
    )
    return min(commits) if commits else None


def shard_blocks_barrier(shard: "Shard", barrier_at: float) -> bool:
    """Does this shard (as a *peer*) still hold maintenance committed
    before a schema change at ``barrier_at``?

    Checks the shard's queued units and wrapper backlog (via
    :func:`min_pending_commit`), its in-flight parallel dispatches, and
    — conservatively — whether its clock could still reach a commit
    before the barrier time.
    """
    pending = min_pending_commit(shard)
    if pending is not None and pending < barrier_at:
        return True
    pool = getattr(shard.scheduler, "pool", None)
    if pool is not None and pool.any_busy:
        return True
    return (
        shard.engine.clock.now < barrier_at
        and shard.engine.next_event_time() is not None
    )


@dataclass
class Shard:
    """One scheduler shard: a full warehouse world for a view subset.

    Each shard owns an independent :class:`~repro.sim.engine.SimEngine`
    with identically-seeded source replicas — the full committed
    workload plays into every world so source state evolves identically
    everywhere, while the router filters only the *delivery* of update
    messages into this shard's UMQ.
    """

    shard_id: int
    engine: SimEngine
    manager: object  # ViewManager | MultiViewManager
    scheduler: DynoScheduler
    view_names: tuple[str, ...]
    recovery: object | None = None
    crash_reports: list = field(default_factory=list)

    def view_managers(self) -> list:
        managers = getattr(self.manager, "managers", None)
        return list(managers) if managers is not None else [self.manager]

    def manager_for(self, view_name: str):
        for manager in self.view_managers():
            if manager.view.name == view_name:
                return manager
        raise KeyError(view_name)


class ShardedWarehouse:
    """Coordinates N shard schedulers to global quiescence."""

    def __init__(self, shards: list[Shard], router: ShardRouter) -> None:
        if not shards:
            raise ValueError("ShardedWarehouse needs at least one shard")
        names = [name for shard in shards for name in shard.view_names]
        if len(set(names)) != len(names):
            raise ValueError(f"view registered on several shards: {names}")
        self.shards = shards
        self.router = router

    # ------------------------------------------------------------------
    # workload fan-out
    # ------------------------------------------------------------------

    def schedule_workload(self, factory: Callable[[], object]) -> None:
        """Schedule one identically-seeded workload copy per shard.

        ``factory`` must build a FRESH workload on every call: workload
        intents hold mutable RNGs and materialize against live source
        state at fire time, so sharing one object across engines would
        interleave draws and diverge the worlds.
        """
        for shard in self.shards:
            shard.engine.schedule_workload(factory())

    # ------------------------------------------------------------------
    # the coordinator loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Drive every shard to quiescence (min-clock interleaving).

        Each round picks the runnable shard with the smallest virtual
        clock and steps it once.  SC-barrier rule: a shard whose head
        unit is SC-bearing is deferred while some peer still holds
        messages committed before the schema change; if *every* active
        shard is deferred (circular wait), the shard with the earliest
        SC commit time is released.  Crashes raised by a shard's step
        are recovered per shard from its own journal.
        """
        while True:
            active = [
                shard for shard in self.shards if not self._quiescent(shard)
            ]
            if not active:
                break
            runnable: list[Shard] = []
            deferred: list[tuple[float, Shard]] = []
            for shard in active:
                barrier_at = self._sc_barrier_time(shard)
                if barrier_at is not None and self._peer_holds_earlier_work(
                    shard, barrier_at
                ):
                    shard.engine.metrics.barrier_deferrals += 1
                    deferred.append((barrier_at, shard))
                else:
                    runnable.append(shard)
            if not runnable:
                barrier_at, released = min(
                    deferred, key=lambda pair: (pair[0], pair[1].shard_id)
                )
                released.engine.metrics.barrier_releases += 1
                runnable = [released]
            shard = min(
                runnable,
                key=lambda s: (s.engine.clock.now, s.shard_id),
            )
            self._step(shard)
        for shard in self.shards:
            shard.scheduler.finish()

    def _step(self, shard: Shard) -> None:
        step_shard(shard)

    def _quiescent(self, shard: Shard) -> bool:
        return shard_quiescent(shard)

    def _sc_barrier_time(self, shard: Shard) -> float | None:
        return sc_barrier_time(shard)

    def _peer_holds_earlier_work(
        self, shard: Shard, barrier_at: float
    ) -> bool:
        """Does any peer still hold maintenance committed before the
        schema change at ``barrier_at``?  (The per-peer predicate is
        :func:`shard_blocks_barrier`, shared with the process runtime's
        coordinator which evaluates it from shipped status snapshots.)
        """
        return any(
            shard_blocks_barrier(peer, barrier_at)
            for peer in self.shards
            if peer is not shard
        )

    # ------------------------------------------------------------------
    # aggregate observability
    # ------------------------------------------------------------------

    def aggregate_makespan(self) -> float:
        """Completion time of the slowest shard (the scale-out headline:
        serial shards report summed busy time, parallel shards their
        makespan — the aggregate is the max across shards because the
        shards run side by side)."""
        return max(shard.engine.metrics.elapsed for shard in self.shards)

    def aggregate_metrics(self) -> Metrics:
        merged = Metrics.merge(shard.engine.metrics for shard in self.shards)
        merged.makespan = self.aggregate_makespan()
        return merged

    def committed_updates(self) -> frozenset:
        """Union over shards of every maintained ``(source, seqno)``."""
        refs: set = set()
        for shard in self.shards:
            refs.update(shard.scheduler.stats.processed_messages)
            if shard.recovery is not None:
                refs |= shard.recovery.installed_refs()
        return frozenset(refs)

    def manager_for(self, view_name: str):
        for shard in self.shards:
            if view_name in shard.view_names:
                return shard.manager_for(view_name)
        raise KeyError(view_name)

    def view_names(self) -> tuple[str, ...]:
        return tuple(
            name for shard in self.shards for name in shard.view_names
        )

    def extent_rows(self) -> dict[str, tuple]:
        """Canonical (sorted row tuples) extents, for oracle compares."""
        return {
            name: tuple(
                sorted(map(tuple, self.manager_for(name).mv.extent.rows()))
            )
            for name in self.view_names()
        }

    def horizon(self) -> float:
        """Largest virtual clock across shard worlds at quiescence."""
        return max(shard.engine.clock.now for shard in self.shards)

    def shard_clocks(self) -> dict[int, float]:
        """Per-shard virtual clock, for oracle compares against the
        process runtime (clocks are interleaving-invariant because
        shard worlds are independent)."""
        return {
            shard.shard_id: shard.engine.clock.now
            for shard in self.shards
        }

    def install_logs(self) -> dict[int, list]:
        return {
            shard.shard_id: shard.engine.install_log
            for shard in self.shards
        }

    def crash_report_count(self) -> int:
        return sum(len(shard.crash_reports) for shard in self.shards)
