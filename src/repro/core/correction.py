"""Dependency correction (Section 4.2).

Given the detected dependency graph, correction produces a *legal order*
(Definition 7): merge every cycle into one batch node (the updates of a
maintenance deadlock cannot be aborted — they are already committed at
the sources — so they are processed as one atomic batch), then
topologically sort and reorder the UMQ.

Correction operates on whole-UMQ snapshots; the Dyno scheduler re-runs
it whenever the schema-change flag is raised or a broken query aborts
the current maintenance (Section 4.3 extends the static algorithm to
the dynamic context exactly this way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sources.messages import UpdateMessage
from ..views.umq import MaintenanceUnit
from .detection import DetectionResult, detect


@dataclass
class CorrectionResult:
    """The corrected schedule plus accounting for the cost model."""

    units: list[MaintenanceUnit]
    detection: DetectionResult
    merges: int
    changed: bool

    @property
    def node_count(self) -> int:
        return self.detection.node_count

    @property
    def edge_count(self) -> int:
        return self.detection.edge_count


def correct(
    messages: list[UpdateMessage],
    view_query,
    rewritten_query: Callable[[UpdateMessage], object] | None = None,
    detection: DetectionResult | None = None,
) -> CorrectionResult:
    """Detect dependencies and compute a legal maintenance order.

    The returned units preserve FIFO order wherever dependencies allow;
    messages inside a merged batch keep their commit order so batch
    preprocessing (Section 5) can combine them correctly.  A caller
    holding an already-built graph (the incremental detection substrate)
    passes it as ``detection`` to skip the from-scratch build.
    """
    if detection is None:
        detection = detect(messages, view_query, rewritten_query)
    groups = detection.graph.legal_order()
    units = [
        MaintenanceUnit([messages[index] for index in group])
        for group in groups
    ]
    merges = sum(1 for group in groups if len(group) > 1)
    changed = [message for unit in units for message in unit] != messages
    return CorrectionResult(units, detection, merges, changed)


def merge_all(
    messages: list[UpdateMessage],
    view_query,
    detection: DetectionResult | None = None,
) -> CorrectionResult:
    """The simplistic alternative of Section 4.2: merge *everything*
    into one batch whenever a broken query occurs.

    Kept as a baseline; the paper argues (and our ablation bench
    confirms) that it loses intermediate view states and inflates both
    the batch cost and the chance of further aborts.
    """
    if detection is None:
        detection = detect(messages, view_query)
    units = [MaintenanceUnit(list(messages))] if messages else []
    return CorrectionResult(
        units, detection, merges=1 if len(messages) > 1 else 0, changed=True
    )
