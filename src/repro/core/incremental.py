"""Incremental detection substrate: footprint cache + live graph.

Every detection round — pessimistic pre-exec (Figure 6 line 1), every
broken-query abort, and every quarantine-deferral pass — used to rebuild
the full dependency graph from scratch: recompute every message
footprint and re-run the O(mn) CD sweep of Section 4.1.1.  This module
makes the cost of a round proportional to what *changed* since the last
round instead:

* :class:`FootprintCache` memoizes each message's normalized maintenance
  footprint under an *epoch* key (the view-definition versions plus the
  count of schema changes ever received).  A data update's footprint
  depends only on the view queries and the rename lineages, so in
  DU-heavy streams it is computed once per message, not once per round.
* :class:`IncrementalDependencyGraph` mirrors the UMQ through its
  mutation-listener hooks: ``receive`` adds one node and only the edges
  touching the new message (O(m) conflict tests for a DU, O(n) for a
  schema change), ``remove_head``/``remove_unit`` drop the departing
  nodes and splice the per-relation semantic chains around the gap (the
  parallel executor removes units from *any* position at dispatch), and
  ``replace_order`` remaps indices and recomputes only the
  (order-dependent) semantic edges.  A from-scratch rebuild — identical
  to :func:`~repro.core.dependencies.find_dependencies` and kept as the
  property-test oracle — remains the fallback for the cases incremental
  maintenance cannot shortcut:

  - a *lineage-affecting* message (rename/restructure) arrives, leaves,
    or is reordered: the :class:`~repro.core.dependencies.NameResolver`
    changes, so every normalized footprint may change;
  - a unit containing any schema change is removed from the head: its
    maintenance may have rewritten the view definition(s), so every
    footprint may change (the epoch catches the version bump and the
    rebuild re-derives the edges).  Mid-queue removal at *dispatch* time
    precedes the rewrite, so it only drops nodes; the scheduler calls
    :meth:`IncrementalDependencyGraph.rebuild` once the unit's rewrite
    actually commits.

  One subtlety: a schema change *committing at its source* can drift the
  source schemas that speculative rewrites consult, which can silently
  change the footprint of an *already queued* schema change.  On every
  (non-lineage) SC arrival the substrate therefore drops and re-tests
  all concurrent edges whose dependent endpoint is a schema change —
  O(m^2) conflict tests — while data-update footprints, which never
  consult source schemas, stay cached.

The substrate also answers the parallel executor's scheduling questions
(Definition 7 / Theorem 2: *any* topological order is legal, so units
with no path between them may run concurrently): :meth:`ready_units`
returns the antichain of units with no unfinished predecessor still in
the queue, and :meth:`unit_successors` the units a given unit blocks.
"""

from __future__ import annotations

from typing import Callable

from ..sources.messages import (
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    SchemaChange,
    UpdateMessage,
)
from ..views.umq import MaintenanceUnit, UpdateMessageQueue
from .dependencies import (
    Dependency,
    DependencyKind,
    Footprint,
    NameResolver,
    footprint_of_update,
)
from .detection import DetectionResult
from .graph import DependencyGraph

#: internal edge tags (absolute-index edge tuples carry one of these)
_CD = DependencyKind.CONCURRENT
_SD = DependencyKind.SEMANTIC


def lineage_affecting(message: UpdateMessage) -> bool:
    """Does this message extend a rename lineage (resolver input)?"""
    return isinstance(
        message.payload,
        (RenameRelation, RenameAttribute, RestructureRelations),
    )


class FootprintCache:
    """Normalized maintenance footprints, memoized per (message, epoch).

    ``epoch`` is a zero-argument callable returning a hashable key that
    must change whenever cached footprints could change for reasons the
    owner cannot see locally: the view-definition versions (bumped by
    every committed or speculative schema rewrite installed on the view)
    and the number of schema changes ever received (source schemas only
    drift when a schema change commits).  A changed epoch clears the
    cache wholesale; the substrate additionally clears it explicitly
    when the rename lineage set changes (normalization input).
    """

    def __init__(
        self,
        view_queries: Callable[[], object],
        rewritten_query: Callable[[UpdateMessage], object] | None = None,
        epoch: Callable[[], object] | None = None,
        metrics=None,
    ) -> None:
        self._view_queries = view_queries
        self._rewritten = rewritten_query
        self._epoch_fn = epoch
        self._epoch = epoch() if epoch is not None else None
        self._entries: dict[int, tuple[UpdateMessage, Footprint]] = {}
        self._metrics = metrics
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _validate_epoch(self) -> None:
        if self._epoch_fn is None:
            return
        current = self._epoch_fn()
        if current != self._epoch:
            self.clear()
            self._epoch = current

    def clear(self) -> None:
        if self._entries:
            self.invalidations += 1
        self._entries.clear()

    def discard(self, message: UpdateMessage) -> None:
        entry = self._entries.get(id(message))
        if entry is not None and entry[0] is message:
            del self._entries[id(message)]

    def footprint(
        self, message: UpdateMessage, resolver: NameResolver
    ) -> Footprint:
        """The normalized footprint of ``message`` (cached)."""
        self._validate_epoch()
        entry = self._entries.get(id(message))
        if entry is not None and entry[0] is message:
            self.hits += 1
            if self._metrics is not None:
                self._metrics.footprint_cache_hits += 1
            return entry[1]
        self.misses += 1
        if self._metrics is not None:
            self._metrics.footprint_cache_misses += 1
        footprint = footprint_of_update(
            message, self._view_queries(), self._rewritten, resolver
        ).normalized(resolver)
        self._entries[id(message)] = (message, footprint)
        return footprint


class IncrementalDependencyGraph:
    """A dependency graph maintained alongside the UMQ.

    Registers as a mutation listener on the queue and keeps a mirror of
    the flattened message list plus the CD/SD edge sets, in *absolute*
    node ids (``self._order`` lists the live ids in queue order, so
    removals anywhere never renumber surviving edges).  Semantic edges
    are derived from per-``(source, relation)`` touch chains, which lets
    a mid-queue departure splice its chain neighbours back together —
    exactly what a from-scratch build over the surviving messages would
    produce.  ``dependencies()`` exposes the edges in current queue
    positions, bit-identical to a from-scratch
    :func:`~repro.core.dependencies.find_dependencies` over the same
    messages.
    """

    def __init__(
        self,
        umq: UpdateMessageQueue,
        view_queries: Callable[[], object],
        rewritten_query: Callable[[UpdateMessage], object] | None = None,
        epoch: Callable[[], object] | None = None,
        metrics=None,
        attach: bool = True,
    ) -> None:
        self._umq = umq
        self._rewritten = rewritten_query
        self._metrics = metrics
        self.cache = FootprintCache(
            view_queries, rewritten_query, epoch, metrics
        )
        #: live absolute node ids in queue order
        self._order: list[int] = []
        #: absolute id -> message
        self._message_of: dict[int, UpdateMessage] = {}
        #: next absolute id handed to an arrival
        self._next_abs = 0
        #: lazy absolute id -> queue position map
        self._pos: dict[int, int] | None = None
        self._resolver = NameResolver([])
        self._lineage_count = 0
        #: absolute-index edges and the incident-edge registry
        self._cd: set[tuple[int, int]] = set()
        self._sd: set[tuple[int, int]] = set()
        self._by_node: dict[int, set[tuple[int, int, DependencyKind]]] = {}
        #: (source, relation) -> absolute ids touching it, queue order
        self._chains: dict[tuple[str, str], list[int]] = {}
        self._sc_by_abs: dict[int, UpdateMessage] = {}
        # -- counters ---------------------------------------------------
        self.rebuilds = 0
        self.incremental_updates = 0
        #: modeled work since the last ``consume_work`` drain
        self._work_full_nodes = 0
        self._work_full_edges = 0
        self._work_inc_nodes = 0
        self._work_inc_edges = 0
        if attach:
            umq.add_listener(self)
        self._rebuild(clear_cache=False)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def detach(self) -> None:
        """Unhook from the UMQ (when this substrate is replaced)."""
        self._umq.remove_listener(self)

    def rebuild(self) -> None:
        """Force a from-scratch rebuild.

        The parallel executor removes an SC-bearing unit from the queue
        at *dispatch* (before its maintenance runs) and calls this once
        the unit's view rewrite commits: by then every cached footprint
        and every concurrent edge may be stale.
        """
        self._rebuild(clear_cache=True)

    # ------------------------------------------------------------------
    # public views
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._order)

    @property
    def edge_count(self) -> int:
        return len(self._cd) + len(self._sd)

    def _positions(self) -> dict[int, int]:
        if self._pos is None:
            self._pos = {
                absolute: position
                for position, absolute in enumerate(self._order)
            }
        return self._pos

    def dependencies(self) -> list[Dependency]:
        """Edges in current queue positions (Definition 6 indices)."""
        position_of = self._positions()
        edges = [
            Dependency(position_of[before], position_of[after], _SD)
            for before, after in self._sd
        ]
        edges.extend(
            Dependency(position_of[before], position_of[after], _CD)
            for before, after in self._cd
        )
        return edges

    def detection(self) -> DetectionResult:
        """A :class:`DetectionResult` served from the live graph."""
        graph = DependencyGraph(self.node_count, self.dependencies())
        return DetectionResult(graph, graph.unsafe_dependencies())

    def footprint_at(self, index: int) -> Footprint:
        """Cached normalized footprint of the message at queue position
        ``index``."""
        return self.cache.footprint(
            self._message_of[self._order[index]], self._resolver
        )

    @property
    def resolver(self) -> NameResolver:
        return self._resolver

    def consume_work(self) -> tuple[int, int, int, int]:
        """Drain the modeled-work counters accrued since the last drain.

        Returns ``(full_nodes, full_edges, inc_nodes, inc_edges)``:
        nodes/edges processed by from-scratch rebuild fallbacks versus
        by incremental updates (node insertions, conflict tests, edge
        remaps).  The scheduler charges virtual detection time from
        these so the cost model keeps reflecting the work performed.
        """
        drained = (
            self._work_full_nodes,
            self._work_full_edges,
            self._work_inc_nodes,
            self._work_inc_edges,
        )
        self._work_full_nodes = 0
        self._work_full_edges = 0
        self._work_inc_nodes = 0
        self._work_inc_edges = 0
        return drained

    # ------------------------------------------------------------------
    # unit-level scheduling API (the parallel executor's questions)
    # ------------------------------------------------------------------

    def unit_dependencies(self) -> set[tuple[int, int]]:
        """Inter-unit ``(before_unit, after_unit)`` index pairs.

        A message-level edge between two messages of the *same* unit is
        internal (the unit is maintained atomically) and dropped.
        """
        unit_of: list[int] = []
        for unit_index, unit in enumerate(self._umq.units):
            unit_of.extend([unit_index] * len(unit))
        pairs: set[tuple[int, int]] = set()
        for dependency in self.dependencies():
            before = unit_of[dependency.before_index]
            after = unit_of[dependency.after_index]
            if before != after:
                pairs.add((before, after))
        return pairs

    def ready_units(self) -> list[int]:
        """Queue indices of units with no queued predecessor.

        These form an antichain of the unit dependency DAG: Theorem 2
        licenses maintaining them in any order, hence concurrently.
        Predecessors that already *left* the queue are the scheduler's
        to gate (it knows which are still running).
        """
        blocked = {after for _before, after in self.unit_dependencies()}
        return [
            index
            for index in range(len(self._umq.units))
            if index not in blocked
        ]

    def unit_successors(self, index: int) -> set[int]:
        """Unit indices that must wait for unit ``index`` to finish."""
        return {
            after
            for before, after in self.unit_dependencies()
            if before == index
        }

    # ------------------------------------------------------------------
    # edge bookkeeping (absolute indices)
    # ------------------------------------------------------------------

    def _edge_set(self, kind: DependencyKind) -> set[tuple[int, int]]:
        return self._cd if kind is _CD else self._sd

    def _add_edge(
        self, before: int, after: int, kind: DependencyKind
    ) -> None:
        edges = self._edge_set(kind)
        if (before, after) in edges:
            return
        edges.add((before, after))
        record = (before, after, kind)
        self._by_node.setdefault(before, set()).add(record)
        self._by_node.setdefault(after, set()).add(record)

    def _drop_edge(
        self, before: int, after: int, kind: DependencyKind
    ) -> None:
        self._edge_set(kind).discard((before, after))
        record = (before, after, kind)
        for node in (before, after):
            incident = self._by_node.get(node)
            if incident is not None:
                incident.discard(record)
                if not incident:
                    del self._by_node[node]

    def _drop_node(self, absolute: int) -> int:
        """Remove every edge incident to ``absolute``; return count."""
        incident = self._by_node.pop(absolute, set())
        for before, after, kind in incident:
            self._edge_set(kind).discard((before, after))
            other = after if before == absolute else before
            other_incident = self._by_node.get(other)
            if other_incident is not None:
                other_incident.discard((before, after, kind))
                if not other_incident:
                    del self._by_node[other]
        return len(incident)

    def _splice_chain(self, key: tuple[str, str], absolute: int) -> None:
        """Remove ``absolute`` from a touch chain, relinking neighbours.

        Dropping a mid-chain node turns its predecessor and successor
        into *consecutive* touches, which a from-scratch build would
        connect with a semantic edge — so we do too.
        """
        chain = self._chains.get(key)
        if chain is None:
            return
        position = chain.index(absolute)
        previous = chain[position - 1] if position > 0 else None
        following = (
            chain[position + 1] if position + 1 < len(chain) else None
        )
        if previous is not None:
            self._drop_edge(previous, absolute, _SD)
        if following is not None:
            self._drop_edge(absolute, following, _SD)
        if previous is not None and following is not None:
            self._add_edge(previous, following, _SD)
        del chain[position]
        if not chain:
            del self._chains[key]

    # ------------------------------------------------------------------
    # from-scratch rebuild (the fallback and the oracle's twin)
    # ------------------------------------------------------------------

    def _rebuild(self, clear_cache: bool) -> None:
        """Recompute the mirror from the queue, footprints via cache.

        ``clear_cache`` is set when the rename lineage set changed (the
        resolver is a normalization input the epoch cannot see); view
        version bumps clear the cache through the epoch check instead.
        """
        if clear_cache:
            self.cache.clear()
        messages = self._umq.messages()
        self._order = list(range(len(messages)))
        self._message_of = dict(enumerate(messages))
        self._next_abs = len(messages)
        self._pos = None
        self._resolver = NameResolver(messages)
        self._lineage_count = sum(
            1 for message in messages if lineage_affecting(message)
        )
        self._cd = set()
        self._sd = set()
        self._by_node = {}
        self._chains = {}
        self._sc_by_abs = {}

        for index, message in enumerate(messages):
            for relation in message.touched_relations():
                chain = self._chains.setdefault(
                    (message.source, relation), []
                )
                if chain:
                    self._add_edge(chain[-1], index, _SD)
                chain.append(index)
            if message.is_schema_change:
                self._sc_by_abs[index] = message

        for sc_abs, sc_message in self._sc_by_abs.items():
            change = sc_message.payload
            assert isinstance(change, SchemaChange)
            for other_abs, other in enumerate(messages):
                if other_abs == sc_abs:
                    continue
                if self.cache.footprint(other, self._resolver).conflicted_by(
                    sc_message.source, change, self._resolver
                ):
                    self._add_edge(sc_abs, other_abs, _CD)

        self.rebuilds += 1
        if self._metrics is not None:
            self._metrics.graph_rebuilds += 1
        self._work_full_nodes += len(messages)
        self._work_full_edges += self.edge_count

    # ------------------------------------------------------------------
    # UMQ listener protocol
    # ------------------------------------------------------------------

    def umq_received(self, message: UpdateMessage) -> None:
        if lineage_affecting(message):
            # The resolver gains a lineage link: every normalized
            # footprint may change, so may every concurrent edge.
            self._rebuild(clear_cache=True)
            return
        absolute = self._next_abs
        self._next_abs += 1
        self._order.append(absolute)
        self._message_of[absolute] = message
        if self._pos is not None:
            self._pos[absolute] = len(self._order) - 1
        self.incremental_updates += 1
        if self._metrics is not None:
            self._metrics.incremental_graph_updates += 1
        self._work_inc_nodes += 1

        for relation in message.touched_relations():
            chain = self._chains.setdefault(
                (message.source, relation), []
            )
            if chain:
                self._add_edge(chain[-1], absolute, _SD)
            chain.append(absolute)

        if message.is_schema_change:
            self._receive_schema_change(message, absolute)
        else:
            # O(m): only the queued schema changes can depend on a DU.
            footprint = self.cache.footprint(message, self._resolver)
            for sc_abs, sc_message in self._sc_by_abs.items():
                self._work_inc_edges += 1
                if footprint.conflicted_by(
                    sc_message.source, sc_message.payload, self._resolver
                ):
                    self._add_edge(sc_abs, absolute, _CD)

    def _receive_schema_change(
        self, message: UpdateMessage, absolute: int
    ) -> None:
        """O(n) sweep for a new (non-lineage) schema change.

        The arrival's source commit may have drifted the source schemas
        that speculative rewrites consult, so every edge whose dependent
        endpoint is a schema change is dropped and re-tested against a
        fresh footprint (the epoch already cleared the cache).
        """
        for sc_abs in self._sc_by_abs:
            for before, after, kind in list(
                self._by_node.get(sc_abs, ())
            ):
                if kind is _CD and after == sc_abs:
                    self._drop_edge(before, after, kind)
        change = message.payload
        assert isinstance(change, SchemaChange)
        # New SC against every queued footprint (O(n))...
        for other_abs in self._order[:-1]:
            other = self._message_of[other_abs]
            self._work_inc_edges += 1
            if self.cache.footprint(other, self._resolver).conflicted_by(
                message.source, change, self._resolver
            ):
                self._add_edge(absolute, other_abs, _CD)
        # ...every queued SC against the new footprint (O(m))...
        footprint = self.cache.footprint(message, self._resolver)
        for sc_abs, sc_message in self._sc_by_abs.items():
            self._work_inc_edges += 1
            if footprint.conflicted_by(
                sc_message.source, sc_message.payload, self._resolver
            ):
                self._add_edge(sc_abs, absolute, _CD)
        # ...and the queued-SC pairs re-tested with fresh footprints
        # (O(m^2)).
        for target_abs, target_sc in self._sc_by_abs.items():
            target_footprint = self.cache.footprint(
                target_sc, self._resolver
            )
            for source_abs, source_sc in self._sc_by_abs.items():
                if source_abs == target_abs:
                    continue
                self._work_inc_edges += 1
                if target_footprint.conflicted_by(
                    source_sc.source, source_sc.payload, self._resolver
                ):
                    self._add_edge(source_abs, target_abs, _CD)
        self._sc_by_abs[absolute] = message

    def _remove_span(self, index: int, count: int) -> None:
        """Drop the ``count`` nodes at queue positions ``index``.. and
        splice their chains; O(deg + chain length) per node."""
        dropped = 0
        removed = self._order[index : index + count]
        for absolute in removed:
            message = self._message_of.pop(absolute)
            for relation in message.touched_relations():
                self._splice_chain((message.source, relation), absolute)
            dropped += self._drop_node(absolute)
            self._sc_by_abs.pop(absolute, None)
        del self._order[index : index + count]
        self._pos = None
        self.incremental_updates += 1
        if self._metrics is not None:
            self._metrics.incremental_graph_updates += 1
        self._work_inc_nodes += count
        self._work_inc_edges += dropped

    def umq_removed_head(self, unit: MaintenanceUnit) -> None:
        if unit.has_schema_change:
            # The unit's maintenance may have rewritten the view
            # definition(s): every footprint may change.  The epoch
            # check inside the cache spots the version bump; lineage
            # departures additionally change the resolver.
            for message in unit:
                self.cache.discard(message)
            self._rebuild(
                clear_cache=any(
                    lineage_affecting(message) for message in unit
                )
            )
            return
        for message in unit:
            self.cache.discard(message)
        self._remove_span(0, len(unit.messages))

    def umq_removed_unit(
        self, unit: MaintenanceUnit, index: int
    ) -> None:
        """Mid-queue departure: the parallel executor dispatched a unit.

        Dispatch precedes maintenance, so no view rewrite has happened
        yet and surviving footprints are still valid — plain node drops
        suffice even for SC-bearing units (the scheduler calls
        :meth:`rebuild` after such a unit *commits*).  Removing a
        lineage link, however, changes the resolver for the survivors
        immediately, so that case falls back to a rebuild.
        """
        if any(lineage_affecting(message) for message in unit):
            for message in unit:
                self.cache.discard(message)
            self._rebuild(clear_cache=True)
            return
        for message in unit:
            self.cache.discard(message)
        start = sum(
            len(earlier) for earlier in self._umq.units[:index]
        )
        # The unit already left the queue, but our mirror still holds
        # it: its span starts where the survivors at ``index`` now sit.
        self._remove_span(start, len(unit.messages))

    def umq_requeued_front(self, unit: MaintenanceUnit) -> None:
        """An aborted unit re-entered at the head (rare abort path)."""
        self._rebuild(
            clear_cache=any(
                lineage_affecting(message) for message in unit
            )
        )

    def umq_reordered(self, units: list[MaintenanceUnit]) -> None:
        if self._lineage_count:
            # Rename chains make the resolver order-dependent; a
            # reorder can change every normalized footprint.
            self._rebuild(clear_cache=True)
            return
        new_messages = [
            message for unit in units for message in unit
        ]
        new_abs = {
            id(message): index
            for index, message in enumerate(new_messages)
        }
        old_to_new = {
            absolute: new_abs[id(self._message_of[absolute])]
            for absolute in self._order
        }
        remapped_cd = {
            (old_to_new[before], old_to_new[after])
            for before, after in self._cd
        }
        self._order = list(range(len(new_messages)))
        self._message_of = dict(enumerate(new_messages))
        self._next_abs = len(new_messages)
        self._pos = None
        self._cd = remapped_cd
        self._sd = set()
        self._by_node = {}
        self._chains = {}
        self._sc_by_abs = {}
        for before, after in remapped_cd:
            record = (before, after, _CD)
            self._by_node.setdefault(before, set()).add(record)
            self._by_node.setdefault(after, set()).add(record)
        # Semantic edges are order-dependent: recompute (O(n)).
        for index, message in enumerate(new_messages):
            for relation in message.touched_relations():
                chain = self._chains.setdefault(
                    (message.source, relation), []
                )
                if chain:
                    self._add_edge(chain[-1], index, _SD)
                chain.append(index)
            if message.is_schema_change:
                self._sc_by_abs[index] = message
        self.incremental_updates += 1
        if self._metrics is not None:
            self._metrics.incremental_graph_updates += 1
        self._work_inc_nodes += len(new_messages)
        self._work_inc_edges += len(remapped_cd)
