"""The parallel maintenance executor.

Definition 7 / Theorem 2 prove that *any* topological order of the
dependency graph is a legal maintenance order — so units with no path
between them need not merely be reorderable, they can be maintained
**concurrently**.  :class:`ParallelScheduler` exploits exactly that: it
consumes the incremental dependency graph's ready-set API to find the
antichain of currently-unblocked UMQ units and hands them to N simulated
workers (:mod:`repro.sim.workers`), with the virtual clock charging
*makespan* — per-worker timelines meeting at the critical path — instead
of summed serial cost.

Safety rules (each mirrors a serial-Dyno invariant):

* **gating** — a unit is dispatchable only when it has no predecessor in
  the dependency graph still queued (``ready_units``), no in-flight unit
  touching one of its ``(source, relation)`` keys (the semantic-edge
  condition, preserved across the dispatch boundary), and no quarantined
  source in its maintenance footprint;
* **barrier rule** — SC-bearing units (including batch units holding a
  schema change) run solo: they wait for every worker to drain and
  block dispatch while running.  Since every concurrent (CD) edge
  originates at a schema change, the barrier plus the touched-key check
  covers all inter-unit edges whose predecessor already left the queue.
  DU-only batch units — voluntary groups formed by a
  :class:`~repro.maintenance.grouping.BatchPolicy`, deferred-mode
  coalesces — carry only forward semantic edges and therefore stay
  leapfrog-eligible like any data update;
* **dispatch-order serialization** — the legal order actually realized
  is the dispatch order.  SWEEP compensation for a unit U therefore
  subtracts exactly the messages serialized *after* U: the queue
  snapshot at U's dispatch, arrivals while U runs, and units requeued by
  aborts while U runs (deduplicated), fed live through the view
  manager's ``pending_feed`` hook.  Units dispatched before U are never
  compensated away — each concurrent pair is compensated exactly once;
* **dispatch-order installation** — computed outcomes install in
  dispatch order, not completion order.  A unit's delta is computed
  relative to the units serialized before it; applying it while an
  earlier-dispatched unit is still in flight would write a view state
  that assumes the earlier delta is already there (transiently negative
  counts at best, silent drift at worst).  A unit finishing out of turn
  parks its prepared outcome (worker stays busy) until every
  earlier-dispatched unit has installed or requeued;
* **taint restart** — when a unit U requeues (abort or abandonment),
  every in-flight or parked unit that already consumed a query answer
  is restarted: its answers treated U as serialized *before* it (U was
  not in its pending overlay at compensation time), and U's requeue
  re-serializes U behind it.  Units that have consumed no answer yet
  are safe — their pending overlay is live and now includes U.  Worker
  events carry an assignment epoch so a restarted worker's stale
  events (delays, trips, retries, transfers) are inert;
* **abort isolation** — a broken query aborts only that worker's unit;
  the unit requeues at the front and the strategy's broken-query policy
  (correct / merge-all / skip) is applied once all workers drain, since
  queue-wide surgery under in-flight maintenance would be unsound.
  Outages (exhausted retries) quarantine the source and requeue the
  unit without raising the broken-query flag, as in the serial path;
* **coordination lag** — detection/dispatch work performed while workers
  run cannot advance the global clock (worker events would fire late and
  compensation would mis-date answers); it is charged to the metrics and
  to a coordinator-backlog watermark that delays subsequent dispatches.

Per-source **query batching** rides on the worker model: when a source's
query channel is saturated (``CostModel.source_channel_limit``), waiting
IN-list probes from different units coalesce into one combined round
trip charged ``query_base`` once, evaluated at one shared instant, and
split back per unit on answer (:class:`~repro.sim.workers.SourceChannel`).
"""

from __future__ import annotations

from ..sim import trace as trace_kinds
from ..sim.engine import WAREHOUSE_OWNER, QueryAnswer, RetryState
from ..sim.effects import Checkpoint, Delay, SourceQuery
from ..sim.workers import QueryJob, SourceChannel, Trip, WorkerPool, WorkerState
from ..sources.errors import (
    BrokenQueryError,
    SourceError,
    SourceUnavailableError,
    TransientSourceError,
)
from ..sources.messages import UpdateMessage
from ..views.manager import ViewManager
from ..views.umq import MaintenanceUnit
from .anomalies import AnomalyType
from .scheduler import DynoScheduler, SchedulerStats
from .strategies import PESSIMISTIC, BrokenQueryPolicy, Strategy


class ParallelScheduler(DynoScheduler):
    """Dyno with N workers draining the UMQ's ready antichain.

    ``workers=1`` degenerates to serial execution under the same
    event-driven machinery — the honest baseline arm for speedup
    measurements (identical dispatch overheads, identical batching
    rules with nobody to batch with).
    """

    def __init__(
        self,
        manager: ViewManager,
        strategy: Strategy = PESSIMISTIC,
        workers: int = 2,
        max_iterations: int = 1_000_000,
        batch_policy=None,
    ) -> None:
        super().__init__(
            manager,
            strategy,
            max_iterations=max_iterations,
            incremental_detection=True,
            batch_policy=batch_policy,
        )
        self.pool = WorkerPool(workers)
        self.channels: dict[str, SourceChannel] = {}
        #: dispatch-order commit FIFO: outcomes install strictly in
        #: this order, never in completion order
        self._commit_order: list[WorkerState] = []
        #: coordinator backlog: detection/dispatch work performed while
        #: workers run delays later dispatches instead of the clock
        self._coordinator_free_at = 0.0
        #: aborted units awaiting policy application at the next
        #: all-idle point (queue-wide surgery needs a quiet queue)
        self._pending_policies: list[tuple[MaintenanceUnit, SourceError]] = []
        #: an SC-bearing or batch unit is running solo
        self._barrier_in_flight = False
        #: dispatch audit for the safety property tests: one record per
        #: dispatch with the unit and everything in flight at that point
        self.dispatch_audit: list[dict] = []
        #: cache audit extending the dispatch invariants: one record per
        #: snapshot-cache serve, proving hits bypassed channel admission
        #: (no slot held) yet were answered at a single instant like any
        #: trip — replayed by the equivalence property tests
        self.cache_audit: list[dict] = []
        #: same audit for self-maintenance aux serves (channel-free,
        #: single-instant answers, zero trips)
        self.aux_audit: list[dict] = []
        self.umq.add_listener(self)

    def detach(self) -> None:
        super().detach()
        self.umq.remove_listener(self)

    # ------------------------------------------------------------------
    # UMQ listener: keep every in-flight overlay current
    # ------------------------------------------------------------------

    def umq_received(self, message: UpdateMessage) -> None:
        for worker in self.pool.busy_workers():
            worker.add_pending(message)

    def umq_requeued_front(self, unit: MaintenanceUnit) -> None:
        # A requeued abort is now serialized after everything in flight.
        for worker in self.pool.busy_workers():
            for message in unit:
                worker.add_pending(message)

    def umq_removed_head(self, unit: MaintenanceUnit) -> None:
        pass

    def umq_removed_unit(self, unit: MaintenanceUnit, index: int) -> None:
        pass

    def umq_reordered(self, units: list[MaintenanceUnit]) -> None:
        pass

    # ------------------------------------------------------------------
    # time accounting
    # ------------------------------------------------------------------

    def _charge(self, duration: float, kind: str) -> None:
        """Coordinator work: clock time when quiet, backlog when not.

        Advancing the global clock while workers hold scheduled events
        would evaluate their queries late (anachronism), so coordination
        performed mid-flight only delays future dispatches.
        """
        if duration <= 0:
            return
        if self.pool.any_busy:
            self.engine.metrics.charge(kind, duration)
            self._coordinator_free_at = (
                max(self._coordinator_free_at, self.engine.clock.now)
                + duration
            )
        else:
            super()._charge(duration, kind)

    def _charge_worker(
        self, worker: WorkerState, kind: str, duration: float
    ) -> None:
        self.engine.metrics.charge(kind, duration)
        if duration > 0:
            worker.busy_time += duration
            self.engine.metrics.worker_busy_time[worker.index] += duration

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _channel(self, source_name: str) -> SourceChannel:
        channel = self.channels.get(source_name)
        if channel is None:
            channel = SourceChannel(
                source_name, self.manager.cost.source_channel_limit
            )
            self.channels[source_name] = channel
        return channel

    @staticmethod
    def _is_barrier(unit: MaintenanceUnit) -> bool:
        """SC-bearing units run solo (every concurrent edge originates
        at a schema change).  DU-only batches — voluntary groups,
        deferred coalesces, SC-free merge-alls — carry only forward
        semantic edges, which ``ready_units`` plus the touched-key gate
        already enforce, so they stay leapfrog-eligible."""
        return unit.has_schema_change

    def _touched_keys(self, unit: MaintenanceUnit) -> set[tuple[str, str]]:
        return {
            (message.source, relation)
            for message in unit
            for relation in message.touched_relations()
        }

    def _quarantine_blocked(self, unit: MaintenanceUnit) -> bool:
        if not self._quarantined:
            return False
        substrate = self.substrate
        for message in unit:
            footprint = substrate.cache.footprint(
                message, substrate.resolver
            )
            if any(
                source in self._quarantined
                for source, _relation in footprint.relations
            ):
                return True
        return False

    def _pick_unit(self) -> MaintenanceUnit | None:
        """The earliest dispatchable unit, or ``None``.

        Scans the ready antichain in queue order and never leapfrogs a
        barrier unit that is only waiting for workers to drain — once an
        SC-bearing unit becomes the earliest ready unit, dispatch
        pauses behind it, bounding its starvation.
        """
        units = self.umq.units
        if not units:
            return None
        busy_keys: set[tuple[str, str]] = set()
        for running in self.pool.in_flight_units():
            busy_keys |= self._touched_keys(running)
        for index in self.substrate.ready_units():
            unit = units[index]
            if self._quarantine_blocked(unit):
                continue
            if self._is_barrier(unit):
                if self.pool.any_busy:
                    return None  # barrier: drain first, no leapfrogging
                return unit
            if self._touched_keys(unit) & busy_keys:
                continue
            return unit
        return None

    def _dispatch_round(self) -> int:
        """Hand ready units to idle workers; returns dispatch count."""
        if self._pending_policies:
            if self.pool.any_busy:
                return 0
            self._apply_pending_policies()
        if self._barrier_in_flight or self.umq.is_empty():
            return 0
        cost = self.manager.cost
        metrics = self.engine.metrics
        if self.strategy.pre_exec:
            self._charge(cost.detection_flag_check, "detection")
            if self.umq.test_and_clear_schema_change_flag():
                self.detect_and_correct()
        # Group safe runs across the whole queue (not just the head):
        # several workers can each take a batch this round.  In-flight
        # units already left the queue, so their overlays are untouched.
        self._group_safe_runs()
        if self.pool.idle_worker() is None:
            return 0
        # The ready-set scan: drained substrate mutations plus one
        # incremental-rate sweep of the live graph.
        self._charge(
            self._detection_work_cost(0, 0)
            + cost.detection_incremental(
                self.substrate.node_count, self.substrate.edge_count
            ),
            "detection",
        )
        dispatched = 0
        while not self._barrier_in_flight:
            worker = self.pool.idle_worker()
            if worker is None:
                break
            unit = self._pick_unit()
            if unit is None:
                break
            self._dispatch(worker, unit)
            dispatched += 1
        if (
            not dispatched
            and self.pool.all_idle
            and not self.umq.is_empty()
            and not self.substrate.ready_units()
        ):
            # Every queued unit has a queued predecessor: the
            # dependency graph holds a cycle (CD edges around schema
            # changes).  Serial Dyno dissolves cycles inside correct()
            # by merging each into one batch unit (Definition 7); the
            # parallel loop only reaches correction through the
            # pre-exec flag or an abort policy, so a cycle surfacing
            # between those points would deadlock the dispatcher.
            self.detect_and_correct()
            worker = self.pool.idle_worker()
            unit = self._pick_unit()
            if worker is not None and unit is not None:
                self._dispatch(worker, unit)
                dispatched += 1
        return dispatched

    def _dispatch(self, worker: WorkerState, unit: MaintenanceUnit) -> None:
        now = self.engine.clock.now
        self.stats.iterations += 1
        self.engine.crash_point("parallel.pre_dispatch")
        self.dispatch_audit.append(
            {
                "at": now,
                "unit": list(unit.messages),
                "in_flight": [
                    list(running.messages)
                    for running in self.pool.in_flight_units()
                ],
            }
        )
        self._charge(self.manager.cost.dispatch_overhead, "dispatch")
        self.umq.remove_unit(unit)
        # Everything still queued is serialized behind this unit.
        snapshot = self.umq.messages()
        # Re-read the clock: charging with an idle pool advances it.
        start_at = max(self.engine.clock.now, self._coordinator_free_at)
        worker.assign(unit, None, start_at, snapshot)
        worker.process = self.manager.compute_unit(
            unit, pending_feed=worker.pending_feed()
        )
        self._commit_order.append(worker)
        if self._is_barrier(unit):
            self._barrier_in_flight = True
        metrics = self.engine.metrics
        metrics.dispatched_units += 1
        self.pool.note_parallelism()
        if self.pool.peak_parallelism > metrics.peak_parallelism:
            metrics.peak_parallelism = self.pool.peak_parallelism
        self._resume_later(start_at, worker)
        self.engine.crash_point("parallel.post_dispatch")

    # ------------------------------------------------------------------
    # driving one worker's maintenance generator
    # ------------------------------------------------------------------

    def _resume_later(
        self, at: float, worker: WorkerState, payload: object = None
    ) -> None:
        """Schedule a process resume that is inert if the worker's unit
        is torn down (or the worker reassigned) before it fires."""
        generation = worker.generation
        self.engine.schedule(
            at,
            lambda: self._resume_if_current(worker, generation, payload),
            owner=WAREHOUSE_OWNER,
        )

    def _resume_if_current(
        self, worker: WorkerState, generation: int, payload: object = None
    ) -> None:
        if worker.generation != generation or worker.process is None:
            return
        self._advance_process(worker, payload=payload)

    def _advance_process(
        self,
        worker: WorkerState,
        payload: object = None,
        throw: BaseException | None = None,
    ) -> None:
        """Resume a worker's generator at the current instant and drive
        it until it needs time (Delay/SourceQuery) or finishes."""
        process = worker.process
        assert process is not None, "event for an idle worker"
        if isinstance(payload, QueryAnswer):
            # Consumed answers pin this unit's view of what ran before
            # it; a later requeue of any of those units taints it.
            worker.answers_seen += 1
        send_value = payload
        throw_exc = throw
        while True:
            try:
                if throw_exc is not None:
                    effect = process.throw(throw_exc)
                    throw_exc = None
                else:
                    effect = process.send(send_value)
            except StopIteration as stop:
                self._complete(worker, stop.value)
                return
            except BrokenQueryError as broken:
                self._abort(worker, broken)
                return
            send_value = None
            if isinstance(effect, Delay):
                self._charge_worker(worker, effect.kind, effect.duration)
                if effect.duration > 0:
                    self._resume_later(
                        self.engine.clock.now + effect.duration, worker
                    )
                    return
                continue  # zero-cost: keep driving inline
            if isinstance(effect, Checkpoint):
                send_value = self.engine.clock.now
                continue
            if isinstance(effect, SourceQuery):
                self._submit_query(worker, effect)
                return
            raise TypeError(f"unknown effect {effect!r}")

    def _submit_query(self, worker: WorkerState, effect: SourceQuery) -> None:
        if self._serve_from_aux(worker, effect):
            return
        if self._serve_from_cache(worker, effect):
            return
        job = QueryJob(
            worker,
            effect,
            RetryState(self.engine, effect),
            self.engine.query_request_cost(effect),
            generation=worker.generation,
        )
        self._enqueue_job(job)

    def _serve_from_cache(
        self, worker: WorkerState, effect: SourceQuery
    ) -> bool:
        """A cache hit never touches the source channel: no admission,
        no slot, no batching — the worker gets its answer after the
        (tiny) local serve cost.  ``answered_at`` is the serve instant,
        so the pending-overlay compensation treats the answer exactly
        like a real trip evaluated now: each concurrent message is
        compensated exactly once (the PR 3 invariant, extended)."""
        cache = self.engine.snapshot_cache
        if cache is None or not effect.cacheable:
            return False
        hit = cache.serve(
            self.engine.sources[effect.source_name], effect.query
        )
        if hit is None:
            return False
        now = self.engine.clock.now
        channel = self.channels.get(effect.source_name)
        self.cache_audit.append(
            {
                "at": now,
                "worker": worker.index,
                "source": effect.source_name,
                "patched_rows": hit.patched_rows,
                "channel_in_flight": (
                    channel.in_flight if channel is not None else 0
                ),
                "channel_waiting": (
                    len(channel.waiting) if channel is not None else 0
                ),
            }
        )
        worker.cache_serves += 1
        self.engine.tracer.record(
            now,
            trace_kinds.QUERY,
            f"{effect.source_name} -> {len(hit.table)} tuples "
            f"(cache, worker {worker.index})",
        )
        serve_cost = self.engine.cost_model.cache_serve(hit.patched_rows)
        self._charge_worker(worker, effect.kind, serve_cost)
        answer = QueryAnswer(hit.table, now)
        if serve_cost > 0:
            self._resume_later(now + serve_cost, worker, answer)
        else:
            self._advance_process(worker, payload=answer)
        return True

    def _serve_from_aux(
        self, worker: WorkerState, effect: SourceQuery
    ) -> bool:
        """An aux hit is channel-free exactly like a cache hit: no
        admission, no slot, no batching — the worker resumes after the
        (tiny) local serve cost with an answer pinned at the serve
        instant, so compensation and the dispatch-order install +
        taint-restart discipline treat it like any real trip's answer."""
        store = self.engine.selfmaint
        if store is None or not effect.cacheable:
            return False
        hit = store.serve(
            self.engine.sources[effect.source_name], effect.query
        )
        if hit is None:
            return False
        now = self.engine.clock.now
        channel = self.channels.get(effect.source_name)
        self.aux_audit.append(
            {
                "at": now,
                "worker": worker.index,
                "source": effect.source_name,
                "applied_rows": hit.applied_rows,
                "channel_in_flight": (
                    channel.in_flight if channel is not None else 0
                ),
                "channel_waiting": (
                    len(channel.waiting) if channel is not None else 0
                ),
            }
        )
        worker.aux_serves += 1
        self.engine.tracer.record(
            now,
            trace_kinds.QUERY,
            f"{effect.source_name} -> {len(hit.table)} tuples "
            f"(aux, worker {worker.index})",
        )
        serve_cost = self.engine.cost_model.aux_serve(hit.applied_rows)
        self._charge_worker(worker, effect.kind, serve_cost)
        answer = QueryAnswer(hit.table, now)
        if serve_cost > 0:
            self._resume_later(now + serve_cost, worker, answer)
        else:
            self._advance_process(worker, payload=answer)
        return True

    def _enqueue_job(self, job: QueryJob) -> None:
        channel = self._channel(job.effect.source_name)
        trip = channel.submit(job)
        if trip is not None:
            self._start_trip(channel, trip)

    def _resubmit(self, job: QueryJob) -> None:
        """Retry round: re-price the request (source state may have
        drifted) and rejoin the channel line."""
        if job.stale or job.worker.process is None:
            return  # the unit was torn down meanwhile
        job.request_cost = self.engine.query_request_cost(job.effect)
        self._enqueue_job(job)

    def _start_trip(self, channel: SourceChannel, trip: Trip) -> None:
        now = self.engine.clock.now
        metrics = self.engine.metrics
        trip.started_at = now
        combined = trip.combined_request_cost(
            self.manager.cost.query_base
        )
        # One combined round trip; every participant waits it out.
        metrics.charge(trip.jobs[0].effect.kind, combined)
        for job in trip.jobs:
            if combined > 0:
                job.worker.busy_time += combined
                metrics.worker_busy_time[job.worker.index] += combined
        metrics.source_round_trips += 1
        for job in trip.jobs:
            # Any wire trip (retries and combined batch trips included)
            # disqualifies the participating unit from counting as
            # self-maintained at install time.
            job.worker.wire_trips += 1
        if trip.is_batch:
            metrics.batch_round_trips += 1
            metrics.batched_queries += len(trip.jobs)
        trip.answer_at = now + combined
        self.engine.schedule(
            trip.answer_at,
            lambda: self._trip_answered(channel, trip),
            owner=WAREHOUSE_OWNER,
        )

    def _trip_answered(self, channel: SourceChannel, trip: Trip) -> None:
        """The shared answer instant: evaluate every participant's query
        against the source's current state (clock == answer time, so
        compensation sees exactly the commits that preceded it)."""
        now = self.engine.clock.now
        metrics = self.engine.metrics
        channel.release()
        for job in trip.jobs:
            if job.stale or job.worker.process is None:
                # The unit was torn down after this trip departed
                # (abort, abandonment, or taint restart) — the answer
                # has no consumer.
                continue
            try:
                result = self.engine.evaluate_query(job.effect)
            except TransientSourceError as exc:
                elapsed = getattr(exc, "elapsed", 0.0)
                if elapsed > 0:
                    self._charge_worker(
                        job.worker, job.effect.kind, elapsed
                    )
                self.engine.tracer.record(
                    now, trace_kinds.FAULT, str(exc)
                )
                try:
                    pause = job.retry.on_transient(exc, now)
                except SourceUnavailableError as down:
                    self._abandon(job.worker, down)
                    continue
                self.engine.schedule(
                    now + elapsed + pause,
                    lambda j=job: self._resubmit(j),
                    owner=WAREHOUSE_OWNER,
                )
                continue
            except BrokenQueryError as broken:
                metrics.broken_queries += 1
                self.engine.tracer.record(
                    now, trace_kinds.BROKEN, str(broken)
                )
                # In-exec detection: thrown into this worker's process
                # only — the other participants keep their answers.
                self._advance_process(job.worker, throw=broken)
                continue
            transfer = self.engine.transfer_cost(result)
            self._charge_worker(job.worker, job.effect.kind, transfer)
            answer = QueryAnswer(result, now)
            if transfer > 0:
                self._resume_later(now + transfer, job.worker, answer)
            else:
                self._advance_process(job.worker, payload=answer)
        follow_up = channel.next_trip()
        if follow_up is not None:
            self._start_trip(channel, follow_up)

    # ------------------------------------------------------------------
    # unit completion / abort / abandonment
    # ------------------------------------------------------------------

    def _finish_barrier(self, unit: MaintenanceUnit) -> None:
        if self._is_barrier(unit):
            self._barrier_in_flight = False

    def _complete(self, worker: WorkerState, outcome: object) -> None:
        """Park the prepared outcome; install when its turn comes.

        Outcomes install strictly in dispatch order: a unit's delta
        assumes every earlier-dispatched unit's delta is already in the
        view, so installing out of order would transiently corrupt the
        extent — and would make an earlier unit's requeue unrecoverable.
        The worker stays busy while parked, keeping the unit visible to
        the dispatch gate, the barrier rule, and taint restarts.
        """
        worker.outcome = outcome
        worker.outcome_ready = True
        self._drain_commit_queue()

    def _drain_commit_queue(self) -> None:
        while self._commit_order and self._commit_order[0].outcome_ready:
            worker = self._commit_order[0]
            unit = worker.unit
            assert unit is not None
            self.engine.crash_point("parallel.pre_install")
            self._commit_order.pop(0)
            self.manager.install_unit(worker.outcome, unit)
            if not unit.has_schema_change:
                self.engine.metrics.data_unit_rounds += 1
                if worker.wire_trips == 0:
                    self.engine.metrics.self_maintained_units += 1
            worker.release()
            self.engine.metrics.maintenance_rounds += 1
            self.stats.processed_messages.extend(
                (message.source, message.seqno) for message in unit
            )
            self.engine.crash_point("parallel.post_install")
            self._finish_barrier(unit)
            if unit.has_schema_change:
                # The rewrite committed: every cached footprint and
                # every concurrent edge may be stale now (serial
                # head-removal gets this rebuild from the UMQ listener;
                # dispatch removed this unit before its maintenance
                # ran).
                self.substrate.rebuild()
            self._last_broken_unit_ids = None
            self._maybe_checkpoint()

    def _abort(self, worker: WorkerState, broken: BrokenQueryError) -> None:
        now = self.engine.clock.now
        unit = worker.unit
        assert unit is not None
        metrics = self.engine.metrics
        wasted = now - worker.dispatched_at
        metrics.aborts += 1
        metrics.abort_cost += wasted
        metrics.anomalies[
            AnomalyType.SC_CONFLICTS_WITH_M_SC
            if unit.has_schema_change
            else AnomalyType.SC_CONFLICTS_WITH_M_DU
        ] += 1
        self.stats.abort_events.append((now, unit.describe()))
        self.engine.tracer.record(
            now,
            trace_kinds.ABORT,
            f"wasted {wasted:.3f}s on {unit.describe()}",
        )
        self._teardown(worker)
        self._restart_tainted()
        self.umq.requeue_front(unit)
        self._pending_policies.append((unit, broken))
        self._drain_commit_queue()

    def _abandon(
        self, worker: WorkerState, down: SourceUnavailableError
    ) -> None:
        """An outage, not an anomaly: quarantine and requeue quietly."""
        now = self.engine.clock.now
        unit = worker.unit
        assert unit is not None
        self.engine.tracer.record(
            now,
            trace_kinds.FAULT,
            f"abandoned {unit.describe()} after "
            f"{now - worker.dispatched_at:.3f}s: {down}",
        )
        self._teardown(worker)
        self._restart_tainted()
        self.umq.requeue_front(unit)
        self._classify_transient(down)
        self._drain_commit_queue()

    def _restart_tainted(self) -> None:
        """Restart every dispatched unit that consumed a query answer.

        Called when a unit U requeues: U is re-serialized *behind* the
        in-flight units, but any unit that already consumed an answer
        compensated that answer with U absent from its pending overlay
        — it treated U as serialized before itself, which U's requeue
        just falsified.  Its partial (or parked) computation is
        discarded and the unit requeued for a clean pass.  Units with
        no answers consumed are untouched: their live pending overlay
        picks U up via the requeue listener before any compensation
        runs.
        """
        tainted = [
            candidate
            for candidate in self.pool.workers
            if candidate.unit is not None and candidate.answers_seen > 0
        ]
        for candidate in tainted:
            unit = candidate.unit
            self.stats.tainted_restarts += 1
            self.engine.tracer.record(
                self.engine.clock.now,
                trace_kinds.ABORT,
                f"taint restart of {unit.describe()} "
                f"(worker {candidate.index})",
            )
            self._teardown(candidate)
            self.umq.requeue_front(unit)

    def _teardown(self, worker: WorkerState) -> None:
        process = worker.process
        if process is not None:
            process.close()
        if worker in self._commit_order:
            self._commit_order.remove(worker)
        unit = worker.release()
        self._finish_barrier(unit)

    def _apply_pending_policies(self) -> None:
        """All workers idle: apply the broken-query policy for each
        abort that happened since the last quiet point, in abort order
        (the serial ``_handle_broken_query`` tail, minus classification
        — only genuine broken queries are parked here)."""
        pending = self._pending_policies
        self._pending_policies = []
        for unit, broken in pending:
            self.stats.genuine_broken_flags += 1
            assert isinstance(broken, BrokenQueryError)
            policy = self.strategy.on_broken_query
            if unit not in self.umq.units:
                # A previous policy in this drain absorbed the unit
                # (merge-all / correction cycle-merge); nothing left to
                # act on.
                continue
            if policy is BrokenQueryPolicy.SKIP:
                self.umq.remove_unit(unit)
                journal = getattr(self.manager, "journal", None)
                if journal is not None:
                    journal.record_skip(unit)
                self.stats.skipped_updates += 1
                continue
            if policy is BrokenQueryPolicy.MERGE_ALL:
                self._merge_whole_queue()
                continue
            unit_ids = tuple(id(message) for message in unit)
            repeat = unit_ids == self._last_broken_unit_ids
            self._last_broken_unit_ids = unit_ids
            self.detect_and_correct()
            still_head = (
                not self.umq.is_empty()
                and tuple(id(message) for message in self.umq.head())
                == unit_ids
            )
            if repeat and still_head:
                self._force_progress(broken.source)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------

    def _step_impl(self) -> bool:
        """Dispatch what is ready, then advance to the next event.

        Returns ``False`` at quiescence (nothing running, nothing
        queued and dispatchable, nothing scheduled).  Invoked through
        the base class's :meth:`~repro.core.scheduler.DynoScheduler
        .step`, which wraps every step with plan-cache accounting."""
        self._sync_fault_stats()
        self._lift_due_quarantines()
        progressed = self._dispatch_round() > 0
        if self.engine.advance_to_next_event():
            return True
        if progressed:
            return True
        if self.pool.any_busy:
            # Busy workers always hold a scheduled event; reaching here
            # means the heap and the pool disagree.
            raise RuntimeError("parallel executor stalled with busy workers")
        if not self.umq.is_empty():
            if self._pending_policies:
                return True  # next round applies the policies
            if self._quarantined:
                self._wait_for_recovery()
                return True
        return False

    def run(self) -> SchedulerStats:
        while self.stats.iterations < self.max_iterations:
            if not self.step():
                break
        return self.finish()

    def finish(self) -> SchedulerStats:
        """Post-quiescence epilogue (see
        :meth:`~repro.core.scheduler.DynoScheduler.finish`): stamps the
        makespan and peak parallelism exactly as :meth:`run` would, so
        coordinators driving :meth:`step` directly report identically."""
        metrics = self.engine.metrics
        metrics.makespan = self.engine.clock.now
        metrics.peak_parallelism = self.pool.peak_parallelism
        self._sync_fault_stats()
        return self.stats
