"""The dependency graph and its algorithms.

Nodes are queue positions of the updates in the UMQ; edges are
dependencies oriented *must-run-before*.  Two classic algorithms, both
implemented iteratively (no recursion limits on large queues):

* Tarjan's strongly-connected components [16] — a cycle in the graph is
  a maintenance deadlock that cannot be aborted (the source updates are
  committed), so each non-trivial SCC is *merged* into one batch node;
* Kahn topological sort with a position-ordered heap — produces the
  legal order (Definition 7) while preserving the original FIFO order
  among unconstrained updates, so the view visits as many intermediate
  states as possible (Section 4.2's argument against blind merging).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from .dependencies import Dependency, DependencyKind


@dataclass
class DependencyGraph:
    """A dependency graph over ``node_count`` queued updates."""

    node_count: int
    dependencies: list[Dependency] = field(default_factory=list)

    def __post_init__(self) -> None:
        for dependency in self.dependencies:
            self._check(dependency)

    def _check(self, dependency: Dependency) -> None:
        for index in (dependency.before_index, dependency.after_index):
            if not 0 <= index < self.node_count:
                raise ValueError(
                    f"dependency touches node {index}, graph has "
                    f"{self.node_count} nodes"
                )

    def add(self, dependency: Dependency) -> None:
        self._check(dependency)
        self.dependencies.append(dependency)

    @property
    def edge_count(self) -> int:
        return len(self.dependencies)

    def successors(self) -> list[list[int]]:
        adjacency: list[list[int]] = [[] for _ in range(self.node_count)]
        for dependency in self.dependencies:
            adjacency[dependency.before_index].append(dependency.after_index)
        return adjacency

    def unsafe_dependencies(self) -> list[Dependency]:
        """Dependencies violating the current queue order (Def. 6)."""
        return [
            dependency
            for dependency in self.dependencies
            if dependency.is_unsafe()
        ]

    def has_unsafe(self) -> bool:
        return any(d.is_unsafe() for d in self.dependencies)

    def edges_of_kind(self, kind: DependencyKind) -> list[Dependency]:
        return [d for d in self.dependencies if d.kind is kind]

    # ------------------------------------------------------------------
    # Tarjan SCC (iterative)
    # ------------------------------------------------------------------

    def strongly_connected_components(self) -> list[list[int]]:
        """SCCs in reverse topological order, members sorted ascending."""
        adjacency = self.successors()
        index_counter = 0
        stack: list[int] = []
        on_stack = [False] * self.node_count
        indices = [-1] * self.node_count
        lowlinks = [0] * self.node_count
        components: list[list[int]] = []

        for root in range(self.node_count):
            if indices[root] != -1:
                continue
            # Iterative Tarjan with an explicit work stack of
            # (node, iterator position).
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                node, position = work[-1]
                if position == 0:
                    indices[node] = index_counter
                    lowlinks[node] = index_counter
                    index_counter += 1
                    stack.append(node)
                    on_stack[node] = True
                advanced = False
                neighbours = adjacency[node]
                while position < len(neighbours):
                    successor = neighbours[position]
                    position += 1
                    if indices[successor] == -1:
                        work[-1] = (node, position)
                        work.append((successor, 0))
                        advanced = True
                        break
                    if on_stack[successor]:
                        lowlinks[node] = min(
                            lowlinks[node], indices[successor]
                        )
                if advanced:
                    continue
                work.pop()
                if lowlinks[node] == indices[node]:
                    component: list[int] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
                if work:
                    parent, _ = work[-1]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
        return components

    # ------------------------------------------------------------------
    # condensation + stable topological sort
    # ------------------------------------------------------------------

    def legal_order(self) -> list[list[int]]:
        """The corrected maintenance order (Theorem 2 + cycle merge).

        Returns groups of original queue positions: singleton groups are
        ordinary updates, larger groups are merged batch nodes.  The
        order satisfies every dependency; ties are broken by the
        smallest original position so unconstrained updates keep their
        FIFO order.
        """
        components = self.strongly_connected_components()
        component_of = [0] * self.node_count
        for component_id, members in enumerate(components):
            for member in members:
                component_of[member] = component_id

        successors: list[set[int]] = [set() for _ in components]
        indegree = [0] * len(components)
        for dependency in self.dependencies:
            before = component_of[dependency.before_index]
            after = component_of[dependency.after_index]
            if before != after and after not in successors[before]:
                successors[before].add(after)
                indegree[after] += 1

        heap: list[tuple[int, int]] = []
        for component_id, members in enumerate(components):
            if indegree[component_id] == 0:
                heapq.heappush(heap, (members[0], component_id))

        ordered: list[list[int]] = []
        while heap:
            _position, component_id = heapq.heappop(heap)
            ordered.append(components[component_id])
            for successor in successors[component_id]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    heapq.heappush(
                        heap, (components[successor][0], successor)
                    )
        if len(ordered) != len(components):  # pragma: no cover
            raise AssertionError(
                "condensation was not acyclic; Tarjan SCC is broken"
            )
        return ordered

    def cycle_count(self) -> int:
        """Number of non-trivial SCCs (merged batches)."""
        return sum(
            1
            for component in self.strongly_connected_components()
            if len(component) > 1
        )
