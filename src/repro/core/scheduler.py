"""Dyno: the dynamic reordering scheduler (Figures 6 and 7).

The scheduler is the paper's main loop:

1. (pessimistic only) atomically test-and-clear the
   ``NewSchemaChangeFlag``; if set, run pre-exec detection and
   correction over the whole UMQ — the O(1) fast path means DU-only
   streams pay essentially nothing (Figure 8);
2. maintain the head unit by driving its maintenance process against
   the simulation engine;
3. if the maintenance finished, commit: remove the head and continue;
4. if a query broke mid-flight (in-exec detection — the engine throws
   :class:`~repro.sources.errors.BrokenQueryError` into the process),
   abort: discard the partial work (counted as *abort cost*), apply the
   strategy's broken-query policy (correct / merge-all / skip) and loop.

The loop also plays the UMQ-manager role of Figure 7 implicitly: the
wrappers enqueue messages and raise the flag as autonomous commits fire
inside the engine's time windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import trace as trace_kinds
from ..sim.effects import Delay
from ..sim.engine import SimEngine
from ..sources.errors import BrokenQueryError
from ..sources.messages import UpdateMessage
from ..views.manager import ViewManager
from ..views.umq import MaintenanceUnit
from .anomalies import AnomalyType
from .correction import CorrectionResult, correct, merge_all
from .strategies import PESSIMISTIC, BrokenQueryPolicy, Strategy


@dataclass
class SchedulerStats:
    """Dyno-level counters complementing the engine metrics."""

    iterations: int = 0
    corrections: int = 0
    forced_merges: int = 0
    skipped_updates: int = 0
    abort_events: list[tuple[float, str]] = field(default_factory=list)


class DynoScheduler:
    """Drives a :class:`ViewManager` under one strategy."""

    def __init__(
        self,
        manager: ViewManager,
        strategy: Strategy = PESSIMISTIC,
        max_iterations: int = 1_000_000,
        defer_du_interval: float | None = None,
    ) -> None:
        """``defer_du_interval`` enables *deferred* data-update
        maintenance (Colby et al. [5] in the paper's related work): pure
        data updates accumulate and are maintained as one coalesced
        batch every ``interval`` virtual seconds — fewer, bigger view
        refreshes, trading staleness for refresh cost.  Schema changes
        are never deferred: the moment one is queued, ordinary Dyno
        processing takes over.
        """
        self.manager = manager
        self.strategy = strategy
        self.max_iterations = max_iterations
        self.defer_du_interval = defer_du_interval
        self.stats = SchedulerStats()
        self._last_broken_unit_ids: tuple[int, ...] | None = None
        self._next_deferred_refresh = (
            defer_du_interval if defer_du_interval is not None else 0.0
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @property
    def engine(self) -> SimEngine:
        return self.manager.engine

    @property
    def umq(self):
        return self.manager.umq

    def _speculative_rewrite(self, message: UpdateMessage):
        """Footprint helper: what would the view(s) look like after this
        schema change?  VS is pure, so we can ask without committing."""
        return self.manager.speculative_queries(message)

    def _charge(self, duration: float, kind: str) -> None:
        if duration > 0:
            self.engine.perform(Delay(duration, kind))

    # ------------------------------------------------------------------
    # detection + correction round
    # ------------------------------------------------------------------

    def detect_and_correct(self) -> CorrectionResult:
        """Lines 4-5 of Figure 6: build the graph, fix the order."""
        messages = self.umq.messages()
        result = correct(
            messages,
            self.manager.maintenance_queries,
            rewritten_query=self._speculative_rewrite,
        )
        # Install the corrected order before charging the detection
        # delay: commits firing inside the delay window must append
        # behind the corrected schedule, not invalidate it.
        self.umq.replace_order(result.units)
        cost = self.manager.cost
        self._charge(
            cost.detection(result.node_count, result.edge_count)
            + cost.correction(result.node_count, result.edge_count),
            "detection",
        )
        metrics = self.manager.metrics
        metrics.detection_rounds += 1
        metrics.graph_builds += 1
        metrics.cycle_merges += result.merges
        self.stats.corrections += 1
        self.engine.tracer.record(
            self.engine.clock.now,
            trace_kinds.CORRECTION,
            f"{result.node_count} nodes, {result.edge_count} edges, "
            f"{result.merges} merges",
        )
        return result

    def _merge_whole_queue(self) -> None:
        result = merge_all(
            self.umq.messages(), self.manager.maintenance_queries
        )
        cost = self.manager.cost
        self._charge(
            cost.correction(result.node_count, result.edge_count),
            "detection",
        )
        self.umq.replace_order(result.units)
        self.manager.metrics.cycle_merges += result.merges

    def _force_progress(self, broken_source: str) -> None:
        """Safety valve for repeat-breaking heads.

        If the same head unit breaks twice and correction does not
        change the schedule (possible when the conflict only exists
        against the *rewritten* definition mid-flight), merge the head
        with the schema changes of the breaking source so the batch is
        maintained atomically.  This preserves Dyno's termination
        argument (Section 4.4) under adversarial interleavings.
        """
        units = list(self.umq.units)
        head = units[0]
        absorbed: list[MaintenanceUnit] = [head]
        rest: list[MaintenanceUnit] = []
        for unit in units[1:]:
            if any(
                message.is_schema_change and message.source == broken_source
                for message in unit
            ):
                absorbed.append(unit)
            else:
                rest.append(unit)
        if len(absorbed) == 1:
            # Nothing to absorb (the breaking change is not queued yet):
            # wait for it to arrive before retrying; with nothing even
            # scheduled there is nothing to merge either, so just retry
            # (the max_iterations guard bounds the degenerate case).
            self.engine.advance_to_next_event()
            return
        merged = MaintenanceUnit.merged(absorbed)
        self.umq.replace_order([merged] + rest)
        self.stats.forced_merges += 1

    # ------------------------------------------------------------------
    # the Dyno loop
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """One scheduling decision: maintain one unit, or advance to the
        next pending commit when the queue is idle.

        Returns ``False`` when fully quiescent (nothing queued, nothing
        scheduled).  Useful for driving the system incrementally —
        monitoring dashboards, interleaved test assertions — instead of
        running to completion.
        """
        metrics = self.manager.metrics
        cost = self.manager.cost
        if self.umq.is_empty():
            return self.engine.advance_to_next_event()
        if self.defer_du_interval is not None and self._defer_step():
            return True
        self.stats.iterations += 1

        # Line 1: pessimistic pre-exec detection behind the flag.
        if self.strategy.pre_exec:
            self._charge(cost.detection_flag_check, "detection")
            if self.umq.test_and_clear_schema_change_flag():
                self.detect_and_correct()
                if self.umq.is_empty():
                    return True

        unit = self.umq.head()
        started_at = self.engine.clock.now
        process = self.manager.build_maintenance(unit)
        try:
            self.engine.run_process(process)
        except BrokenQueryError as broken:
            wasted = self.engine.clock.now - started_at
            metrics.aborts += 1
            metrics.abort_cost += wasted
            metrics.anomalies[
                AnomalyType.SC_CONFLICTS_WITH_M_SC
                if unit.has_schema_change
                else AnomalyType.SC_CONFLICTS_WITH_M_DU
            ] += 1
            self.stats.abort_events.append(
                (self.engine.clock.now, unit.describe())
            )
            self.engine.tracer.record(
                self.engine.clock.now,
                trace_kinds.ABORT,
                f"wasted {wasted:.3f}s on {unit.describe()}",
            )
            self._handle_broken_query(unit, broken)
            return True
        # Success: line 12, remove the head.
        self._last_broken_unit_ids = None
        self.umq.remove_head()
        return True

    def _defer_step(self) -> bool:
        """Deferred-mode gate: postpone pure-DU queues until due.

        Returns True when this step was consumed by deferral (waited or
        coalesced); False to fall through to ordinary processing.
        """
        if any(
            message.is_schema_change for message in self.umq.messages()
        ):
            return False  # SCs take priority: normal Dyno processing
        now = self.engine.clock.now
        next_event = self.engine.next_event_time()
        if now < self._next_deferred_refresh:
            if next_event is not None and next_event < self._next_deferred_refresh:
                self.engine.advance_to_next_event()
            else:
                self.engine.advance_to(self._next_deferred_refresh)
            return True
        # Due: coalesce every queued DU into one batch unit.
        messages = self.umq.messages()
        if len(messages) > 1:
            self.umq.replace_order([MaintenanceUnit(list(messages))])
        self._next_deferred_refresh = now + self.defer_du_interval
        return False  # fall through and maintain the coalesced batch

    def run(self) -> SchedulerStats:
        """Process until the UMQ is empty and no commits are pending."""
        while self.stats.iterations < self.max_iterations:
            if not self.step():
                break  # quiescent
        return self.stats

    def _handle_broken_query(
        self, unit: MaintenanceUnit, broken: BrokenQueryError
    ) -> None:
        policy = self.strategy.on_broken_query
        if policy is BrokenQueryPolicy.SKIP:
            self.umq.remove_head()
            self.stats.skipped_updates += 1
            return
        if policy is BrokenQueryPolicy.MERGE_ALL:
            self._merge_whole_queue()
            return
        # Dyno: correct.  Detect the repeat-break case first.
        unit_ids = tuple(id(message) for message in unit)
        repeat = unit_ids == self._last_broken_unit_ids
        self._last_broken_unit_ids = unit_ids
        self.detect_and_correct()
        still_head = (
            not self.umq.is_empty()
            and tuple(id(message) for message in self.umq.head())
            == unit_ids
        )
        if repeat and still_head:
            self._force_progress(broken.source)
