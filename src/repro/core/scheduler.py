"""Dyno: the dynamic reordering scheduler (Figures 6 and 7).

The scheduler is the paper's main loop:

1. (pessimistic only) atomically test-and-clear the
   ``NewSchemaChangeFlag``; if set, run pre-exec detection and
   correction over the whole UMQ — the O(1) fast path means DU-only
   streams pay essentially nothing (Figure 8);
2. maintain the head unit by driving its maintenance process against
   the simulation engine;
3. if the maintenance finished, commit: remove the head and continue;
4. if a query broke mid-flight (in-exec detection — the engine throws
   :class:`~repro.sources.errors.BrokenQueryError` into the process),
   abort: discard the partial work (counted as *abort cost*), apply the
   strategy's broken-query policy (correct / merge-all / skip) and loop.

The loop also plays the UMQ-manager role of Figure 7 implicitly: the
wrappers enqueue messages and raise the flag as autonomous commits fire
inside the engine's time windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import trace as trace_kinds
from ..sim.effects import Delay
from ..sim.engine import SimEngine
from ..sources.errors import (
    BrokenQueryError,
    SourceError,
    SourceUnavailableError,
    TransientSourceError,
)
from ..maintenance.grouping import (
    BatchPolicy,
    find_safe_runs,
    merge_runs,
)
from ..sources.messages import UpdateMessage
from ..views.manager import ViewManager
from ..views.umq import MaintenanceUnit
from .anomalies import AnomalyType
from .correction import CorrectionResult, correct, merge_all
from .dependencies import NameResolver, find_dependencies, footprint_of_update
from .incremental import IncrementalDependencyGraph
from .strategies import PESSIMISTIC, BrokenQueryPolicy, Strategy

#: fallback quarantine length when neither the failure nor the retry
#: policy carries a recovery hint
DEFAULT_QUARANTINE_PROBE = 2.0


@dataclass
class SchedulerStats:
    """Dyno-level counters complementing the engine metrics."""

    iterations: int = 0
    corrections: int = 0
    forced_merges: int = 0
    skipped_updates: int = 0
    abort_events: list[tuple[float, str]] = field(default_factory=list)
    #: ``(source, seqno)`` of every message whose maintenance committed
    #: (order = commit order; the parallel equivalence tests compare the
    #: *sets* against the serial oracle)
    processed_messages: list[tuple[str, int]] = field(default_factory=list)
    # -- fault handling (mirrors of engine metrics + scheduler-only) ---
    #: maintenance-query retries performed by the engine
    retries: int = 0
    #: virtual time spent in retry backoff sleeps
    backoff_time: float = 0.0
    #: transient failures observed at the query path
    transient_failures: int = 0
    #: transient failures that reached the abort handler and were
    #: classified as outages instead of broken-query flags — each one a
    #: spurious abort/reorder avoided
    false_flags_avoided: int = 0
    #: broken-query flags confirmed genuine by classification
    genuine_broken_flags: int = 0
    #: (virtual time, source, until) quarantine entries
    quarantine_events: list[tuple[float, str, float]] = field(
        default_factory=list
    )
    #: quarantined sources brought back into service
    resumed_sources: int = 0
    #: in-flight/parked units restarted because a unit they had treated
    #: as serialized-before requeued (parallel executor only)
    tainted_restarts: int = 0
    #: maintenance units newly parked behind the active queue because
    #: they depend on a quarantined source (each unit counted once per
    #: stay in the deferred set, not once per deferral round)
    deferred_units: int = 0
    # -- snapshot cache (mirrors of engine metrics) --------------------
    #: maintenance queries answered without a round trip
    cache_hits: int = 0
    #: cacheable queries that paid a real trip
    cache_misses: int = 0
    #: cache answers patched forward through gap deltas
    patched_answers: int = 0
    #: cache entries dropped by a schema change in the version gap
    cache_invalidations_sc: int = 0
    #: maintenance queries that actually travelled to a source
    source_round_trips: int = 0
    # -- self-maintenance aux store (mirrors of engine metrics) --------
    #: maintenance queries answered by the auxiliary store
    aux_hits: int = 0
    #: aux-eligible queries the store could not cover
    aux_misses: int = 0
    #: aux replicas dropped by a schema change in the version gap
    aux_invalidations_sc: int = 0
    #: data-update units maintained with zero source round trips
    self_maintained_units: int = 0
    #: committed data-update maintenance rounds (the denominator)
    data_unit_rounds: int = 0


class DynoScheduler:
    """Drives a :class:`ViewManager` under one strategy."""

    def __init__(
        self,
        manager: ViewManager,
        strategy: Strategy = PESSIMISTIC,
        max_iterations: int = 1_000_000,
        defer_du_interval: float | None = None,
        incremental_detection: bool = True,
        batch_policy: BatchPolicy | None = None,
    ) -> None:
        """``defer_du_interval`` enables *deferred* data-update
        maintenance (Colby et al. [5] in the paper's related work): pure
        data updates accumulate and are maintained as one coalesced
        batch every ``interval`` virtual seconds — fewer, bigger view
        refreshes, trading staleness for refresh cost.  Schema changes
        are never deferred: the moment one is queued, ordinary Dyno
        processing takes over.

        ``incremental_detection`` maintains the dependency graph and the
        footprint cache alongside the UMQ so each detection round costs
        what *changed* since the last round, not the queue size; pass
        ``False`` to rebuild from scratch every round (the paper's
        original cost profile, kept for ablation).

        ``batch_policy`` arms adaptive group maintenance
        (:mod:`repro.maintenance.grouping`): before picking the head,
        maximal safe runs of the corrected UMQ are coalesced into
        voluntary batch units, so a run of compatible updates pays one
        maintenance round instead of one per message.
        """
        self.manager = manager
        self.strategy = strategy
        # Strict compensation for Dyno-corrected runs: under a corrected
        # order a probe answer can never go negative, so clamping would
        # hide a real ordering bug.  Baselines (skip / merge-all) keep
        # the historical clamp — broken ordering is their design.
        if strategy.on_broken_query is BrokenQueryPolicy.CORRECT:
            for inner in getattr(manager, "managers", None) or [manager]:
                inner.compensation_log.strict = True
        self.max_iterations = max_iterations
        self.defer_du_interval = defer_du_interval
        self.batch_policy = batch_policy
        #: crash-recovery harness (armed by ``RecoveryHarness.attach``);
        #: drives periodic checkpoints from the commit point
        self.recovery = None
        self.stats = SchedulerStats()
        self._last_broken_unit_ids: tuple[int, ...] | None = None
        self._next_deferred_refresh = (
            defer_du_interval if defer_du_interval is not None else 0.0
        )
        #: quarantined sources: name -> virtual time to probe again
        self._quarantined: dict[str, float] = {}
        #: unit ids already counted in ``stats.deferred_units`` for the
        #: current outage (cleared when the deferred set empties)
        self._counted_deferred_ids: set[int] = set()
        self.substrate: IncrementalDependencyGraph | None = None
        if incremental_detection:
            self.substrate = IncrementalDependencyGraph(
                self.umq,
                view_queries=lambda: self.manager.maintenance_queries,
                rewritten_query=self._speculative_rewrite,
                epoch=lambda: (
                    self.manager.detection_epoch,
                    self.umq.received_schema_changes,
                ),
                metrics=self.manager.metrics,
            )

    def detach(self) -> None:
        """Unhook the substrate's UMQ listener (when this scheduler is
        replaced by another on the same queue)."""
        if self.substrate is not None:
            self.substrate.detach()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @property
    def engine(self) -> SimEngine:
        return self.manager.engine

    @property
    def umq(self):
        return self.manager.umq

    def _speculative_rewrite(self, message: UpdateMessage):
        """Footprint helper: what would the view(s) look like after this
        schema change?  VS is pure, so we can ask without committing."""
        return self.manager.speculative_queries(message)

    def _charge(self, duration: float, kind: str) -> None:
        if duration > 0:
            self.engine.perform(Delay(duration, kind))

    def _maybe_checkpoint(self) -> None:
        if self.recovery is not None:
            self.recovery.maybe_checkpoint()

    # ------------------------------------------------------------------
    # detection + correction round
    # ------------------------------------------------------------------

    def _detection_work_cost(self, nodes: int, edges: int) -> float:
        """Virtual time for this round's detection work.

        With the incremental substrate, charge the work it actually
        performed since the last round (full-rate for rebuild fallbacks,
        incremental-rate for cached/remap work); without it, charge a
        from-scratch build over the whole graph.
        """
        cost = self.manager.cost
        if self.substrate is None:
            return cost.detection(nodes, edges)
        full_nodes, full_edges, inc_nodes, inc_edges = (
            self.substrate.consume_work()
        )
        return cost.detection(full_nodes, full_edges) + (
            cost.detection_incremental(inc_nodes, inc_edges)
        )

    def detect_and_correct(self) -> CorrectionResult:
        """Lines 4-5 of Figure 6: build the graph, fix the order."""
        messages = self.umq.messages()
        result = correct(
            messages,
            self.manager.maintenance_queries,
            rewritten_query=self._speculative_rewrite,
            detection=(
                self.substrate.detection()
                if self.substrate is not None
                else None
            ),
        )
        # Install the corrected order before charging the detection
        # delay: commits firing inside the delay window must append
        # behind the corrected schedule, not invalidate it.
        self.umq.replace_order(result.units)
        cost = self.manager.cost
        self._charge(
            self._detection_work_cost(result.node_count, result.edge_count)
            + cost.correction(result.node_count, result.edge_count),
            "detection",
        )
        metrics = self.manager.metrics
        metrics.detection_rounds += 1
        metrics.graph_builds += 1
        metrics.cycle_merges += result.merges
        self.stats.corrections += 1
        self.engine.tracer.record(
            self.engine.clock.now,
            trace_kinds.CORRECTION,
            f"{result.node_count} nodes, {result.edge_count} edges, "
            f"{result.merges} merges",
        )
        return result

    def _merge_whole_queue(self) -> None:
        result = merge_all(
            self.umq.messages(),
            self.manager.maintenance_queries,
            detection=(
                self.substrate.detection()
                if self.substrate is not None
                else None
            ),
        )
        # Install before charging: commits firing inside the charge
        # window must append behind the merged order, not invalidate it
        # (same ordering as detect_and_correct).
        self.umq.replace_order(result.units)
        cost = self.manager.cost
        self._charge(
            cost.correction(result.node_count, result.edge_count),
            "detection",
        )
        self.manager.metrics.cycle_merges += result.merges

    def _group_safe_runs(self) -> None:
        """Adaptive group maintenance: merge safe runs of the queue.

        Runs after pre-exec correction (the scan must see the corrected
        order) and is skipped during outages — quarantine deferral
        reorders the queue at unit granularity, and folding a blocked
        unit into a batch would block the whole batch.  The merge
        itself preserves legality (see :mod:`repro.maintenance
        .grouping`): admitted units are SC-free by default, so no
        concurrent edge can terminate inside a batch and Theorem 1's
        broken-query detection is untouched.
        """
        policy = self.batch_policy
        if policy is None or not policy.enabled or len(self.umq) < 2:
            return
        if self._quarantined:
            return
        units = list(self.umq.units)
        if policy.du_only:
            # CD edges need a schema-change endpoint and SC-bearing
            # units are never admitted: no edge set to consult.
            dependencies = ()
        elif self.substrate is not None:
            dependencies = self.substrate.dependencies()
        else:
            dependencies = find_dependencies(
                self.umq.messages(),
                self.manager.maintenance_queries,
                rewritten_query=self._speculative_rewrite,
            )
        runs = find_safe_runs(units, policy, dependencies)
        if not runs:
            return
        order, grouped = merge_runs(units, runs)
        # A run that only extends an existing batch (the parallel
        # executor regroups every dispatch round) is not a new batch.
        fresh = sum(
            1
            for start, end in runs
            if not any(unit.is_batch for unit in units[start:end])
        )
        # Install before charging, as everywhere: commits firing inside
        # the charge window must append behind the grouped order.
        self.umq.replace_order(order)
        metrics = self.manager.metrics
        metrics.batches_formed += fresh
        metrics.grouped_messages += grouped
        self._charge(self.manager.cost.batch_merge(grouped), "batch_merge")
        self.engine.tracer.record(
            self.engine.clock.now,
            trace_kinds.BATCH,
            f"{len(runs)} batch(es) over {grouped} messages",
        )

    def _force_progress(self, broken_source: str) -> None:
        """Safety valve for repeat-breaking heads.

        If the same head unit breaks twice and correction does not
        change the schedule (possible when the conflict only exists
        against the *rewritten* definition mid-flight), merge the head
        with the schema changes of the breaking source so the batch is
        maintained atomically.  This preserves Dyno's termination
        argument (Section 4.4) under adversarial interleavings.
        """
        units = list(self.umq.units)
        head = units[0]
        absorbed: list[MaintenanceUnit] = [head]
        rest: list[MaintenanceUnit] = []
        for unit in units[1:]:
            if any(
                message.is_schema_change and message.source == broken_source
                for message in unit
            ):
                absorbed.append(unit)
            else:
                rest.append(unit)
        if len(absorbed) == 1:
            # Nothing to absorb (the breaking change is not queued yet):
            # wait for it to arrive before retrying; with nothing even
            # scheduled there is nothing to merge either, so just retry
            # (the max_iterations guard bounds the degenerate case).
            self.engine.advance_to_next_event()
            return
        merged = MaintenanceUnit.merged(absorbed)
        self.umq.replace_order([merged] + rest)
        self.stats.forced_merges += 1

    # ------------------------------------------------------------------
    # fault handling: classification, quarantine, deferral
    # ------------------------------------------------------------------

    def _classify_transient(self, error: SourceError) -> bool:
        """True iff ``error`` is an outage rather than a broken query.

        Outages quarantine their source; each classification is one
        avoided false broken-query flag.
        """
        if not isinstance(
            error, (TransientSourceError, SourceUnavailableError)
        ):
            return False
        self.stats.false_flags_avoided += 1
        self._quarantine(error.source, error.retry_at)
        return True

    def _quarantine(self, source: str, retry_at: float | None) -> None:
        """Bench ``source`` until ``retry_at`` (or a probe interval)."""
        now = self.engine.clock.now
        if retry_at is not None and retry_at > now:
            until = retry_at
        else:
            policy = self.engine.retry_policy
            probe = (
                policy.quarantine_probe
                if policy is not None
                else DEFAULT_QUARANTINE_PROBE
            )
            until = now + probe
        # Re-quarantining only ever extends the rest period.
        self._quarantined[source] = max(
            until, self._quarantined.get(source, until)
        )
        self.stats.quarantine_events.append((now, source, until))
        self.engine.tracer.record(
            now, trace_kinds.QUARANTINE, f"{source} until {until:.3f}"
        )

    def _lift_due_quarantines(self) -> None:
        now = self.engine.clock.now
        for source, until in list(self._quarantined.items()):
            if now >= until:
                del self._quarantined[source]
                self.stats.resumed_sources += 1
                self.engine.tracer.record(
                    now, trace_kinds.RESUME, source
                )
        if not self._quarantined:
            # The outage is over: the next outage counts its deferred
            # units afresh.
            self._counted_deferred_ids.clear()

    def _deferred_unit_indices(self) -> tuple[set[int], int, int]:
        """Units that must wait for a quarantined source to recover.

        Reuses the Definition 3/4 machinery: a unit is *directly*
        deferred when any of its messages' maintenance footprints reads
        a quarantined source; deferral then propagates along dependency
        edges (``before`` deferred => ``after`` deferred) so demoting
        active units past deferred ones can never violate a CD or SD.
        Returns (deferred unit indices, node count, edge count) for cost
        accounting.
        """
        units = list(self.umq.units)
        messages: list[UpdateMessage] = []
        unit_of: list[int] = []
        for unit_index, unit in enumerate(units):
            for message in unit:
                messages.append(message)
                unit_of.append(unit_index)
        if self.substrate is not None:
            # Footprints and dependencies are served from the live
            # substrate: one cached lookup per message instead of a
            # full recomputation per deferral pass.
            footprints = [
                self.substrate.footprint_at(index)
                for index in range(len(messages))
            ]
            dependencies = self.substrate.dependencies()
        else:
            resolver = NameResolver(messages)
            footprints = [
                footprint_of_update(
                    message,
                    self.manager.maintenance_queries,
                    self._speculative_rewrite,
                    resolver,
                )
                for message in messages
            ]
            dependencies = find_dependencies(
                messages,
                self.manager.maintenance_queries,
                rewritten_query=self._speculative_rewrite,
            )
        deferred: set[int] = set()
        for index, footprint in enumerate(footprints):
            if any(
                source in self._quarantined
                for source, _relation in footprint.relations
            ):
                deferred.add(unit_of[index])
        changed = True
        while changed:
            changed = False
            for dependency in dependencies:
                before = unit_of[dependency.before_index]
                after = unit_of[dependency.after_index]
                if before in deferred and after not in deferred:
                    deferred.add(after)
                    changed = True
        return deferred, len(messages), len(dependencies)

    def _make_runnable_head(self) -> bool:
        """Move quarantine-independent units ahead of deferred ones.

        Returns False when *every* queued unit depends on a quarantined
        source — nothing is runnable until recovery.  Every pass builds
        (or consults) the dependency graph, so every pass charges
        detection time and counts a graph build — detection work is
        never free virtual time, demotion or not.
        """
        deferred, nodes, edges = self._deferred_unit_indices()
        self.manager.metrics.graph_builds += 1
        detection_cost = self._detection_work_cost(nodes, edges)
        if self.substrate is not None:
            # The pass itself sweeps cached footprints and propagates
            # deferral along the edges: incremental-rate work.
            detection_cost += self.manager.cost.detection_incremental(
                nodes, edges
            )
        if not deferred:
            self._counted_deferred_ids.clear()
            self._charge(detection_cost, "detection")
            return True
        units = list(self.umq.units)
        if len(deferred) == len(units):
            self._charge(detection_cost, "detection")
            return False
        active = [
            unit
            for index, unit in enumerate(units)
            if index not in deferred
        ]
        held = [
            unit for index, unit in enumerate(units) if index in deferred
        ]
        demoted = any(
            index in deferred for index in range(len(active))
        )
        if demoted:
            # Install the order before charging (commits inside the
            # charge window must append behind it, as in
            # detect_and_correct).
            self.umq.replace_order(active + held)
        # Count each unit once per stay in the deferred set, not once
        # per deferral round: one long outage must not inflate the
        # counter by held-count x rounds.
        held_ids = {id(unit) for unit in held}
        self.stats.deferred_units += len(
            held_ids - self._counted_deferred_ids
        )
        self._counted_deferred_ids = held_ids
        self._charge(detection_cost, "detection")
        return True

    def _wait_for_recovery(self) -> None:
        """All queued units are parked: sleep until the earliest probe
        time or the next autonomous event, whichever comes first."""
        # The parallel executor commits work at pool completion times,
        # which can carry the clock past the earliest probe (or a
        # pending autonomous event) before every worker drains — never
        # ask the engine to move the clock backwards.
        now = self.engine.clock.now
        next_probe = max(min(self._quarantined.values()), now)
        next_event = self.engine.next_event_time()
        if next_event is not None and next_event < next_probe:
            self.engine.advance_to(max(next_event, now))
        else:
            self.engine.advance_to(next_probe)
        self._lift_due_quarantines()

    def _sync_fault_stats(self) -> None:
        metrics = self.manager.metrics
        self.stats.retries = metrics.retries
        self.stats.backoff_time = metrics.backoff_time
        self.stats.transient_failures = metrics.transient_failures
        self.stats.cache_hits = metrics.cache_hits
        self.stats.cache_misses = metrics.cache_misses
        self.stats.patched_answers = metrics.patched_answers
        self.stats.cache_invalidations_sc = metrics.cache_invalidations_sc
        self.stats.source_round_trips = metrics.source_round_trips
        self.stats.aux_hits = metrics.aux_hits
        self.stats.aux_misses = metrics.aux_misses
        self.stats.aux_invalidations_sc = metrics.aux_invalidations_sc
        self.stats.self_maintained_units = metrics.self_maintained_units
        self.stats.data_unit_rounds = metrics.data_unit_rounds

    # ------------------------------------------------------------------
    # the Dyno loop
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """One scheduling decision: maintain one unit, or advance to the
        next pending commit when the queue is idle.

        Returns ``False`` when fully quiescent (nothing queued, nothing
        scheduled).  Useful for driving the system incrementally —
        monitoring dashboards, interleaved test assertions — instead of
        running to completion.

        The public entry wraps the strategy-specific ``_step_impl``
        with plan-cache accounting: the process-global compiled-plan
        cache's hit/miss/eviction deltas across the step are harvested
        into this scheduler's metrics, so interleaved multi-shard runs
        attribute kernel cache efficiency to the shard that stepped.
        """
        from ..relational.plan import PLAN_CACHE

        before = (PLAN_CACHE.hits, PLAN_CACHE.misses, PLAN_CACHE.evictions)
        try:
            return self._step_impl()
        finally:
            metrics = self.manager.metrics
            metrics.plan_cache_hits += PLAN_CACHE.hits - before[0]
            metrics.plan_cache_recompiles += PLAN_CACHE.misses - before[1]
            metrics.plan_cache_evictions += PLAN_CACHE.evictions - before[2]

    def _step_impl(self) -> bool:
        metrics = self.manager.metrics
        cost = self.manager.cost
        self._sync_fault_stats()
        self._lift_due_quarantines()
        if self.umq.is_empty():
            return self.engine.advance_to_next_event()
        if self.defer_du_interval is not None and self._defer_step():
            return True
        self.stats.iterations += 1
        self.engine.crash_point("serial.pre_detect")

        # Line 1: pessimistic pre-exec detection behind the flag.
        if self.strategy.pre_exec:
            self._charge(cost.detection_flag_check, "detection")
            if self.umq.test_and_clear_schema_change_flag():
                self.detect_and_correct()
                if self.umq.is_empty():
                    return True

        # Graceful degradation: with sources in quarantine, run only
        # maintenance that does not depend on them; park the rest.
        if self._quarantined and not self._make_runnable_head():
            self._wait_for_recovery()
            return True

        # Adaptive group maintenance over the corrected queue.
        self._group_safe_runs()

        self.engine.crash_point("serial.pre_maintain")
        unit = self.umq.head()
        started_at = self.engine.clock.now
        trips_before = metrics.source_round_trips
        process = self.manager.build_maintenance(unit)
        try:
            self.engine.run_process(process)
        except BrokenQueryError as broken:
            wasted = self.engine.clock.now - started_at
            metrics.aborts += 1
            metrics.abort_cost += wasted
            metrics.anomalies[
                AnomalyType.SC_CONFLICTS_WITH_M_SC
                if unit.has_schema_change
                else AnomalyType.SC_CONFLICTS_WITH_M_DU
            ] += 1
            self.stats.abort_events.append(
                (self.engine.clock.now, unit.describe())
            )
            self.engine.tracer.record(
                self.engine.clock.now,
                trace_kinds.ABORT,
                f"wasted {wasted:.3f}s on {unit.describe()}",
            )
            self._handle_broken_query(unit, broken)
            return True
        except SourceUnavailableError as down:
            # An outage, not an anomaly: retries are exhausted and the
            # partial work is discarded, but no broken-query flag is
            # raised and none of the paper's abort metrics move.
            wasted = self.engine.clock.now - started_at
            self.engine.tracer.record(
                self.engine.clock.now,
                trace_kinds.FAULT,
                f"abandoned {unit.describe()} after {wasted:.3f}s: {down}",
            )
            self._handle_broken_query(unit, down)
            return True
        # Success: line 12, remove the head.
        self.engine.crash_point("serial.pre_commit")
        self._last_broken_unit_ids = None
        if not unit.has_schema_change:
            metrics.data_unit_rounds += 1
            if metrics.source_round_trips == trips_before:
                metrics.self_maintained_units += 1
        metrics.maintenance_rounds += 1
        self.stats.processed_messages.extend(
            (message.source, message.seqno) for message in unit
        )
        self.umq.remove_head()
        self.engine.crash_point("serial.post_commit")
        self._maybe_checkpoint()
        return True

    def _defer_step(self) -> bool:
        """Deferred-mode gate: postpone pure-DU queues until due.

        Returns True when this step was consumed by deferral (waited or
        coalesced); False to fall through to ordinary processing.
        """
        if any(
            message.is_schema_change for message in self.umq.messages()
        ):
            return False  # SCs take priority: normal Dyno processing
        now = self.engine.clock.now
        next_event = self.engine.next_event_time()
        if now < self._next_deferred_refresh:
            if next_event is not None and next_event < self._next_deferred_refresh:
                self.engine.advance_to_next_event()
            else:
                self.engine.advance_to(self._next_deferred_refresh)
            return True
        # Due: coalesce every queued DU into one batch unit.
        messages = self.umq.messages()
        if len(messages) > 1:
            self.umq.replace_order([MaintenanceUnit(list(messages))])
        # Schedule off the previous deadline, not off ``now``: anchoring
        # to the deadline keeps the cadence the constructor promised
        # even when a batch's maintenance (or an idle stretch) overruns
        # it.  Skip whole intervals already in the past.
        deadline = self._next_deferred_refresh + self.defer_du_interval
        while deadline <= now:
            deadline += self.defer_du_interval
        self._next_deferred_refresh = deadline
        return False  # fall through and maintain the coalesced batch

    def run(self) -> SchedulerStats:
        """Process until the UMQ is empty and no commits are pending."""
        while self.stats.iterations < self.max_iterations:
            if not self.step():
                break  # quiescent
        return self.finish()

    def finish(self) -> SchedulerStats:
        """Post-quiescence epilogue.

        Callers that drive the scheduler via :meth:`step` themselves —
        the :class:`~repro.core.sharding.ShardedWarehouse` coordinator
        interleaves many schedulers — must call this once at the end to
        get the same bookkeeping :meth:`run` performs."""
        self._sync_fault_stats()
        return self.stats

    def _handle_broken_query(
        self, unit: MaintenanceUnit, broken: SourceError
    ) -> None:
        # Classification first (in-exec detection, refined): a failure
        # that is merely *transient* must never raise the broken-query
        # flag — a spurious flag would fabricate an unsafe dependency
        # (Theorem 1 reads broken query => conflicting SC committed)
        # and trigger a pointless abort/reorder or forced merge.
        if self._classify_transient(broken):
            return
        self.stats.genuine_broken_flags += 1
        assert isinstance(broken, BrokenQueryError)
        policy = self.strategy.on_broken_query
        if policy is BrokenQueryPolicy.SKIP:
            skipped = self.umq.remove_head()
            journal = getattr(self.manager, "journal", None)
            if journal is not None:
                journal.record_skip(skipped)
            self.stats.skipped_updates += 1
            return
        if policy is BrokenQueryPolicy.MERGE_ALL:
            self._merge_whole_queue()
            return
        # Dyno: correct.  Detect the repeat-break case first.
        unit_ids = tuple(id(message) for message in unit)
        repeat = unit_ids == self._last_broken_unit_ids
        self._last_broken_unit_ids = unit_ids
        self.detect_and_correct()
        still_head = (
            not self.umq.is_empty()
            and tuple(id(message) for message in self.umq.head())
            == unit_ids
        )
        if repeat and still_head:
            self._force_progress(broken.source)
