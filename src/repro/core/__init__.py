"""Dyno: dependency detection and correction (the paper's contribution)."""

from .anomalies import AnomalyType, classify
from .correction import CorrectionResult, correct, merge_all
from .dependencies import (
    Dependency,
    DependencyKind,
    Footprint,
    find_dependencies,
    footprint_of_query,
    footprint_of_update,
)
from .detection import DetectionResult, detect
from .graph import DependencyGraph
from .incremental import (
    FootprintCache,
    IncrementalDependencyGraph,
    lineage_affecting,
)
from .parallel import ParallelScheduler
from .scheduler import DynoScheduler, SchedulerStats
from .sharding import (
    Shard,
    ShardedWarehouse,
    ShardRouter,
    assign_views,
)
from .strategies import (
    BLIND_MERGE,
    NAIVE,
    OPTIMISTIC,
    PESSIMISTIC,
    BrokenQueryPolicy,
    Strategy,
)

__all__ = [
    "AnomalyType",
    "BLIND_MERGE",
    "BrokenQueryPolicy",
    "CorrectionResult",
    "Dependency",
    "DependencyGraph",
    "DependencyKind",
    "DetectionResult",
    "DynoScheduler",
    "ParallelScheduler",
    "Footprint",
    "FootprintCache",
    "IncrementalDependencyGraph",
    "NAIVE",
    "OPTIMISTIC",
    "PESSIMISTIC",
    "SchedulerStats",
    "Shard",
    "ShardRouter",
    "ShardedWarehouse",
    "Strategy",
    "assign_views",
    "classify",
    "correct",
    "detect",
    "find_dependencies",
    "footprint_of_query",
    "footprint_of_update",
    "lineage_affecting",
    "merge_all",
]
