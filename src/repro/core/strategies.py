"""Concurrency-handling strategies (Section 4.1.3 and baselines).

A strategy decides *when* detection/correction runs:

* **pessimistic** (Dyno's choice, Section 4.3) — pre-exec detection
  whenever the schema-change flag is up, plus in-exec detection as the
  safety net for schema changes that land mid-maintenance;
* **optimistic** — in-exec only: no flag checks or graph builds until a
  broken query actually happens, at which point the whole UMQ is
  corrected;
* **naive** — the pre-Dyno state of the art: FIFO processing; a broken
  query permanently fails that update's maintenance (used to *show* the
  anomalies, never to fix them);
* **blind-merge** — the strawman of Section 4.2: on any broken query,
  merge the entire UMQ into one batch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BrokenQueryPolicy(enum.Enum):
    #: rebuild the graph and reschedule (Dyno)
    CORRECT = "correct"
    #: merge the whole queue into one batch
    MERGE_ALL = "merge_all"
    #: drop the update whose maintenance broke (incorrect baseline)
    SKIP = "skip"


@dataclass(frozen=True)
class Strategy:
    """One detection/correction policy."""

    name: str
    #: run pre-exec detection (flag-gated) before each maintenance
    pre_exec: bool
    #: what to do when in-exec detection reports a broken query
    on_broken_query: BrokenQueryPolicy

    def __str__(self) -> str:
        return self.name


PESSIMISTIC = Strategy(
    "pessimistic", pre_exec=True, on_broken_query=BrokenQueryPolicy.CORRECT
)
OPTIMISTIC = Strategy(
    "optimistic", pre_exec=False, on_broken_query=BrokenQueryPolicy.CORRECT
)
NAIVE = Strategy(
    "naive", pre_exec=False, on_broken_query=BrokenQueryPolicy.SKIP
)
BLIND_MERGE = Strategy(
    "blind-merge",
    pre_exec=False,
    on_broken_query=BrokenQueryPolicy.MERGE_ALL,
)
