"""Dependency detection (Section 4.1).

Detection has two *modes*:

* **pre-exec** — before maintaining, scan the UMQ, build the dependency
  graph and look for unsafe dependencies (this module);
* **in-exec** — the query engine reports a broken query during
  maintenance, which by Theorem 1 implies an unsafe dependency (realized
  as :class:`~repro.sources.errors.BrokenQueryError` propagating out of
  a maintenance process; see the scheduler).

The ``NewSchemaChangeFlag`` optimization of Section 4.1.1 lives in the
UMQ: when only data updates have arrived, no concurrent dependency can
exist and all semantic dependencies are already safe (FIFO = commit
order), so detection is skipped entirely — O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sources.messages import UpdateMessage
from .dependencies import Dependency, find_dependencies
from .graph import DependencyGraph


@dataclass
class DetectionResult:
    """The dependency graph of the current UMQ plus derived facts."""

    graph: DependencyGraph
    unsafe: list[Dependency]

    @property
    def has_unsafe(self) -> bool:
        return bool(self.unsafe)

    @property
    def node_count(self) -> int:
        return self.graph.node_count

    @property
    def edge_count(self) -> int:
        return self.graph.edge_count


def detect(
    messages: list[UpdateMessage],
    view_query,
    rewritten_query: Callable[[UpdateMessage], object] | None = None,
) -> DetectionResult:
    """Pre-exec detection over the queued updates.

    ``messages`` must be in current queue order; indices double as queue
    positions for the Definition 6 safety test.  ``view_query`` is one
    SPJ query or a sequence of them (multi-view deployments).
    """
    dependencies = find_dependencies(messages, view_query, rewritten_query)
    graph = DependencyGraph(len(messages), dependencies)
    return DetectionResult(graph, graph.unsafe_dependencies())
