"""Dependencies between maintenance processes (Section 3).

Two kinds of constraints restrict the order in which queued updates may
be maintained:

* **Concurrent dependency (CD, Definition 3)** — a schema change's
  maintenance *writes* the view definition, every maintenance *reads*
  it.  The writer must go first, but only when the write actually
  invalidates what the reader's maintenance will touch: Section 4.1.1
  draws the edge when the schema change "modifies any metadata ... that
  is included in the view query".  We refine "the view query" to the
  *maintenance footprint* of the dependent update — for a data update,
  the view query minus the updated relation itself (its own relation is
  never probed), which is what makes Figure 4's ``DU1``/``SC2`` pair
  independent of each other's CDs.
* **Semantic dependency (SD, Definition 4)** — updates of the same
  relation must be maintained in commit order (inserting then deleting a
  tuple cannot be replayed backwards).

A :class:`Dependency` is oriented ``before -> after``: ``before`` must
be maintained first.  Definition 6's *unsafe* test compares that
requirement with the UMQ positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from ..relational.query import SPJQuery
from ..sources.messages import (
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    RestructureRelations,
    SchemaChange,
    UpdateMessage,
)


class DependencyKind(Enum):
    CONCURRENT = "cd"
    SEMANTIC = "sd"


class NameResolver:
    """Resolves renamed relation/attribute names to their *root* names.

    A queue can contain rename chains (``R6 -> R6__v2 -> R6__v3``); the
    later links reference names the current view definition has never
    heard of, yet they absolutely invalidate it.  The resolver maps any
    name appearing in the queue back to the root name of its lineage so
    conflict tests compare like with like.  Names introduced by
    create/restructure start fresh lineages.
    """

    def __init__(self, messages: list[UpdateMessage]) -> None:
        self._relation_root: dict[tuple[str, str], str] = {}
        self._attribute_root: dict[tuple[str, str, str], str] = {}
        for message in messages:
            payload = message.payload
            source = message.source
            if isinstance(payload, RenameRelation):
                root = self.relation(source, payload.old)
                self._relation_root[(source, payload.new)] = root
            elif isinstance(payload, RenameAttribute):
                relation_root = self.relation(source, payload.relation)
                attribute_root = self.attribute(
                    source, payload.relation, payload.old
                )[1]
                self._attribute_root[
                    (source, relation_root, payload.new)
                ] = attribute_root
            elif isinstance(payload, RestructureRelations):
                created = payload.new_schema.name
                self._relation_root[(source, created)] = created

    def relation(self, source: str, name: str) -> str:
        return self._relation_root.get((source, name), name)

    def attribute(
        self, source: str, relation: str, attribute: str
    ) -> tuple[str, str]:
        """(root relation, root attribute) for a reference."""
        relation_root = self.relation(source, relation)
        return relation_root, self._attribute_root.get(
            (source, relation_root, attribute), attribute
        )


_IDENTITY_RESOLVER: "NameResolver" = NameResolver([])


@dataclass(frozen=True)
class Dependency:
    """``before`` must be maintained before ``after``."""

    before_index: int
    after_index: int
    kind: DependencyKind

    def is_unsafe(self) -> bool:
        """Definition 6: unsafe iff the queue order contradicts the
        required order (indices are queue positions)."""
        return self.before_index > self.after_index


@dataclass(frozen=True)
class Footprint:
    """The metadata one update's maintenance will read at the sources."""

    relations: frozenset[tuple[str, str]]
    attributes: frozenset[tuple[str, str, str]]

    def normalized(self, resolver: NameResolver) -> "Footprint":
        """Map every name to its rename-lineage root."""
        relations = frozenset(
            (source, resolver.relation(source, relation))
            for source, relation in self.relations
        )
        attributes = frozenset(
            (source, *resolver.attribute(source, relation, attribute))
            for source, relation, attribute in self.attributes
        )
        return Footprint(relations, attributes)

    def conflicted_by(
        self,
        source: str,
        change: SchemaChange,
        resolver: NameResolver = _IDENTITY_RESOLVER,
    ) -> bool:
        """Does ``change`` invalidate this (already normalized)
        footprint?  The change's names are rooted via ``resolver``."""
        if isinstance(change, RenameRelation):
            return (
                source,
                resolver.relation(source, change.old),
            ) in self.relations
        if isinstance(change, DropRelation):
            return (
                source,
                resolver.relation(source, change.relation),
            ) in self.relations
        if isinstance(change, RestructureRelations):
            return any(
                (source, resolver.relation(source, relation))
                in self.relations
                for relation in change.dropped
            )
        if isinstance(change, (RenameAttribute, DropAttribute)):
            attribute = (
                change.old
                if isinstance(change, RenameAttribute)
                else change.attribute
            )
            return (
                source,
                *resolver.attribute(source, change.relation, attribute),
            ) in self.attributes
        return False  # additions never conflict


def footprint_of_query(
    query: SPJQuery, exclude_aliases: frozenset[str] = frozenset()
) -> Footprint:
    """All (source, relation[, attribute]) metadata a maintenance built
    from ``query`` reads, minus the excluded aliases."""
    relations: set[tuple[str, str]] = set()
    attributes: set[tuple[str, str, str]] = set()
    by_alias = {ref.alias: ref for ref in query.relations}
    for ref in query.relations:
        if ref.alias in exclude_aliases:
            continue
        relations.add((ref.source, ref.relation))
    for attr_ref in query.all_attribute_refs():
        if attr_ref.relation is None or attr_ref.relation in exclude_aliases:
            continue
        owner = by_alias.get(attr_ref.relation)
        if owner is None:
            # Speculative rewrites can leave attribute references to an
            # alias no longer in the FROM list (e.g. a dropped-relation
            # rewrite that prunes the relation but not every predicate).
            # Such a dangling reference reads no source metadata, so it
            # contributes nothing to the footprint.
            continue
        attributes.add((owner.source, owner.relation, attr_ref.name))
    return Footprint(frozenset(relations), frozenset(attributes))


#: one view query or several (multi-view deployments share one UMQ)
ViewQueries = "SPJQuery | tuple[SPJQuery, ...] | list[SPJQuery]"


def _as_queries(view_queries) -> tuple[SPJQuery, ...]:
    if isinstance(view_queries, SPJQuery):
        return (view_queries,)
    return tuple(view_queries)


def _union(footprints: list[Footprint]) -> Footprint:
    relations: frozenset = frozenset()
    attributes: frozenset = frozenset()
    for footprint in footprints:
        relations |= footprint.relations
        attributes |= footprint.attributes
    return Footprint(relations, attributes)


def footprint_of_update(
    message: UpdateMessage,
    view_queries,
    rewritten_queries: Callable[[UpdateMessage], object] | None = None,
    resolver: NameResolver = _IDENTITY_RESOLVER,
) -> Footprint:
    """The maintenance footprint of one queued update.

    * A data update's maintenance probes every view relation except its
      own (unless the relation appears in several aliases — a self-join
      probes the other occurrence, so nothing is excluded).  With
      several views, the per-view footprints (each with its own
      exclusion) are unioned.
    * A schema change's maintenance adapts the *rewritten* view(s): when
      the caller can synchronize speculatively it supplies
      ``rewritten_queries`` and the footprint covers old and new
      definitions; otherwise the current definitions are used.
    """
    queries = _as_queries(view_queries)
    if message.is_schema_change:
        footprints = [footprint_of_query(query) for query in queries]
        if rewritten_queries is not None:
            for rewritten in _as_queries(rewritten_queries(message)):
                footprints.append(footprint_of_query(rewritten))
        return _union(footprints)

    payload = message.payload
    updated_root = resolver.relation(
        message.source, payload.relation  # type: ignore[union-attr]
    )
    footprints = []
    for query in queries:
        own_aliases = frozenset(
            ref.alias
            for ref in query.relations
            if ref.source == message.source
            and resolver.relation(ref.source, ref.relation) == updated_root
        )
        if not own_aliases:
            # This view does not reference the updated relation, so the
            # update's maintenance is a no-op for it: no probes, no
            # footprint contribution.
            continue
        if len(own_aliases) != 1:
            own_aliases = frozenset()  # self-join: everything is probed
        footprints.append(
            footprint_of_query(query, exclude_aliases=own_aliases)
        )
    return _union(footprints)


def find_dependencies(
    messages: list[UpdateMessage],
    view_query,
    rewritten_query: Callable[[UpdateMessage], object] | None = None,
) -> list[Dependency]:
    """Build all CD and SD dependencies among queued updates.

    ``messages`` are in UMQ order (which is commit-arrival order), so a
    dependency's indices double as queue positions for the Definition 6
    safety test.  Complexity: O(mn) for CDs (m schema changes) plus O(n)
    for SDs, as analyzed in Section 4.1.1.
    """
    dependencies: list[Dependency] = []

    # Semantic dependencies: adjacent updates of the same relation at
    # the same source, in commit order (single scan with buckets).
    last_touch: dict[tuple[str, str], int] = {}
    for index, message in enumerate(messages):
        for relation in message.touched_relations():
            key = (message.source, relation)
            previous = last_touch.get(key)
            if previous is not None:
                dependencies.append(
                    Dependency(previous, index, DependencyKind.SEMANTIC)
                )
            last_touch[key] = index

    # Concurrent dependencies: each view-conflicting schema change must
    # precede every other update whose maintenance footprint it
    # invalidates.  Rename lineages are resolved so chained renames
    # (R -> R__v2 -> R__v3) conflict with footprints that still carry
    # the original names.
    resolver = NameResolver(messages)
    footprints: list[Footprint | None] = [None] * len(messages)

    def footprint(index: int) -> Footprint:
        cached = footprints[index]
        if cached is None:
            cached = footprint_of_update(
                messages[index], view_query, rewritten_query, resolver
            ).normalized(resolver)
            footprints[index] = cached
        return cached

    for sc_index, sc_message in enumerate(messages):
        if not sc_message.is_schema_change:
            continue
        change = sc_message.payload
        assert isinstance(change, SchemaChange)
        for other_index, _other in enumerate(messages):
            if other_index == sc_index:
                continue
            if footprint(other_index).conflicted_by(
                sc_message.source, change, resolver
            ):
                dependencies.append(
                    Dependency(
                        sc_index, other_index, DependencyKind.CONCURRENT
                    )
                )

    # Deduplicate parallel edges of the same kind.
    unique: dict[tuple[int, int, DependencyKind], Dependency] = {}
    for dependency in dependencies:
        key = (
            dependency.before_index,
            dependency.after_index,
            dependency.kind,
        )
        unique.setdefault(key, dependency)
    return list(unique.values())
