"""The four anomaly types of Section 3.1.

An anomaly arises when a source update commits before a maintenance
query of another update's maintenance process is answered
(Definition 2).  The taxonomy crosses the type of the *conflicting*
update with the type of the update *being maintained*:

==== ======================= =============================
Type conflicting update       maintenance process
==== ======================= =============================
1    data update              M(data update)
2    data update              M(schema change)
3    schema change            M(data update)
4    schema change            M(schema change)
==== ======================= =============================

Types 1-2 corrupt query answers (solved by compensation); types 3-4 are
*broken query* anomalies (solved by Dyno).
"""

from __future__ import annotations

import enum

from ..sources.messages import UpdateMessage


class AnomalyType(enum.Enum):
    DU_CONFLICTS_WITH_M_DU = 1
    DU_CONFLICTS_WITH_M_SC = 2
    SC_CONFLICTS_WITH_M_DU = 3
    SC_CONFLICTS_WITH_M_SC = 4

    @property
    def is_broken_query(self) -> bool:
        """Types 3 and 4 may break maintenance queries outright."""
        return self in (
            AnomalyType.SC_CONFLICTS_WITH_M_DU,
            AnomalyType.SC_CONFLICTS_WITH_M_SC,
        )

    @property
    def is_compensatable(self) -> bool:
        """Types 1 and 2 are handled by compensation algorithms [1, 20]."""
        return not self.is_broken_query


def classify(
    conflicting: UpdateMessage, maintained: UpdateMessage
) -> AnomalyType:
    """Classify the anomaly of ``conflicting`` vs ``M(maintained)``."""
    if conflicting.is_schema_change:
        if maintained.is_schema_change:
            return AnomalyType.SC_CONFLICTS_WITH_M_SC
        return AnomalyType.SC_CONFLICTS_WITH_M_DU
    if maintained.is_schema_change:
        return AnomalyType.DU_CONFLICTS_WITH_M_SC
    return AnomalyType.DU_CONFLICTS_WITH_M_DU
