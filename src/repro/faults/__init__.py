"""Deterministic fault injection and recovery for unreliable sources.

The paper assumes autonomous sources that at least *answer* every
maintenance query; this package drops that assumption.  A seeded
:class:`FaultPlan` injects transient query failures, timeouts, crash
windows and lossy wrapper links; a :class:`RetryPolicy` governs
exponential backoff (charged to the virtual clock); and the Dyno
scheduler degrades gracefully — quarantining unavailable sources and
deferring only the maintenance that depends on them — instead of
misreading transient failures as broken-query anomalies.
"""

from .injector import FaultInjector, FaultStats
from .plan import CrashWindow, FaultPlan, LinkFault, TransientFault
from .retry import RetryPolicy

# Warehouse-side crashes (the warehouse process dying mid-maintenance,
# as opposed to the *source*-side faults above) live in repro.recovery;
# re-exported here so one import serves both fault families.
from ..recovery import CRASH_POINTS, CrashInjector, CrashPlan, SchedulerCrash

__all__ = [
    "CRASH_POINTS",
    "CrashInjector",
    "CrashPlan",
    "CrashWindow",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LinkFault",
    "RetryPolicy",
    "SchedulerCrash",
    "TransientFault",
]
