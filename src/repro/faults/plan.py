"""Declarative, reproducible fault plans.

A :class:`FaultPlan` is a *schedule of misbehaviour* for the autonomous
sources and their wrapper links:

* :class:`TransientFault` — the n-th maintenance-query attempt against a
  source fails (plain error or timeout).  Attempt-indexed rather than
  time-indexed so plans stay meaningful under retries: a retried query
  consumes the next attempt slot and may fail again if the plan says so.
* :class:`CrashWindow` — a source is down for a virtual-time interval;
  every query inside the window fails, and the failure carries the
  window's end as a ``retry_at`` recovery hint.
* :class:`LinkFault` — the n-th message forwarded by a source's wrapper
  is delayed, or dropped and redelivered (never lost: sources cannot
  roll back committed updates, so the wrapper must eventually deliver).

Plans are plain data: build one explicitly for targeted tests, or draw a
randomized-but-deterministic one from a seed with :meth:`FaultPlan
.random` for chaos suites.  The same seed always produces the same plan,
and nothing in the injection path consults wall-clock time or global
randomness, so every faulty run is exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TransientFault:
    """Fail one query attempt at ``source``.

    ``attempt_index`` counts query attempts at that source from 0,
    including retries.  ``kind`` is ``"error"`` (instant failure) or
    ``"timeout"`` (the attempt consumes ``timeout`` virtual seconds
    before failing).
    """

    source: str
    attempt_index: int
    kind: str = "error"
    timeout: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in ("error", "timeout"):
            raise ValueError(f"unknown transient fault kind {self.kind!r}")


@dataclass(frozen=True)
class CrashWindow:
    """``source`` answers nothing during ``[start, end)`` virtual time."""

    source: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"empty crash window [{self.start}, {self.end})"
            )

    def covers(self, at: float) -> bool:
        return self.start <= at < self.end


@dataclass(frozen=True)
class LinkFault:
    """Delay or drop-with-redelivery one wrapper message.

    ``message_index`` counts messages forwarded by the source's wrapper
    from 0.  ``delay`` is extra transmission latency; ``drops`` is how
    many times the message is lost before a redelivery succeeds, each
    loss costing ``redelivery_delay`` additional virtual seconds.  Both
    compose with the wrapper's own fixed ``latency``.
    """

    source: str
    message_index: int
    delay: float = 0.0
    drops: int = 0
    redelivery_delay: float = 0.1

    @property
    def total_delay(self) -> float:
        return self.delay + self.drops * self.redelivery_delay


@dataclass(frozen=True)
class FaultPlan:
    """A complete, immutable fault schedule for one simulated run."""

    transients: tuple[TransientFault, ...] = ()
    crashes: tuple[CrashWindow, ...] = ()
    link_faults: tuple[LinkFault, ...] = ()
    #: seed the plan was drawn from, if any (for reporting only)
    seed: int | None = None

    # Lookup indexes, built lazily on first use and cached on the
    # instance (the dataclass is frozen, hence object.__setattr__).
    _transient_index: dict = field(
        default=None, repr=False, compare=False
    )
    _link_index: dict = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_transient_index",
            {
                (fault.source, fault.attempt_index): fault
                for fault in self.transients
            },
        )
        object.__setattr__(
            self,
            "_link_index",
            {
                (fault.source, fault.message_index): fault
                for fault in self.link_faults
            },
        )

    @property
    def is_empty(self) -> bool:
        return not (self.transients or self.crashes or self.link_faults)

    def transient_for(
        self, source: str, attempt_index: int
    ) -> TransientFault | None:
        return self._transient_index.get((source, attempt_index))

    def crash_covering(self, source: str, at: float) -> CrashWindow | None:
        for window in self.crashes:
            if window.source == source and window.covers(at):
                return window
        return None

    def link_fault_for(
        self, source: str, message_index: int
    ) -> LinkFault | None:
        return self._link_index.get((source, message_index))

    def describe(self) -> str:
        seed = f" seed={self.seed}" if self.seed is not None else ""
        return (
            f"FaultPlan({len(self.transients)} transients, "
            f"{len(self.crashes)} crash windows, "
            f"{len(self.link_faults)} link faults{seed})"
        )

    # ------------------------------------------------------------------
    # randomized construction
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        sources: list[str] | tuple[str, ...],
        horizon: float = 30.0,
        transient_rate: float = 0.15,
        attempt_slots: int = 40,
        timeout_share: float = 0.3,
        max_crashes: int = 2,
        crash_length: tuple[float, float] = (0.5, 3.0),
        link_fault_rate: float = 0.2,
        message_slots: int = 20,
        max_link_delay: float = 0.5,
        drop_share: float = 0.4,
    ) -> "FaultPlan":
        """Draw a reproducible plan from ``seed``.

        Per source: each of the first ``attempt_slots`` query attempts
        fails with probability ``transient_rate`` (a ``timeout_share``
        of those as timeouts); up to ``max_crashes`` crash windows land
        inside ``[0, horizon]``; each of the first ``message_slots``
        wrapper messages suffers a link fault with probability
        ``link_fault_rate`` (a ``drop_share`` of those as drops).

        Fault sets are finite by construction, so any run that keeps
        retrying must eventually drain them — the termination argument
        chaos tests rely on.
        """
        rng = random.Random(seed)
        transients: list[TransientFault] = []
        crashes: list[CrashWindow] = []
        link_faults: list[LinkFault] = []
        for source in sources:
            for attempt in range(attempt_slots):
                if rng.random() >= transient_rate:
                    continue
                if rng.random() < timeout_share:
                    transients.append(
                        TransientFault(
                            source,
                            attempt,
                            kind="timeout",
                            timeout=rng.uniform(0.1, 1.0),
                        )
                    )
                else:
                    transients.append(TransientFault(source, attempt))
            for _ in range(rng.randint(0, max_crashes)):
                length = rng.uniform(*crash_length)
                start = rng.uniform(0.0, max(horizon - length, 0.0))
                crashes.append(CrashWindow(source, start, start + length))
            for index in range(message_slots):
                if rng.random() >= link_fault_rate:
                    continue
                if rng.random() < drop_share:
                    link_faults.append(
                        LinkFault(
                            source,
                            index,
                            drops=rng.randint(1, 2),
                            redelivery_delay=rng.uniform(0.05, 0.3),
                        )
                    )
                else:
                    link_faults.append(
                        LinkFault(
                            source,
                            index,
                            delay=rng.uniform(0.01, max_link_delay),
                        )
                    )
        return cls(
            transients=tuple(transients),
            crashes=tuple(crashes),
            link_faults=tuple(link_faults),
            seed=seed,
        )
