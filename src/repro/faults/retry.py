"""Retry policy: exponential backoff with deterministic jitter.

When a maintenance query fails transiently the engine retries it under a
:class:`RetryPolicy`: each failed attempt is followed by a backoff sleep
(charged to the virtual clock, so experiment timings honestly include
retry cost), growing exponentially up to a cap, with a deterministic
jitter so that co-failing queries do not retry in lockstep yet every run
remains exactly reproducible.

Exhaustion — too many attempts, or the per-query deadline blown — raises
:class:`~repro.sources.errors.SourceUnavailableError`, which the Dyno
scheduler answers by *quarantining* the source (see
:mod:`repro.core.scheduler`) rather than flagging a broken query.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff/deadline knobs for transient maintenance-query failures."""

    #: total attempts per query (1 = no retries)
    max_attempts: int = 4
    #: backoff after the first failure (virtual seconds)
    base_backoff: float = 0.05
    #: growth factor per successive failure
    multiplier: float = 2.0
    #: backoff ceiling
    max_backoff: float = 2.0
    #: fraction of each backoff randomized away (0 disables jitter)
    jitter: float = 0.25
    #: per-query budget across attempts and backoffs; 0 disables
    deadline: float = 10.0
    #: how long an exhausted source rests in quarantine when no
    #: recovery hint is available
    quarantine_probe: float = 2.0
    #: jitter seed; same seed -> same backoff sequence
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff(self, failures: int, salt: str = "") -> float:
        """Sleep after the ``failures``-th consecutive failure (1-based).

        Deterministic: jitter is drawn from a generator seeded with
        ``(seed, salt, failures)`` rendered as a string (string seeding
        is stable across processes, unlike tuple hashing).
        """
        if failures < 1:
            raise ValueError("failures must be >= 1")
        raw = min(
            self.max_backoff,
            self.base_backoff * self.multiplier ** (failures - 1),
        )
        if self.jitter == 0.0:
            return raw
        rng = random.Random(f"{self.seed}:{salt}:{failures}")
        return raw * (1.0 - self.jitter * rng.random())

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Retries disabled: the first transient failure is terminal."""
        return cls(max_attempts=1, deadline=0.0)

    @classmethod
    def aggressive(cls) -> "RetryPolicy":
        """Many fast retries — for chaos suites with dense fault plans."""
        return cls(
            max_attempts=8,
            base_backoff=0.02,
            max_backoff=0.5,
            deadline=30.0,
            quarantine_probe=1.0,
        )
