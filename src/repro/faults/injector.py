"""The fault injector: realizes a :class:`FaultPlan` at runtime.

One injector is installed into a :class:`~repro.sim.engine.SimEngine`
(``engine.install_faults``); from then on

* every query entry of :class:`~repro.sources.source.DataSource` /
  :class:`~repro.sources.sqlite_source.SqliteDataSource` consults
  :meth:`FaultInjector.on_query` first, which raises
  :class:`~repro.sources.errors.TransientSourceError` /
  :class:`~repro.sources.errors.QueryTimeoutError` per the plan;
* every :class:`~repro.sources.wrapper.Wrapper` asks
  :meth:`FaultInjector.on_forward` how much extra link latency the next
  message suffers (delays, drop-with-redelivery).

The injector is the only stateful piece (attempt and message counters);
all decisions come from the immutable plan, so replaying the same
workload under the same plan reproduces the same faults.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..sources.errors import QueryTimeoutError, TransientSourceError
from .plan import FaultPlan


@dataclass
class FaultStats:
    """What the injector actually did during one run."""

    #: plain transient failures injected at query entry
    injected_transients: int = 0
    #: timeouts injected at query entry
    injected_timeouts: int = 0
    #: queries rejected because the source was inside a crash window
    crash_rejections: int = 0
    #: wrapper messages given extra link delay
    delayed_messages: int = 0
    #: wrapper message drop events (each redelivered)
    dropped_messages: int = 0

    @property
    def total_injected(self) -> int:
        return (
            self.injected_transients
            + self.injected_timeouts
            + self.crash_rejections
        )

    def summary(self) -> dict[str, int]:
        return {
            "injected_transients": self.injected_transients,
            "injected_timeouts": self.injected_timeouts,
            "crash_rejections": self.crash_rejections,
            "delayed_messages": self.delayed_messages,
            "dropped_messages": self.dropped_messages,
        }


@dataclass
class FaultInjector:
    """Runtime realization of one :class:`FaultPlan`."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    stats: FaultStats = field(default_factory=FaultStats)
    _query_attempts: Counter = field(default_factory=Counter)
    _forwarded: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------
    # query-path injection
    # ------------------------------------------------------------------

    def on_query(self, source: str, now: float) -> None:
        """Gate one query attempt at ``source``; raise to inject.

        Crash windows dominate (a crashed source answers nothing, so the
        attempt does not consume a transient slot); the failure carries
        the window end as a recovery hint.
        """
        window = self.plan.crash_covering(source, now)
        if window is not None:
            self.stats.crash_rejections += 1
            raise TransientSourceError(
                source,
                f"source crashed (window [{window.start:g}, "
                f"{window.end:g}))",
                retry_at=window.end,
            )
        attempt = self._query_attempts[source]
        self._query_attempts[source] += 1
        fault = self.plan.transient_for(source, attempt)
        if fault is None:
            return
        if fault.kind == "timeout":
            self.stats.injected_timeouts += 1
            raise QueryTimeoutError(
                source,
                f"query attempt #{attempt} timed out after "
                f"{fault.timeout:g}s",
                elapsed=fault.timeout,
            )
        self.stats.injected_transients += 1
        raise TransientSourceError(
            source, f"query attempt #{attempt} failed transiently"
        )

    # ------------------------------------------------------------------
    # wrapper-link injection
    # ------------------------------------------------------------------

    def on_forward(self, source: str) -> float:
        """Extra link delay for the next message forwarded by ``source``.

        Drop-with-redelivery surfaces as delay too — committed source
        updates cannot be lost, only late — so the wrapper composes the
        returned value with its own fixed latency.
        """
        index = self._forwarded[source]
        self._forwarded[source] += 1
        fault = self.plan.link_fault_for(source, index)
        if fault is None:
            return 0.0
        if fault.drops:
            self.stats.dropped_messages += fault.drops
        if fault.delay:
            self.stats.delayed_messages += 1
        return fault.total_delay

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def query_attempts(self, source: str) -> int:
        """Query attempts counted against ``source`` so far."""
        return self._query_attempts[source]

    def describe(self) -> str:
        return f"FaultInjector({self.plan.describe()})"
