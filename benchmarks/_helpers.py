"""Shared scale knobs for the figure benchmarks."""

from __future__ import annotations

import os


def full_scale() -> bool:
    """``DYNO_BENCH_FULL=1`` switches to the paper-scale sweeps."""
    return os.environ.get("DYNO_BENCH_FULL", "") == "1"


def bench_tuples() -> int:
    """Tuples per relation for figure benches."""
    return 2000 if full_scale() else 1000
