"""ABL-7 benchmark: snapshot cache round trips and cost, on vs off.

The self-maintenance fast path answers repeated maintenance probes from
a version-stamped snapshot cache, patching stale entries forward with
the committed gap deltas instead of re-visiting the source.  This bench
runs a hot-key DU-heavy stream under both conflict strategies (serial)
plus a 4-worker parallel arm, with the cache off and on, and asserts
the PR's acceptance bar: at the DU-heavy end of the sweep the cache
buys at least a 1.5x reduction in total source round trips and a lower
virtual-clock total, while the final extents and committed-update sets
stay byte-identical between the arms.
"""

from repro.experiments import run_snapshot_cache_ablation

from benchmarks._helpers import full_scale


def test_ablation_snapshot_cache_round_trips(benchmark, save_result):
    kwargs = (
        {"du_counts": (120, 240, 480), "tuples_per_relation": 400}
        if full_scale()
        else {}
    )
    result = benchmark.pedantic(
        run_snapshot_cache_ablation,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # Extent + committed (source, seqno) identity is verified inside
    # the run for every (strategy, du_count) pair.
    assert result.consistent
    heaviest = result.points[-1].values
    for label in ("pess", "opt", "parallel"):
        assert heaviest[f"{label}_trip_speedup"] >= 1.5
    # Trips saved must show up as virtual-clock savings too.
    assert heaviest["pess_cost_speedup"] > 1.0
    assert heaviest["opt_cost_speedup"] > 1.0
    # The fast path actually fired, and stale entries were patched
    # forward rather than re-fetched.
    assert heaviest["cache_hits"] > 0
    assert heaviest["patched_answers"] > 0
