"""ABL-4 benchmark: deferred vs eager data-update maintenance.

Beyond the paper: the deferred-maintenance scheduler option (related
work [5]) batches pure-DU stretches into periodic refreshes.  The bench
sweeps the deferral interval and reports total cost and refresh count —
the staleness/cost trade-off, quantified.
"""

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import PESSIMISTIC
from repro.experiments.runner import FigureResult
from repro.experiments.testbed import build_testbed
from repro.views.consistency import check_convergence

from benchmarks._helpers import bench_tuples, full_scale


def run_deferred_ablation(
    intervals=(None, 5.0, 20.0, 60.0),
    du_count=150,
    tuples_per_relation=1000,
    seed=7,
) -> FigureResult:
    result = FigureResult(
        figure_id="ABL-4",
        title="Deferred vs eager DU maintenance",
        x_label="defer_interval",
        series_names=["total_cost", "view_refreshes", "queries"],
    )
    for interval in intervals:
        testbed = build_testbed(
            PESSIMISTIC, tuples_per_relation=tuples_per_relation, seed=seed
        )
        testbed.scheduler.detach()
        testbed.scheduler = DynoScheduler(
            testbed.manager, PESSIMISTIC, defer_du_interval=interval
        )
        testbed.engine.schedule_workload(
            testbed.random_du_workload(du_count, 0.0, 0.3, seed=seed + 1)
        )
        testbed.run()
        report = check_convergence(testbed.manager)
        if not report.consistent:
            result.consistent = False
        metrics = testbed.metrics
        result.add(
            "eager" if interval is None else interval,
            total_cost=metrics.maintenance_cost,
            view_refreshes=float(metrics.view_refreshes),
            queries=float(
                round(metrics.busy_time["maintenance_query"], 2)
            ),
        )
    return result


def test_ablation_deferred(benchmark, save_result):
    du_count = 300 if full_scale() else 150

    result = benchmark.pedantic(
        run_deferred_ablation,
        kwargs={
            "du_count": du_count,
            "tuples_per_relation": bench_tuples(),
        },
        rounds=1,
        iterations=1,
    )
    save_result(result)

    assert result.consistent
    refreshes = result.series("view_refreshes")
    # eager refreshes the most; longer deferral -> monotonically fewer
    assert refreshes[0] == max(refreshes)
    assert all(b <= a for a, b in zip(refreshes[1:], refreshes[2:]))
