"""ABL-3 benchmark: progress under an adversarial schema-change stream.

Section 4.4's termination argument: even a continuous stream of
view-conflicting schema changes cannot starve Dyno forever — aborts pile
up only in a narrow interval band, and the system converges once the
stream ends.
"""

from repro.experiments import run_starvation_study

from benchmarks._helpers import full_scale


def test_ablation_starvation(benchmark, save_result):
    intervals = (
        (1.0, 5.0, 15.0, 23.0, 40.0) if full_scale() else (1.0, 15.0, 40.0)
    )
    result = benchmark.pedantic(
        run_starvation_study,
        kwargs={
            "intervals": intervals,
            "stream_length": 12 if full_scale() else 8,
            "du_count": 60 if full_scale() else 30,
            "tuples_per_relation": 1000 if full_scale() else 500,
        },
        rounds=1,
        iterations=1,
    )
    save_result(result)

    assert result.consistent
    for point in result.points:
        assert point.values["maintained"] > 0  # progress at every interval
