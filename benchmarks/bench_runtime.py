"""ABL-13 benchmark: multi-core shard runtime — inline vs process-parallel.

Two entry points:

* **pytest** (the CI smoke): ``pytest benchmarks/bench_runtime.py`` runs
  the ablation once, saves ``benchmarks/results/abl-13-runtime.json``
  and asserts the identity half of the acceptance bar unconditionally —
  extents, committed ``(source, seqno)`` sets and per-shard virtual
  clocks byte-identical between the inline coordinator and every
  process arm, including the hardened strategy/fault/crash/worker
  configurations.

* **CLI**::

      PYTHONPATH=src python benchmarks/bench_runtime.py [--full] \
          [--processes 0 2 4]

  writes the same figure JSON plus a consolidated ``BENCH_runtime.json``
  at the repository root (figure + interpreter + cores + commit
  metadata).

The **speedup** half of the bar (>= 1.8x aggregate wall-clock at 4
processes) needs hardware: it is asserted only when the machine exposes
>= 4 cores AND the run is full scale (wall-clock jitter at smoke scale
drowns the fixed fork/IPC overhead).  On >= 2 cores at full scale a
relaxed 1.25x bar applies at 2 processes; on fewer cores the numbers
are recorded with an explanatory note — a single-core container cannot
demonstrate multi-core speedup, only identity.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"
SUMMARY_PATH = REPO_ROOT / "BENCH_runtime.json"

#: the acceptance bar at 4 worker processes on >= 4 cores (full scale)
MIN_SPEEDUP_4P = 1.8
#: the relaxed bar at 2 worker processes on >= 2 cores (full scale)
MIN_SPEEDUP_2P = 1.25


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _run(full_scale: bool, process_counts=None):
    from repro.experiments import run_runtime_ablation

    kwargs = (
        {
            "du_count": 160,
            "sc_count": 2,
            "tuples_per_relation": 240,
            "repeats": 3,
        }
        if full_scale
        else {
            "du_count": 48,
            "sc_count": 2,
            "tuples_per_relation": 120,
            "repeats": 2,
        }
    )
    if process_counts is not None:
        kwargs["process_counts"] = tuple(process_counts)
    return run_runtime_ablation(**kwargs)


def _speedup_at(result, processes: int) -> float | None:
    for point in result.points:
        if point.x == processes:
            return point.values.get("speedup")
    return None


def _assert_acceptance(result, full_scale: bool) -> None:
    # Identity between every process arm and the inline oracle
    # (including the hardened arms) is folded into the bit —
    # asserted unconditionally: determinism needs no hardware.
    assert result.consistent, "\n".join(result.notes)
    cores = _cores()
    if not full_scale:
        result.notes.append(
            "speedup bar not enforced at smoke scale (wall-clock jitter)"
        )
        return
    if cores >= 4 and _speedup_at(result, 4) is not None:
        speedup = _speedup_at(result, 4)
        assert speedup >= MIN_SPEEDUP_4P, (
            f"4-process speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP_4P}x acceptance bar on {cores} cores"
        )
    elif cores >= 2 and _speedup_at(result, 2) is not None:
        speedup = _speedup_at(result, 2)
        assert speedup >= MIN_SPEEDUP_2P, (
            f"2-process speedup {speedup:.2f}x below the relaxed "
            f"{MIN_SPEEDUP_2P}x bar on {cores} cores"
        )
    else:
        result.notes.append(
            f"speedup bar not enforceable on {cores} core(s): "
            "identity asserted, timings recorded"
        )


def test_runtime_speedup(benchmark, save_result):
    from benchmarks._helpers import full_scale

    result = benchmark.pedantic(
        _run,
        args=(full_scale(),),
        rounds=1,
        iterations=1,
    )
    _assert_acceptance(result, full_scale())
    save_result(result)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale sweep (default: CI smoke scale)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        nargs="+",
        default=None,
        help="process counts to sweep (0 = inline; default 0 1 2 4)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=SUMMARY_PATH,
        help="consolidated runtime summary JSON (repo root)",
    )
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="record numbers without enforcing any bar",
    )
    arguments = parser.parse_args(argv)

    result = _run(arguments.full, process_counts=arguments.processes)
    if not arguments.no_assert:
        try:
            _assert_acceptance(result, arguments.full)
        except AssertionError as error:
            print(result.table())
            print(f"FAIL: {error}", file=sys.stderr)
            return 1
    print(result.table())

    RESULTS_DIR.mkdir(exist_ok=True)
    stem = result.figure_id.lower()
    (RESULTS_DIR / f"{stem}.txt").write_text(result.table() + "\n")
    (RESULTS_DIR / f"{stem}.json").write_text(result.to_json() + "\n")

    summary = {
        "figure": json.loads(result.to_json()),
        "commit": _current_commit(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cores": _cores(),
        "scale": "full" if arguments.full else "smoke",
        "timebase": "wall",
    }
    arguments.output.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nwrote {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
