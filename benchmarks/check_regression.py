"""Benchmark regression guard.

Compares the freshly produced ``benchmarks/results/*.json`` figures
against the checked-in ``benchmarks/baselines/*.json`` and fails when a
speedup series regressed beyond tolerance or a run lost its
consistency bit.  Run by CI after the benchmark smoke steps::

    python benchmarks/check_regression.py [--tolerance 0.5]

Rules, per figure present in *both* directories:

* every series whose name ends in ``speedup`` must stay within
  tolerance of the baseline at every shared x (new >= old * (1 -
  tolerance)).  The tolerance is **timebase-aware**, read from the
  baseline figure's ``timebase`` key: ``"wall"`` figures
  (``perf_counter`` measurements, e.g. abl-12-wallclock) get the
  generous ``--wall-tolerance`` band because CI-runner load makes them
  jitter; ``"virtual"`` figures are cost-model deterministic and are
  held to (near-)exact reproduction; figures that declare no timebase
  keep the legacy ``--tolerance``;
* ``consistent`` must not flip from true to false.

Figures without a baseline are reported but never fail the check (new
benchmarks land before their baseline does); a baseline without a
result means CI stopped producing a guarded figure, which *does* fail.
A missing or empty baseline directory, or an unreadable baseline/result
file, exits nonzero with a clear error instead of silently passing —
an accidentally deleted baseline must not disable the guard.  The
summary lists exactly which ablations were compared.

As a side effect the checker consolidates every ``abl-*.json`` result
into ``BENCH_ablations.json`` at the repository root — one record per
ablation run (name, key metric and its value at the heaviest x,
consistency bit, commit) — which CI uploads as the perf-trajectory
artifact.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"
TRAJECTORY_PATH = BENCH_DIR.parent / "BENCH_ablations.json"

#: repo-root wall-clock lane summaries folded into the trajectory (each
#: wraps its figure under a ``"figure"`` key; produced by the
#: bench_wallclock.py / bench_runtime.py CLIs).  Their figure JSONs in
#: ``results/`` are ALSO guarded per-figure against ``baselines/`` at
#: the ``--wall-tolerance`` band (their ``timebase: wall`` marker picks
#: the band); this list only consolidates the summaries' trajectory
#: records.
WALL_SUMMARY_PATHS = (
    BENCH_DIR.parent / "BENCH_wallclock.json",
    BENCH_DIR.parent / "BENCH_runtime.json",
)


class BaselineError(Exception):
    """A baseline (or its fresh result) cannot be read — fail the
    check rather than silently skipping the guard."""


def _load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise BaselineError(f"{path}: unreadable ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise BaselineError(
            f"{path}: expected a figure object, got {type(data).__name__}"
        )
    return data


def _speedup_series(figure: dict) -> list[str]:
    return [
        name
        for name in figure.get("series_names", [])
        if name.endswith("speedup")
    ]


def _points_by_x(figure: dict) -> dict:
    return {
        point["x"]: point["values"] for point in figure.get("points", [])
    }


#: virtual-time series are deterministic replays of the cost model; a
#: hair of float slack keeps the exact check robust across interpreters
VIRTUAL_EPSILON = 1e-9


def figure_tolerance(
    baseline: dict, tolerance: float, wall_tolerance: float
) -> float:
    """Pick the band for one figure from its declared timebase."""
    timebase = baseline.get("timebase")
    if timebase == "wall":
        return wall_tolerance
    if timebase == "virtual":
        return VIRTUAL_EPSILON
    return tolerance


def check_figure(
    name: str,
    baseline: dict,
    current: dict,
    tolerance: float,
    wall_tolerance: float | None = None,
) -> list[str]:
    if wall_tolerance is None:
        wall_tolerance = tolerance
    tolerance = figure_tolerance(baseline, tolerance, wall_tolerance)
    failures: list[str] = []
    if baseline.get("consistent", True) and not current.get(
        "consistent", True
    ):
        failures.append(f"{name}: consistency bit flipped to false")
    base_points = _points_by_x(baseline)
    current_points = _points_by_x(current)
    for series in _speedup_series(baseline):
        for x, base_values in base_points.items():
            if series not in base_values:
                continue
            if x not in current_points or series not in current_points[x]:
                failures.append(
                    f"{name}: point x={x} series {series!r} disappeared"
                )
                continue
            old = base_values[series]
            new = current_points[x][series]
            floor = old * (1.0 - tolerance)
            if new < floor:
                failures.append(
                    f"{name}: {series} at x={x} regressed "
                    f"{old:.2f} -> {new:.2f} "
                    f"(floor {floor:.2f} at tolerance {tolerance:.0%})"
                )
    return failures


def _current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_DIR.parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def write_trajectory(results_dir: Path, output_path: Path) -> int:
    """Consolidate ``abl-*.json`` results into one trajectory file.

    Each record carries the figure's *key metric*: the first speedup
    series (evaluated at the heaviest x), or — for figures with no
    speedup series — the last series at the heaviest x.  Returns the
    number of records written.
    """
    commit = _current_commit()
    records = []

    def record_of(name: str, figure: dict) -> dict | None:
        points = figure.get("points", [])
        if not points:
            return None
        speedups = _speedup_series(figure)
        series_names = figure.get("series_names", [])
        key = speedups[0] if speedups else (
            series_names[-1] if series_names else None
        )
        heaviest = points[-1]
        entry = {
            "name": name,
            "figure_id": figure.get("figure_id", name),
            "key_metric": key,
            "value": heaviest["values"].get(key),
            "x": heaviest["x"],
            "consistent": figure.get("consistent", True),
            "commit": commit,
        }
        if figure.get("timebase") is not None:
            entry["timebase"] = figure["timebase"]
        return entry

    for result_path in sorted(results_dir.glob("abl-*.json")):
        entry = record_of(result_path.stem, _load(result_path))
        if entry is not None:
            records.append(entry)
    # Wall-clock lane summaries live at the repo root, outside the
    # results glob; fold their wrapped figures in so the trajectory
    # covers every lane (skipping any figure the glob already saw —
    # the CLIs write both the per-figure JSON and the summary).
    seen = {entry["figure_id"] for entry in records}
    for summary_path in WALL_SUMMARY_PATHS:
        if not summary_path.exists():
            continue
        figure = _load(summary_path).get("figure")
        if not isinstance(figure, dict):
            raise BaselineError(
                f"{summary_path}: summary lacks a 'figure' object"
            )
        if figure.get("figure_id") in seen:
            continue
        entry = record_of(summary_path.stem, figure)
        if entry is not None:
            records.append(entry)
    output_path.write_text(
        json.dumps({"ablations": records}, indent=2, sort_keys=True)
        + "\n"
    )
    return len(records)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional speedup drop (default 0.5: abl-2/abl-5 "
        "speedups are wall-clock and jitter with machine load; abl-6 is "
        "virtual-time deterministic and would catch any real break even "
        "at this tolerance)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.75,
        help="allowed fractional speedup drop for figures declaring "
        "timebase=wall (perf_counter measurements jitter hard on shared "
        "CI runners; 0.75 still fails when a supposed 2x+ speedup "
        "collapses to parity)",
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=RESULTS_DIR,
        help="directory of freshly produced figure JSONs",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=BASELINES_DIR,
        help="directory of checked-in baseline figure JSONs",
    )
    parser.add_argument(
        "--trajectory",
        type=Path,
        default=TRAJECTORY_PATH,
        help="consolidated ablation trajectory file to (re)write",
    )
    arguments = parser.parse_args(argv)

    try:
        written = write_trajectory(arguments.results, arguments.trajectory)
    except BaselineError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2
    print(
        f"wrote {written} ablation record(s) to {arguments.trajectory}"
    )

    if not arguments.baselines.is_dir():
        print(
            f"ERROR: baseline directory {arguments.baselines} does not "
            "exist — the regression guard cannot run",
            file=sys.stderr,
        )
        return 2
    baselines = sorted(arguments.baselines.glob("*.json"))
    if not baselines:
        print(
            f"ERROR: no baselines under {arguments.baselines}; refusing "
            "to pass an empty guard (commit benchmarks/baselines/*.json "
            "or point --baselines at them)",
            file=sys.stderr,
        )
        return 2
    failures: list[str] = []
    compared: list[str] = []
    for baseline_path in baselines:
        result_path = arguments.results / baseline_path.name
        if not result_path.exists():
            failures.append(
                f"{baseline_path.stem}: baseline exists but CI produced "
                f"no {result_path.name}"
            )
            continue
        try:
            baseline = _load(baseline_path)
            current = _load(result_path)
        except BaselineError as error:
            failures.append(str(error))
            continue
        figure_failures = check_figure(
            baseline_path.stem,
            baseline,
            current,
            arguments.tolerance,
            arguments.wall_tolerance,
        )
        failures.extend(figure_failures)
        compared.append(baseline_path.stem)
        status = "FAIL" if figure_failures else "ok"
        print(f"{baseline_path.stem}: {status}")
    for result_path in sorted(arguments.results.glob("*.json")):
        if not (arguments.baselines / result_path.name).exists():
            print(f"{result_path.stem}: no baseline (unguarded)")
    print(
        f"compared {len(compared)} ablation(s): "
        + (", ".join(compared) if compared else "none")
    )
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}")
        return 1
    print(f"{len(compared)} figure(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
