"""Benchmark regression guard.

Compares the freshly produced ``benchmarks/results/*.json`` figures
against the checked-in ``benchmarks/baselines/*.json`` and fails when a
speedup series regressed beyond tolerance or a run lost its
consistency bit.  Run by CI after the benchmark smoke steps::

    python benchmarks/check_regression.py [--tolerance 0.5]

Rules, per figure present in *both* directories:

* every series whose name ends in ``speedup`` must stay within
  ``tolerance`` of the baseline at every shared x (new >= old * (1 -
  tolerance)); speedups derived from virtual time are deterministic,
  wall-clock ones jitter — the default tolerance absorbs CI-runner
  noise while still catching real slowdowns;
* ``consistent`` must not flip from true to false.

Figures without a baseline are reported but never fail the check (new
benchmarks land before their baseline does); a baseline without a
result means CI stopped producing a guarded figure, which *does* fail.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def _speedup_series(figure: dict) -> list[str]:
    return [
        name
        for name in figure.get("series_names", [])
        if name.endswith("speedup")
    ]


def _points_by_x(figure: dict) -> dict:
    return {
        point["x"]: point["values"] for point in figure.get("points", [])
    }


def check_figure(
    name: str, baseline: dict, current: dict, tolerance: float
) -> list[str]:
    failures: list[str] = []
    if baseline.get("consistent", True) and not current.get(
        "consistent", True
    ):
        failures.append(f"{name}: consistency bit flipped to false")
    base_points = _points_by_x(baseline)
    current_points = _points_by_x(current)
    for series in _speedup_series(baseline):
        for x, base_values in base_points.items():
            if series not in base_values:
                continue
            if x not in current_points or series not in current_points[x]:
                failures.append(
                    f"{name}: point x={x} series {series!r} disappeared"
                )
                continue
            old = base_values[series]
            new = current_points[x][series]
            floor = old * (1.0 - tolerance)
            if new < floor:
                failures.append(
                    f"{name}: {series} at x={x} regressed "
                    f"{old:.2f} -> {new:.2f} "
                    f"(floor {floor:.2f} at tolerance {tolerance:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional speedup drop (default 0.5: abl-2/abl-5 "
        "speedups are wall-clock and jitter with machine load; abl-6 is "
        "virtual-time deterministic and would catch any real break even "
        "at this tolerance)",
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=RESULTS_DIR,
        help="directory of freshly produced figure JSONs",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=BASELINES_DIR,
        help="directory of checked-in baseline figure JSONs",
    )
    arguments = parser.parse_args(argv)

    baselines = sorted(arguments.baselines.glob("*.json"))
    if not baselines:
        print(f"no baselines under {arguments.baselines}; nothing to check")
        return 0
    failures: list[str] = []
    checked = 0
    for baseline_path in baselines:
        result_path = arguments.results / baseline_path.name
        if not result_path.exists():
            failures.append(
                f"{baseline_path.stem}: baseline exists but CI produced "
                f"no {result_path.name}"
            )
            continue
        figure_failures = check_figure(
            baseline_path.stem,
            _load(baseline_path),
            _load(result_path),
            arguments.tolerance,
        )
        failures.extend(figure_failures)
        checked += 1
        status = "FAIL" if figure_failures else "ok"
        print(f"{baseline_path.stem}: {status}")
    for result_path in sorted(arguments.results.glob("*.json")):
        if not (arguments.baselines / result_path.name).exists():
            print(f"{result_path.stem}: no baseline (unguarded)")
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}")
        return 1
    print(f"{checked} figure(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
