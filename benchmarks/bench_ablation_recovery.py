"""ABL-9 benchmark: crash-recovery overhead vs checkpoint interval.

A fig12-style mixed workload runs journal-off (oracle), journal-on
(overhead measurement), and journal-on + a mid-run warehouse crash
(replay measurement) at each checkpoint interval.  The run itself
verifies crash-anywhere equivalence — journaled and recovered extents
and committed (source, seqno) sets byte-identical to the oracle, the
virtual clock untouched by durability — and this bench asserts the
overhead shape: journal traffic is interval-independent, checkpoints
grow as the interval tightens, and a tight interval bounds the journal
suffix a crash has to replay.
"""

from repro.experiments import run_recovery_ablation

from benchmarks._helpers import full_scale


def test_ablation_recovery_overhead(benchmark, save_result):
    kwargs = (
        {"du_count": 96, "tuples_per_relation": 600}
        if full_scale()
        else {}
    )
    result = benchmark.pedantic(
        run_recovery_ablation,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # Oracle-equality of every journaled and crashed arm (extent,
    # committed set, virtual clock) is verified inside the run.
    assert result.consistent
    rows = {point.x: point.values for point in result.points}
    tightest, loosest = min(rows), max(rows)
    # The journal itself does not care about the checkpoint interval.
    entries = {row["journal_entries"] for row in rows.values()}
    assert len(entries) == 1
    # Tighter checkpointing: more checkpoints, higher checkpoint cost.
    assert (
        rows[tightest]["checkpoints_taken"]
        > rows[loosest]["checkpoints_taken"]
    )
    assert (
        rows[tightest]["checkpoint_cost"] > rows[loosest]["checkpoint_cost"]
    )
    # ... but no more journal entries to replay after the crash.
    assert (
        rows[tightest]["replayed_entries"]
        <= rows[loosest]["replayed_entries"]
    )
    for row in rows.values():
        # The planned crash fired and was recovered in every row.
        assert row["recoveries"] >= 1.0
        assert row["journal_kb"] > 0.0
