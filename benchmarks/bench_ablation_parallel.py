"""ABL-6 benchmark: parallel executor makespan vs worker count.

Theorem 2 says any topological order of the dependency graph is a legal
maintenance order; the parallel executor exploits it by running the
ready antichain on N workers.  This bench sweeps workers 1..8 on a
DU-heavy multi-source stream with a PR 1 fault plan injected, under
both conflict strategies, and asserts the PR's acceptance bar: four
workers buy at least a 2x makespan reduction over the 1-worker arm
while every arm's final extent and committed-update set stay identical
to the serial scheduler.
"""

from repro.experiments import run_parallel_ablation

from benchmarks._helpers import full_scale


def test_ablation_parallel_makespan(benchmark, save_result):
    kwargs = (
        {"du_count": 80, "tuples_per_relation": 400}
        if full_scale()
        else {"du_count": 40, "tuples_per_relation": 200}
    )
    result = benchmark.pedantic(
        run_parallel_ablation,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # Extent + processed-set identity is verified inside the run.
    assert result.consistent
    by_workers = {point.x: point.values for point in result.points}
    assert by_workers[1]["pess_speedup"] == 1.0
    for label in ("pess", "opt"):
        assert by_workers[4][f"{label}_speedup"] >= 2.0
        # More workers never hurt the makespan.
        assert (
            by_workers[8][f"{label}_makespan"]
            <= by_workers[4][f"{label}_makespan"] * 1.05
        )
    # Channel contention actually coalesced probe queries at 4 workers.
    assert by_workers[4]["batched_queries"] > 0
