"""CI recovery smoke: a bounded crash-point sweep with a stats artifact.

Runs a small mixed workload once per registered crash point — serial
points on the serial scheduler, ``parallel.*`` points on a 2-worker
executor, ``recover.replay`` via a staged crash-during-recovery — and
checks crash-anywhere equivalence against a journal-off oracle: the
recovered extent and committed (source, seqno) set must match, and
every targeted point must actually have fired.  Writes per-point
journal/checkpoint/replay statistics to
``benchmarks/results/recovery_stats.json`` (uploaded by CI alongside
the benchmark results)::

    PYTHONPATH=src python benchmarks/recovery_smoke.py

Exit status 0 iff every point fired and recovered to the oracle state.
This is a smoke, not the proof — the exhaustive sweep (every point x
strategy x cache x batching x workers 1..8) lives in
``tests/recovery/test_crash_anywhere.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core.strategies import PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.recovery import (
    CRASH_POINTS,
    CrashPlan,
    SchedulerCrash,
    simulate_crash,
)

RESULTS_DIR = Path(__file__).parent / "results"
STATS_PATH = RESULTS_DIR / "recovery_stats.json"

TUPLES = 120
DU_COUNT = 12
SC_COUNT = 2


def _testbed(workers: int | None, **recovery_kwargs):
    testbed = build_testbed(
        PESSIMISTIC,
        tuples_per_relation=TUPLES,
        parallel_workers=workers,
        **recovery_kwargs,
    )
    testbed.engine.schedule_workload(
        testbed.random_du_workload(DU_COUNT, start=0.0, interval=0.5)
    )
    testbed.engine.schedule_workload(
        testbed.schema_change_workload(SC_COUNT, start=1.0, interval=25.0)
    )
    return testbed


def _state(testbed):
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    return extent, testbed.committed_updates()


def _run_replay_crash(workers: int | None):
    """Stage ``recover.replay``: crash mid-run, then crash the replay."""
    testbed = _testbed(
        workers,
        journal=True,
        checkpoint_every=100,  # keep the journal long enough to replay
        crash_plan=CrashPlan("serial.pre_commit", 2),
    )
    try:
        testbed.scheduler.run()
    except SchedulerCrash:
        pass
    testbed.engine.crash_injector.arm(CrashPlan("recover.replay", 1))
    while True:
        simulate_crash(testbed.engine)
        try:
            recovered = testbed.recovery.recover()
            break
        except SchedulerCrash:
            continue  # idempotent replay: retry from durable state
    testbed.manager = recovered.manager
    testbed.scheduler = recovered.scheduler
    testbed.recovery = recovered.harness
    testbed.crash_reports.append(recovered.report)
    testbed.run()
    return testbed


def main() -> int:
    oracles = {}
    for workers in (None, 2):
        oracles[workers] = _state(
            _run(_testbed(workers, journal=False))
        )

    stats, failures = [], []
    for point in sorted(CRASH_POINTS):
        workers = 2 if point.startswith("parallel.") else None
        if point == "recover.replay":
            testbed = _run_replay_crash(workers)
        else:
            testbed = _testbed(
                workers,
                journal=True,
                checkpoint_every=2,
                crash_plan=CrashPlan(point, 1),
            )
            testbed.run()
        injector = testbed.engine.crash_injector
        fired = (
            injector is not None
            and injector.fired is not None
            and injector.fired.point == point
        )
        match = _state(testbed) == oracles[workers]
        metrics = testbed.metrics
        stats.append(
            {
                "point": point,
                "workers": workers or 1,
                "fired": fired,
                "match": match,
                "recoveries": metrics.recoveries,
                "journal_entries": metrics.journal_entries,
                "journal_bytes": metrics.journal_bytes,
                "checkpoints_taken": metrics.checkpoints_taken,
                "replayed_entries": metrics.replayed_entries,
            }
        )
        if not fired:
            failures.append(f"{point}: crash point never fired")
        if not match:
            failures.append(f"{point}: recovered state diverged")
        print(
            f"{point:<22} fired={fired} match={match} "
            f"recoveries={metrics.recoveries} "
            f"replayed={metrics.replayed_entries}"
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    STATS_PATH.write_text(
        json.dumps(
            {"points": stats, "failures": failures},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {STATS_PATH} ({len(stats)} point(s))")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"all {len(stats)} crash points fired and recovered to oracle")
    return 0


def _run(testbed):
    testbed.run()
    return testbed


if __name__ == "__main__":
    sys.exit(main())
