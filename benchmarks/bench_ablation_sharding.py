"""ABL-11 benchmark: sharded multi-scheduler warehouse + read serving.

Partitioning the four overlapping subviews across scheduler shards
gives each shard its own UMQ, detection substrate and engine world,
with the footprint router delivering only the updates a shard's views
reference — so aggregate makespan (completion time of the slowest
shard, the scale-out headline) drops superlinearly in the delivered
work while the extents stay byte-identical to the 1-shard oracle, a
guarantee the run re-verifies under the optimistic strategy, a fault
plan, a crash plan with per-shard journals, a 2-worker parallel
executor, and an SC stream crossing the cross-shard barrier.  The read
front end replays >= 10^6 point/scan reads against the recorded
install timelines at both consistency levels and reports p50/p99
latency plus staleness.

Acceptance bar asserted here: >= 2x pessimistic aggregate-makespan
speedup at 4 shards and >= 10^6 reads served per shard count.
"""

from repro.experiments import run_sharding_ablation

from benchmarks._helpers import full_scale


def test_ablation_sharding_makespan_and_reads(benchmark, save_result):
    kwargs = (
        {}
        if full_scale()
        else {"du_count": 96, "tuples_per_relation": 120, "reads": 1_000_000}
    )
    result = benchmark.pedantic(
        run_sharding_ablation,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # Extent + committed identity vs the 1-shard oracle is verified
    # inside the run for every arm (strategies x faults x crash x
    # workers x SC barrier).
    assert result.consistent
    heaviest = result.points[-1].values
    assert heaviest["pess_makespan_speedup"] >= 2.0
    assert heaviest["opt_makespan_speedup"] >= 2.0
    assert heaviest["reads_served"] >= 1_000_000
    # The router actually filtered (the speedup is not vacuous).
    assert heaviest["router_dropped"] > 0
    # Sharding must not lose or duplicate maintenance work: the summed
    # serial busy time stays within 1% of the 1-shard arm's.
    single = result.points[0].values
    assert heaviest["pess_busy_time"] == single["pess_busy_time"] or (
        abs(heaviest["pess_busy_time"] - single["pess_busy_time"])
        / single["pess_busy_time"]
        < 0.01
    )
