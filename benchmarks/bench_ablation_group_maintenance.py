"""ABL-8 benchmark: adaptive group maintenance, batching on vs off.

The batch policy scans the corrected UMQ for maximal safe runs of
SC-free units and merges each into one voluntary batch, coalescing
same-relation deltas so the batch pays one probe sweep per touched
relation instead of one maintenance round per message.  This bench runs
a DU-heavy stream against the two-subview multi-view testbed under both
conflict strategies (serial) plus a 4-worker parallel arm, batching off
and on, and asserts the PR's acceptance bar: at the heaviest stream
batching buys at least a 2x reduction in both maintenance rounds and
total source round trips, while per-view extents and committed-update
sets stay byte-identical between the arms.
"""

from repro.experiments import run_group_maintenance_ablation

from benchmarks._helpers import full_scale


def test_ablation_group_maintenance_rounds(benchmark, save_result):
    kwargs = (
        {"du_counts": (120, 240, 480), "tuples_per_relation": 400}
        if full_scale()
        else {}
    )
    result = benchmark.pedantic(
        run_group_maintenance_ablation,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # Per-view extent + committed (source, seqno) identity is verified
    # inside the run for every (strategy, du_count, workers) arm.
    assert result.consistent
    heaviest = result.points[-1].values
    for label in ("pess", "opt", "par"):
        assert heaviest[f"{label}_round_speedup"] >= 2.0
        assert heaviest[f"{label}_trip_speedup"] >= 2.0
    # Fewer rounds must show up as virtual-clock savings too.
    assert heaviest["pess_cost_speedup"] > 1.0
    # Grouping actually fired.
    assert heaviest["batches_formed"] > 0
    assert heaviest["grouped_messages"] > 0
