"""ABL-10 benchmark: auxiliary self-maintenance vs cache-only vs bare.

The self-maintenance store keeps per-relation projections of exactly
the columns the view's maintenance probes need, seeded free from the
initial load and synced locally from every committed delta — so a
covered data-update probe is answered with **zero** source round trips
(the snapshot cache still pays one trip per cold key).  This bench runs
the ABL-7 hot-key DU-heavy stream under both conflict strategies
(serial) plus a 4-worker parallel arm, and asserts the PR's acceptance
bar: at the heaviest end of the sweep at least 80% of data-update
units are fully self-maintained, total virtual-clock cost beats the
cache-only arm, and the final extents and committed-update sets stay
byte-identical to the store-off oracle.
"""

from repro.experiments import run_self_maintenance_ablation

from benchmarks._helpers import full_scale


def test_ablation_selfmaint_zero_trip_fraction(benchmark, save_result):
    kwargs = (
        {"du_counts": (120, 240, 480), "tuples_per_relation": 400}
        if full_scale()
        else {}
    )
    result = benchmark.pedantic(
        run_self_maintenance_ablation,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    save_result(result)
    # Extent + committed (source, seqno) identity is verified inside
    # the run for every (strategy, du_count) arm pair.
    assert result.consistent
    heaviest = result.points[-1].values
    # The acceptance bar: >= 80% of DU units maintained with zero
    # source round trips, in every arm including the parallel one.
    for label in ("pess", "opt", "parallel"):
        assert heaviest[f"{label}_selfmaint_fraction"] >= 0.8
    # Zero-trip answering must beat both the bare and the cache-only
    # configurations on total virtual-clock cost.
    assert heaviest["pess_cost_speedup"] > 1.0
    assert heaviest["opt_cost_speedup"] > 1.0
    assert heaviest["pess_cost_speedup_vs_cache"] > 1.0
    # The store actually answered (not vacuously consistent).
    assert heaviest["aux_hits"] > 0
