"""FIG-11 benchmark: number-of-schema-changes sweep at 25 s intervals.

Paper claim: more schema changes introduce more conflicts among
themselves, so the abort cost (and the total) grows with their number.
"""

from repro.experiments import run_fig11

from benchmarks._helpers import bench_tuples, full_scale


def test_fig11_sc_count(benchmark, save_result):
    sc_counts = (5, 10, 15, 20, 25) if full_scale() else (5, 10, 15)
    du_count = 200 if full_scale() else 100

    result = benchmark.pedantic(
        run_fig11,
        kwargs={
            "sc_counts": sc_counts,
            "du_count": du_count,
            "tuples_per_relation": bench_tuples(),
        },
        rounds=1,
        iterations=1,
    )
    save_result(result)

    assert result.consistent
    for name in ("pessimistic", "optimistic"):
        totals = result.series(name)
        aborts = result.series(f"abort_of_{name}")
        # Shape: both total and abort cost grow with the SC count.
        assert totals[-1] > totals[0]
        assert aborts[-1] > aborts[0]
