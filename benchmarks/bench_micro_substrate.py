"""Micro-benchmarks of the substrate hot paths.

These are classic repeated-timing benchmarks (unlike the figure benches,
which run a whole simulated experiment once): the hash-join executor,
delta application, probe compensation, and one end-to-end DU
maintenance.
"""

import random

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import PESSIMISTIC
from repro.maintenance.compensation import compensate_answer
from repro.relational.delta import Delta
from repro.relational.executor import execute
from repro.relational.predicate import InPredicate, attr
from repro.relational.query import JoinCondition, RelationRef, SPJQuery
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.relational.types import AttributeType
from repro.sources.messages import DataUpdate, UpdateMessage
from repro.experiments.testbed import build_testbed

R = RelationSchema.of("R", [("k", AttributeType.INT), "a"])
T = RelationSchema.of("T", [("k", AttributeType.INT), "x"])


def _table(schema, size, seed):
    rng = random.Random(seed)
    return Table(
        schema,
        [(rng.randrange(size), f"v{i}") for i in range(size)],
    )


def test_micro_hash_join_10k(benchmark):
    tables = {"R": _table(R, 10_000, 1), "T": _table(T, 10_000, 2)}
    query = SPJQuery(
        relations=(RelationRef("s", "R", "R"), RelationRef("s", "T", "T")),
        projection=(attr("R", "a"), attr("T", "x")),
        joins=(JoinCondition(attr("R", "k"), attr("T", "k")),),
    )
    benchmark(execute, query, tables)


def test_micro_probe_scan_10k(benchmark):
    table = _table(R, 10_000, 3)
    query = SPJQuery(
        relations=(RelationRef("s", "R", "R"),),
        projection=(attr("R", "a"),),
        selection=InPredicate(attr("R", "k"), frozenset(range(50))),
    )
    benchmark(execute, query, {"R": table})


def test_micro_delta_apply(benchmark):
    def apply_round():
        table = _table(R, 2_000, 4)
        delta = Delta(R)
        for index in range(500):
            delta.add((index, f"n{index}"), 1)
        table.apply_delta(delta)

    benchmark(apply_round)


def test_micro_compensation(benchmark):
    answer = _table(R, 1_000, 5)
    query = SPJQuery(
        relations=(RelationRef("s", "R", "R"),),
        projection=(attr("R", "k"), attr("R", "a")),
        selection=InPredicate(attr("R", "k"), frozenset(range(1000))),
    )
    leaked = [
        UpdateMessage(
            "s",
            index,
            0.0,
            DataUpdate.insert(R, [(index, f"v{index}")]),
        )
        for index in range(20)
    ]
    benchmark(compensate_answer, answer, query, "R", leaked)


def test_micro_single_du_maintenance(benchmark):
    """One full DU maintenance over the 6-relation testbed view."""

    def run_one():
        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=500)
        testbed.engine.schedule_workload(
            testbed.random_du_workload(1, 0.0, 1.0, seed=6)
        )
        DynoScheduler(testbed.manager, PESSIMISTIC).run()

    benchmark.pedantic(run_one, rounds=3, iterations=1)
