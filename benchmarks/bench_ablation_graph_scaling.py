"""ABL-2 benchmark: dependency-graph construction scaling (O(mn)).

Section 4.1.1 analyzes graph construction as O(mn) + O(n); this bench
measures the real constant factors of our implementation.
"""

from repro.experiments import (
    run_graph_scaling_ablation,
    run_incremental_detection_ablation,
)
from repro.experiments.ablations import _synthetic_queue
from repro.core.dependencies import find_dependencies
from repro.core.strategies import PESSIMISTIC
from repro.experiments.testbed import build_testbed

from benchmarks._helpers import full_scale


def test_ablation_graph_scaling_table(benchmark, save_result):
    sizes = (
        ((100, 5), (200, 10), (400, 20), (800, 40), (1600, 80))
        if full_scale()
        else ((100, 5), (200, 10), (400, 20), (800, 40))
    )
    result = benchmark.pedantic(
        run_graph_scaling_ablation,
        kwargs={"sizes": sizes},
        rounds=1,
        iterations=1,
    )
    save_result(result)
    edges = result.series("edges")
    # O(mn): 2x n and 2x m -> ~4x edges between consecutive points.
    for previous, current in zip(edges, edges[1:]):
        assert 2.0 < current / previous < 8.0


def test_ablation_incremental_detection(benchmark, save_result):
    """ABL-3: the incremental substrate vs per-round rebuilds.

    The substrate's contract (and this PR's acceptance bar): at queue
    length >= 200 on a DU-heavy stream, per-round detection must be at
    least 2x cheaper than a from-scratch build, with bit-identical
    corrected orders.
    """
    sizes = (50, 100, 200, 400, 800) if full_scale() else (50, 100, 200, 400)
    result = benchmark.pedantic(
        run_incremental_detection_ablation,
        kwargs={"sizes": sizes},
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.consistent  # orders verified identical inside the run
    for point in result.points:
        if point.x >= 200:
            assert point.values["speedup"] >= 2.0


def test_micro_graph_build(benchmark):
    """Steady-state timing of one pre-exec detection round."""
    view_query = build_testbed(
        PESSIMISTIC, tuples_per_relation=4
    ).manager.view.query
    messages = _synthetic_queue(400, 20)
    benchmark(find_dependencies, messages, view_query)


def test_micro_legal_order(benchmark):
    """Cycle merge + topological sort on a 400-update queue."""
    from repro.core.detection import detect

    view_query = build_testbed(
        PESSIMISTIC, tuples_per_relation=4
    ).manager.view.query
    messages = _synthetic_queue(400, 20)
    graph = detect(messages, view_query).graph
    benchmark(graph.legal_order)
