"""FIG-8 benchmark: data-update processing with vs without detection.

Paper claim: the two lines are nearly identical and linear — Dyno's
detection adds almost unobservable overhead to DU-only streams.
"""

from repro.experiments import run_fig08

from benchmarks._helpers import bench_tuples, full_scale


def test_fig08_du_detection(benchmark, save_result):
    if full_scale():
        du_counts = (500, 1000, 1500, 2000, 2500, 3000)
    else:
        du_counts = (250, 500, 1000)

    result = benchmark.pedantic(
        run_fig08,
        kwargs={
            "du_counts": du_counts,
            "tuples_per_relation": bench_tuples(),
        },
        rounds=1,
        iterations=1,
    )
    save_result(result)

    assert result.consistent
    with_detection = result.series("with_detection")
    without = result.series("without_detection")
    # Shape: detection overhead < 1% everywhere.
    for with_value, without_value in zip(with_detection, without):
        assert with_value - without_value < 0.01 * without_value + 0.01
    # Shape: linear in the number of updates.
    ratio = with_detection[-1] / with_detection[0]
    expected = du_counts[-1] / du_counts[0]
    assert 0.7 * expected < ratio < 1.3 * expected
