"""ABL-1 benchmark: Dyno's cycle-only merge vs blind whole-queue merge.

Section 4.2 argues against merging everything on a broken query: blind
merging loses intermediate view states (fewer, bigger refreshes) and
enlarges the abortable window.
"""

from repro.experiments import run_blind_merge_ablation

from benchmarks._helpers import bench_tuples, full_scale


def test_ablation_blind_merge(benchmark, save_result):
    du_count = 200 if full_scale() else 80

    result = benchmark.pedantic(
        run_blind_merge_ablation,
        kwargs={
            "du_count": du_count,
            "sc_count": 8,
            "sc_interval": 17.0,
            "tuples_per_relation": bench_tuples(),
        },
        rounds=1,
        iterations=1,
    )
    save_result(result)

    assert result.consistent
    dyno = result.points[0].values
    blind = result.points[1].values
    # Dyno preserves strictly more intermediate view states.
    assert dyno["view_refreshes"] > blind["view_refreshes"]
