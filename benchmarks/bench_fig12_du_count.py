"""FIG-12 benchmark: number-of-data-updates sweep with 5 schema changes.

Paper claim: the abort cost is not significantly affected by the data
updates — schema changes are the cause of aborts — while the total
maintenance cost grows with the update volume.
"""

from repro.experiments import run_fig12

from benchmarks._helpers import bench_tuples, full_scale


def test_fig12_du_count(benchmark, save_result):
    du_counts = (200, 300, 400, 500, 600) if full_scale() else (200, 400, 600)

    result = benchmark.pedantic(
        run_fig12,
        kwargs={
            "du_counts": du_counts,
            "tuples_per_relation": bench_tuples(),
        },
        rounds=1,
        iterations=1,
    )
    save_result(result)

    assert result.consistent
    for name in ("pessimistic", "optimistic"):
        totals = result.series(name)
        aborts = result.series(f"abort_of_{name}")
        # Shape: total grows with DU volume...
        assert totals[-1] > totals[0]
        # ...while the abort cost stays in one band.
        band = max(max(aborts), 1.0)
        assert max(aborts) - min(aborts) < 0.5 * band
