"""Benchmark fixtures.

Each figure benchmark runs its experiment once (timed with
``benchmark.pedantic``), prints the reproduced series and saves it under
``benchmarks/results/``.  Scale is controlled by ``DYNO_BENCH_FULL=1``
(see ``benchmarks/_helpers.py``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist a FigureResult table and echo it to stdout."""

    def _save(result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        stem = result.figure_id.lower()
        (RESULTS_DIR / f"{stem}.txt").write_text(result.table() + "\n")
        (RESULTS_DIR / f"{stem}.json").write_text(
            result.to_json() + "\n"
        )
        print()
        print(result.table())

    return _save
