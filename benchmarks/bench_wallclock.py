"""ABL-12 benchmark: wall-clock kernel — compiled plans vs naive executor.

Two entry points:

* **pytest** (the CI smoke): ``pytest benchmarks/bench_wallclock.py``
  runs the ablation once at smoke scale, saves
  ``benchmarks/results/abl-12-wallclock.json`` and asserts the PR's
  acceptance bar — the compiled kernel is >= 2x the naive executor on
  the join-heavy recompute arm, and every compiled arm's extent,
  committed ``(source, seqno)`` set and final virtual clock are
  byte-identical to the naive oracle, on both the ``memory`` and
  ``sqlite`` backends.

* **CLI** (the profiling lane)::

      PYTHONPATH=src python benchmarks/bench_wallclock.py \
          [--full] [--profile] [--profile-dir benchmarks/results/profiles]

  writes the same figure JSON plus a consolidated ``BENCH_wallclock.json``
  at the repository root (figure + interpreter + commit metadata), and
  with ``--profile`` re-runs the heaviest arms under ``cProfile``,
  dumping ``*.prof`` (binary) and ``*.txt`` (top-30 cumulative)
  artifacts for each executor.

Wall-clock numbers jitter with machine load; the regression guard
(``check_regression.py``) recognizes the figure's ``timebase: wall``
marker and applies a generous tolerance band instead of the exact
check used for virtual-time figures.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"
SUMMARY_PATH = REPO_ROOT / "BENCH_wallclock.json"

#: the acceptance bar asserted on the join-heavy (recompute) arm
MIN_JOIN_HEAVY_SPEEDUP = 2.0


def _run(full_scale: bool, profile_dir=None):
    from repro.experiments import run_wallclock_ablation

    kwargs = (
        {
            "du_counts": (60, 120),
            "tuples_per_relation": 400,
            "recompute_tuples": 4000,
            "repeats": 3,
        }
        if full_scale
        else {
            "du_counts": (30, 60),
            "tuples_per_relation": 250,
            "recompute_tuples": 2500,
            "repeats": 2,
        }
    )
    return run_wallclock_ablation(profile_dir=profile_dir, **kwargs)


def _assert_acceptance(result) -> None:
    # Extent + committed set + virtual-clock identity between the
    # compiled kernel and the naive oracle is folded into the bit.
    assert result.consistent, "\n".join(result.notes)
    heaviest = result.points[-1].values
    assert heaviest["recompute_speedup"] >= MIN_JOIN_HEAVY_SPEEDUP, (
        f"join-heavy arm speedup {heaviest['recompute_speedup']:.2f}x "
        f"below the {MIN_JOIN_HEAVY_SPEEDUP:.0f}x acceptance bar"
    )
    # The maintenance arms must at minimum not be slowed down by plan
    # compilation (generous floor: wall clock jitters in CI).
    for backend in ("memory", "sqlite"):
        assert heaviest[f"{backend}_maintain_speedup"] >= 0.7


def test_wallclock_kernel(benchmark, save_result):
    from benchmarks._helpers import full_scale

    result = benchmark.pedantic(
        _run,
        args=(full_scale(),),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    _assert_acceptance(result)


# ----------------------------------------------------------------------
# CLI (profiling lane)
# ----------------------------------------------------------------------


def _current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale sweep (default: CI smoke scale)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="re-run the heaviest arms under cProfile and dump "
        "*.prof/*.txt artifacts",
    )
    parser.add_argument(
        "--profile-dir",
        type=Path,
        default=RESULTS_DIR / "profiles",
        help="where --profile drops its artifacts",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=SUMMARY_PATH,
        help="consolidated wall-clock summary JSON (repo root)",
    )
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="record numbers without enforcing the speedup bar",
    )
    arguments = parser.parse_args(argv)

    result = _run(
        arguments.full,
        profile_dir=arguments.profile_dir if arguments.profile else None,
    )
    print(result.table())

    RESULTS_DIR.mkdir(exist_ok=True)
    stem = result.figure_id.lower()
    (RESULTS_DIR / f"{stem}.txt").write_text(result.table() + "\n")
    (RESULTS_DIR / f"{stem}.json").write_text(result.to_json() + "\n")

    profiles = []
    if arguments.profile:
        profiles = sorted(
            str(path.relative_to(REPO_ROOT))
            for path in arguments.profile_dir.glob("*.prof")
        )
    summary = {
        "figure": json.loads(result.to_json()),
        "commit": _current_commit(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scale": "full" if arguments.full else "smoke",
        "profiles": profiles,
        "timebase": "wall",
    }
    arguments.output.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nwrote {arguments.output}")
    if profiles:
        print("profiles: " + ", ".join(profiles))

    if not arguments.no_assert:
        try:
            _assert_acceptance(result)
        except AssertionError as error:
            print(f"FAIL: {error}", file=sys.stderr)
            return 1
        heaviest = result.points[-1].values
        print(
            f"join-heavy arm: {heaviest['recompute_speedup']:.2f}x "
            f"(bar {MIN_JOIN_HEAVY_SPEEDUP:.0f}x) — ok"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
