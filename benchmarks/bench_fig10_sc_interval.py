"""FIG-10 benchmark: schema-change interval sweep.

Paper claims: cost is lowest when all schema changes flood in together
(one correction round, no broken queries), peaks when the interval
approximates one schema-change maintenance time, and settles to pure
maintenance once the interval exceeds it.
"""

from repro.experiments import run_fig10

from benchmarks._helpers import bench_tuples, full_scale


def test_fig10_sc_interval(benchmark, save_result):
    intervals = (
        (0.0, 3.0, 9.0, 17.0, 23.0, 29.0, 41.0)
        if full_scale()
        else (0.0, 9.0, 17.0, 23.0, 41.0)
    )
    du_count = 200 if full_scale() else 100

    result = benchmark.pedantic(
        run_fig10,
        kwargs={
            "intervals": intervals,
            "du_count": du_count,
            "sc_count": 10,
            "tuples_per_relation": bench_tuples(),
        },
        rounds=1,
        iterations=1,
    )
    save_result(result)

    assert result.consistent
    for name in ("pessimistic", "optimistic"):
        series = dict(zip(result.xs(), result.series(name)))
        aborts = dict(zip(result.xs(), result.series(f"abort_of_{name}")))
        peak_interval = max(series, key=series.get)
        # Shape: the peak sits at an intermediate interval.
        assert 3.0 <= peak_interval <= 29.0
        # Shape: flood-at-once is cheapest (corrected in one round).
        assert series[0.0] <= min(series.values()) * 1.05
        # Shape: past one maintenance time aborts die out.
        assert aborts[41.0] < 0.05 * series[41.0] + 1.0
