"""FIG-9 benchmark: the cost of a broken query.

Paper claims: aborting a schema-change maintenance is far more expensive
than aborting a data-update maintenance; the pessimistic strategy avoids
the abort entirely when the conflicting updates are already queued.
"""

from repro.experiments import run_fig09

from benchmarks._helpers import bench_tuples


def test_fig09_broken_query(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig09,
        kwargs={"tuples_per_relation": bench_tuples()},
        rounds=1,
        iterations=1,
    )
    save_result(result)

    assert result.consistent
    du_sc = result.points[0].values
    sc_sc = result.points[1].values
    # pessimistic ≈ no-concurrency minimum
    assert abs(du_sc["pessimistic"] - du_sc["no_concurrency"]) < (
        0.05 * du_sc["no_concurrency"]
    )
    assert abs(sc_sc["pessimistic"] - sc_sc["no_concurrency"]) < (
        0.05 * sc_sc["no_concurrency"]
    )
    # optimistic pays; the SC+SC abort dwarfs the DU+SC abort
    assert du_sc["optimistic"] > du_sc["pessimistic"]
    assert sc_sc["optimistic"] > 1.2 * sc_sc["pessimistic"]
    sc_gap = sc_sc["optimistic"] - sc_sc["pessimistic"]
    du_gap = du_sc["optimistic"] - du_sc["pessimistic"]
    assert sc_gap > 10 * du_gap
