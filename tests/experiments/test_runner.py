"""FigureResult scaffolding."""

from repro.experiments.runner import FigureResult, SeriesPoint


def make_result() -> FigureResult:
    result = FigureResult(
        figure_id="FIG-X",
        title="demo",
        x_label="n",
        series_names=["a", "b"],
    )
    result.add(1, a=1.0, b=2.0)
    result.add(2, a=3.0, b=4.0)
    return result


def test_series_extraction():
    result = make_result()
    assert result.series("a") == [1.0, 3.0]
    assert result.xs() == [1, 2]


def test_table_renders_all_points():
    result = make_result()
    table = result.table()
    assert "FIG-X" in table
    assert "1.00" in table and "4.00" in table


def test_missing_value_renders_dash():
    result = make_result()
    result.points.append(SeriesPoint(3, {"a": 5.0}))
    assert "-" in result.table()


def test_notes_and_warnings_rendered():
    result = make_result()
    result.notes.append("a note")
    result.consistent = False
    table = result.table()
    assert "note: a note" in table
    assert "WARNING" in table


def test_checked_folds_reports():
    from repro.experiments.runner import checked
    from repro.views.consistency import ConsistencyReport

    result = make_result()
    good = ConsistencyReport(True, 1, 1)
    bad = ConsistencyReport(False, 2, 1)
    checked(result, [good, bad])
    assert not result.consistent
    assert any("INCONSISTENT" in note for note in result.notes)


def test_checked_all_good_keeps_consistent():
    from repro.experiments.runner import checked
    from repro.views.consistency import ConsistencyReport

    result = make_result()
    checked(result, [ConsistencyReport(True, 1, 1)])
    assert result.consistent
