"""Quick-scale runs of every figure harness, asserting the paper shapes.

These use a small testbed (200-500 tuples per relation) so the whole
module runs in well under a minute; the benchmark harness runs the
full-scale versions.
"""

import pytest

from repro.experiments import (
    run_blind_merge_ablation,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_graph_scaling_ablation,
    run_starvation_study,
)

SCALE = 300  # tuples per relation for quick runs


class TestFig08:
    def test_detection_overhead_negligible_and_linear(self):
        result = run_fig08(
            du_counts=(50, 100, 200), tuples_per_relation=SCALE
        )
        assert result.consistent
        with_detection = result.series("with_detection")
        without = result.series("without_detection")
        for with_value, without_value in zip(with_detection, without):
            # overhead < 1% of the total (paper: "almost unobservable")
            assert with_value - without_value < 0.01 * without_value + 0.01
        # linear growth: cost at 200 ≈ 4x cost at 50 (within 25%)
        ratio = with_detection[2] / with_detection[0]
        assert 3.0 < ratio < 5.0


class TestFig09:
    def test_bar_pattern(self):
        result = run_fig09(tuples_per_relation=SCALE)
        assert result.consistent
        du_sc = result.points[0].values
        sc_sc = result.points[1].values
        # pessimistic ≈ no-concurrency in both workloads
        assert du_sc["pessimistic"] == pytest.approx(
            du_sc["no_concurrency"], rel=0.05
        )
        assert sc_sc["pessimistic"] == pytest.approx(
            sc_sc["no_concurrency"], rel=0.05
        )
        # optimistic pays the abort, dramatically so for SC+SC
        assert du_sc["optimistic"] > du_sc["pessimistic"]
        assert sc_sc["optimistic"] > 1.2 * sc_sc["pessimistic"]
        sc_gap = sc_sc["optimistic"] - sc_sc["pessimistic"]
        du_gap = du_sc["optimistic"] - du_sc["pessimistic"]
        assert sc_gap > 10 * du_gap  # SC aborts dwarf DU aborts


class TestFig10:
    def test_interval_shape(self):
        result = run_fig10(
            intervals=(0.0, 17.0, 41.0),
            du_count=60,
            sc_count=6,
            tuples_per_relation=SCALE,
        )
        assert result.consistent
        for name in ("pessimistic", "optimistic"):
            series = dict(zip(result.xs(), result.series(name)))
            aborts = dict(
                zip(result.xs(), result.series(f"abort_of_{name}"))
            )
            # interval 0: everything corrected at once, (almost) no
            # aborts — the optimistic run pays one cheap DU-probe break
            assert aborts[0.0] <= 0.5
            # peak at the middle interval
            assert series[17.0] > series[0.0]
            assert series[17.0] > series[41.0]
            # tail: no abort cost once SCs stop interfering
            assert aborts[41.0] == pytest.approx(0.0, abs=1.0)


class TestFig11:
    def test_abort_grows_with_sc_count(self):
        result = run_fig11(
            sc_counts=(3, 9),
            du_count=60,
            tuples_per_relation=SCALE,
        )
        assert result.consistent
        for name in ("pessimistic", "optimistic"):
            aborts = result.series(f"abort_of_{name}")
            totals = result.series(name)
            assert aborts[1] > aborts[0]
            assert totals[1] > totals[0]


class TestFig12:
    def test_abort_flat_in_du_count(self):
        # sc_interval=8 keeps the SC stream inside the DU window for
        # both points, as in the paper's full-scale setup.
        result = run_fig12(
            du_counts=(100, 200),
            sc_interval=8.0,
            tuples_per_relation=SCALE,
        )
        assert result.consistent
        for name in ("pessimistic", "optimistic"):
            aborts = result.series(f"abort_of_{name}")
            totals = result.series(name)
            # totals grow with DUs, abort cost stays in the same band
            assert totals[1] > totals[0]
            assert abs(aborts[1] - aborts[0]) < 0.5 * max(
                aborts[0], aborts[1], 1.0
            )


class TestAblations:
    def test_blind_merge_loses_intermediate_states(self):
        result = run_blind_merge_ablation(
            du_count=40, sc_count=4, sc_interval=8.0,
            tuples_per_relation=SCALE,
        )
        assert result.consistent
        dyno = result.points[0].values
        blind = result.points[1].values
        assert dyno["view_refreshes"] > blind["view_refreshes"]

    def test_graph_scaling_is_near_linear_in_nm(self):
        result = run_graph_scaling_ablation(
            sizes=((100, 5), (400, 20))
        )
        build_times = result.series("build_ms")
        edge_counts = result.series("edges")
        # 4x updates and 4x SCs -> ~16x edges (O(mn))
        assert 8 < edge_counts[1] / edge_counts[0] < 32
        assert build_times[1] > build_times[0]

    def test_starvation_study_always_converges(self):
        result = run_starvation_study(
            intervals=(1.0, 20.0),
            stream_length=5,
            du_count=20,
            tuples_per_relation=200,
        )
        assert result.consistent
        for point in result.points:
            assert point.values["maintained"] > 0
