"""The Section 6.1 testbed builder and its workload helpers."""

import pytest

from repro.core.strategies import PESSIMISTIC
from repro.experiments.testbed import (
    build_testbed,
    fixed_drop_attribute,
    fixed_rename_relation,
    relation_name,
    relation_schema,
    source_name,
    source_of_relation,
)
from repro.sources.messages import DropAttribute, RenameRelation


class TestNaming:
    def test_relation_names(self):
        assert relation_name(0) == "R1"
        assert relation_name(5) == "R6"

    def test_source_names(self):
        assert source_name(0) == "src1"
        assert source_name(2) == "src3"

    def test_distribution_two_per_source(self):
        owners = [source_of_relation(index) for index in range(6)]
        assert owners == ["src1", "src1", "src2", "src2", "src3", "src3"]

    def test_schema_shape(self):
        schema = relation_schema(2)
        assert schema.name == "R3"
        assert schema.attribute_names == ("K", "A3", "B3", "C3")


class TestFixedIntents:
    def test_fixed_drop_attribute_default_target(self):
        update = fixed_drop_attribute(3).update
        assert update == DropAttribute("R4", "B4")

    def test_fixed_drop_attribute_custom(self):
        update = fixed_drop_attribute(0, "C1").update
        assert update == DropAttribute("R1", "C1")

    def test_fixed_rename(self):
        update = fixed_rename_relation(5).update
        assert update == RenameRelation("R6", "R6__v2")


class TestWorkloadGenerators:
    def test_du_workload_count_and_spacing(self):
        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=10)
        workload = testbed.random_du_workload(10, start=1.0, interval=0.5)
        items = workload.sorted()
        assert len(items) == 10
        assert items[0].at == 1.0
        assert items[-1].at == pytest.approx(5.5)

    def test_du_workload_deterministic(self):
        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=10)
        first = testbed.random_du_workload(5, 0.0, 1.0, seed=3)
        second = testbed.random_du_workload(5, 0.0, 1.0, seed=3)
        assert [i.source_name for i in first] == [
            i.source_name for i in second
        ]

    def test_sc_workload_first_is_drop(self):
        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=10)
        workload = testbed.schema_change_workload(3, 0.0, 5.0)
        intents = [item.intent for item in workload.sorted()]
        from repro.sources.workload import (
            DropRandomAttribute,
            RenameRandomRelation,
        )

        assert isinstance(intents[0], DropRandomAttribute)
        assert all(
            isinstance(intent, RenameRandomRelation)
            for intent in intents[1:]
        )

    def test_sc_workload_without_drop(self):
        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=10)
        workload = testbed.schema_change_workload(
            2, 0.0, 5.0, drop_first=False
        )
        from repro.sources.workload import RenameRandomRelation

        assert all(
            isinstance(item.intent, RenameRandomRelation)
            for item in workload.sorted()
        )


class TestBuild:
    def test_initial_view_is_one_to_one(self):
        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=25)
        assert len(testbed.manager.mv.extent) == 25

    def test_seed_controls_data(self):
        first = build_testbed(PESSIMISTIC, tuples_per_relation=10, seed=1)
        second = build_testbed(PESSIMISTIC, tuples_per_relation=10, seed=1)
        third = build_testbed(PESSIMISTIC, tuples_per_relation=10, seed=2)
        rows_first = sorted(first.manager.mv.extent.rows())
        assert rows_first == sorted(second.manager.mv.extent.rows())
        assert rows_first != sorted(third.manager.mv.extent.rows())
