"""The ``python -m repro.experiments`` command-line runner."""

import pytest

import repro.experiments.__main__ as cli


class TestArgumentHandling:
    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_runner_table_contains_all_figures(self):
        runners = cli._runners(full=False)
        for name in ("fig08", "fig09", "fig10", "fig11", "fig12"):
            assert name in runners
        assert any(name.startswith("abl-") for name in runners)

    def test_full_and_quick_tables_have_same_keys(self):
        assert set(cli._runners(False)) == set(cli._runners(True))


class TestExecution:
    def test_runs_requested_figure(self, monkeypatch, capsys):
        calls = []

        class FakeResult:
            consistent = True

            def table(self):
                return "FAKE TABLE"

        def fake_runners(
            full,
            seed=None,
            snapshot_cache=False,
            self_maintenance=False,
            group_maintenance=False,
            journal=False,
            checkpoint_every=8,
            crash_seed=None,
            shards=1,
            shard_processes=0,
        ):
            return {"fig09": lambda: calls.append(full) or FakeResult()}

        monkeypatch.setattr(cli, "_runners", fake_runners)
        assert cli.main(["fig09"]) == 0
        assert calls == [False]
        assert "FAKE TABLE" in capsys.readouterr().out

    def test_full_flag_threaded_through(self, monkeypatch):
        seen = []

        class FakeResult:
            consistent = True

            def table(self):
                return ""

        monkeypatch.setattr(
            cli,
            "_runners",
            lambda full, seed=None, snapshot_cache=False, self_maintenance=False, group_maintenance=False, journal=False, checkpoint_every=8, crash_seed=None, shards=1, shard_processes=0: {
                "fig09": lambda: seen.append(full) or FakeResult()
            },
        )
        cli.main(["fig09", "--full"])
        assert seen == [True]

    def test_seed_flag_threaded_through(self, monkeypatch):
        seen = []

        class FakeResult:
            consistent = True

            def table(self):
                return ""

        monkeypatch.setattr(
            cli,
            "_runners",
            lambda full, seed=None, snapshot_cache=False, self_maintenance=False, group_maintenance=False, journal=False, checkpoint_every=8, crash_seed=None, shards=1, shard_processes=0: {
                "fig09": lambda: seen.append(seed) or FakeResult()
            },
        )
        cli.main(["fig09", "--seed", "42"])
        cli.main(["fig09"])
        assert seen == [42, None]

    def test_cache_flag_threaded_through(self, monkeypatch):
        seen = []

        class FakeResult:
            consistent = True

            def table(self):
                return ""

        monkeypatch.setattr(
            cli,
            "_runners",
            lambda full, seed=None, snapshot_cache=False, self_maintenance=False, group_maintenance=False, journal=False, checkpoint_every=8, crash_seed=None, shards=1, shard_processes=0: {
                "fig09": lambda: seen.append(snapshot_cache) or FakeResult()
            },
        )
        cli.main(["fig09", "--cache"])
        cli.main(["fig09", "--no-cache"])
        cli.main(["fig09"])
        assert seen == [True, False, False]

    def test_cache_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            cli.main(["fig09", "--cache", "--no-cache"])

    def test_self_maintenance_flag_threaded_through(self, monkeypatch):
        seen = []

        class FakeResult:
            consistent = True

            def table(self):
                return ""

        monkeypatch.setattr(
            cli,
            "_runners",
            lambda full, seed=None, snapshot_cache=False, self_maintenance=False, group_maintenance=False, journal=False, checkpoint_every=8, crash_seed=None, shards=1, shard_processes=0: {
                "fig09": lambda: seen.append(self_maintenance)
                or FakeResult()
            },
        )
        cli.main(["fig09", "--self-maintenance"])
        cli.main(["fig09", "--no-self-maintenance"])
        cli.main(["fig09"])
        assert seen == [True, False, False]

    def test_self_maintenance_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            cli.main(
                ["fig09", "--self-maintenance", "--no-self-maintenance"]
            )

    def test_batch_flag_threaded_through(self, monkeypatch):
        seen = []

        class FakeResult:
            consistent = True

            def table(self):
                return ""

        monkeypatch.setattr(
            cli,
            "_runners",
            lambda full, seed=None, snapshot_cache=False, self_maintenance=False, group_maintenance=False, journal=False, checkpoint_every=8, crash_seed=None, shards=1, shard_processes=0: {
                "fig09": lambda: seen.append(group_maintenance)
                or FakeResult()
            },
        )
        cli.main(["fig09", "--batch"])
        cli.main(["fig09", "--no-batch"])
        cli.main(["fig09"])
        assert seen == [True, False, False]

    def test_batch_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            cli.main(["fig09", "--batch", "--no-batch"])

    def test_recovery_flags_threaded_through(self, monkeypatch):
        seen = []

        class FakeResult:
            consistent = True

            def table(self):
                return ""

        monkeypatch.setattr(
            cli,
            "_runners",
            lambda full, seed=None, snapshot_cache=False, self_maintenance=False, group_maintenance=False, journal=False, checkpoint_every=8, crash_seed=None, shards=1, shard_processes=0: {
                "fig09": lambda: seen.append(
                    (journal, checkpoint_every, crash_seed)
                )
                or FakeResult()
            },
        )
        cli.main(["fig09", "--journal", "--checkpoint-every", "4"])
        cli.main(["fig09", "--crash-seed", "11"])
        cli.main(["fig09"])
        assert seen == [(True, 4, None), (False, 8, 11), (False, 8, None)]

    def test_crash_seed_implies_journal_in_runners(self):
        runners = cli._runners(full=False, crash_seed=3)
        assert "fig12" in runners

    def test_shards_flag_threaded_through(self, monkeypatch):
        seen = []

        class FakeResult:
            consistent = True

            def table(self):
                return ""

        monkeypatch.setattr(
            cli,
            "_runners",
            lambda full, seed=None, snapshot_cache=False, self_maintenance=False, group_maintenance=False, journal=False, checkpoint_every=8, crash_seed=None, shards=1, shard_processes=0: {
                "fig09": lambda: seen.append(shards) or FakeResult()
            },
        )
        cli.main(["fig09", "--shards", "4"])
        cli.main(["fig09"])
        assert seen == [4, 1]

    def test_shards_must_be_positive(self):
        with pytest.raises(SystemExit):
            cli.main(["fig09", "--shards", "0"])

    def test_sharding_ablation_registered(self):
        assert "abl-sharding" in cli._runners(full=False)

    def test_shard_processes_flag_threaded_through(self, monkeypatch):
        seen = []

        class FakeResult:
            consistent = True

            def table(self):
                return ""

        monkeypatch.setattr(
            cli,
            "_runners",
            lambda full, seed=None, snapshot_cache=False, self_maintenance=False, group_maintenance=False, journal=False, checkpoint_every=8, crash_seed=None, shards=1, shard_processes=0: {
                "fig09": lambda: seen.append(shard_processes)
                or FakeResult()
            },
        )
        cli.main(["fig09", "--shard-processes", "2"])
        cli.main(["fig09"])
        assert seen == [2, 0]

    def test_shard_processes_must_be_nonnegative(self):
        with pytest.raises(SystemExit):
            cli.main(["fig09", "--shard-processes", "-1"])

    def test_runtime_ablation_registered(self):
        assert "abl-runtime" in cli._runners(full=False)

    def test_batch_and_cache_flags_compose(self, monkeypatch):
        seen = []

        class FakeResult:
            consistent = True

            def table(self):
                return ""

        monkeypatch.setattr(
            cli,
            "_runners",
            lambda full, seed=None, snapshot_cache=False, self_maintenance=False, group_maintenance=False, journal=False, checkpoint_every=8, crash_seed=None, shards=1, shard_processes=0: {
                "fig09": lambda: seen.append(
                    (snapshot_cache, group_maintenance)
                )
                or FakeResult()
            },
        )
        cli.main(["fig09", "--cache", "--batch"])
        assert seen == [(True, True)]

    def test_all_runs_everything(self, monkeypatch):
        ran = []

        class FakeResult:
            consistent = True

            def table(self):
                return ""

        monkeypatch.setattr(
            cli,
            "_runners",
            lambda full, seed=None, snapshot_cache=False, self_maintenance=False, group_maintenance=False, journal=False, checkpoint_every=8, crash_seed=None, shards=1, shard_processes=0: {
                name: (lambda n=name: ran.append(n) or FakeResult())
                for name in ("fig09", "fig10")
            },
        )
        cli.main(["all"])
        assert ran == ["fig09", "fig10"]

    def test_inconsistent_result_fails(self, monkeypatch):
        class BadResult:
            consistent = False

            def table(self):
                return ""

        monkeypatch.setattr(
            cli, "_runners", lambda full, seed=None, snapshot_cache=False, self_maintenance=False, group_maintenance=False, journal=False, checkpoint_every=8, crash_seed=None, shards=1, shard_processes=0: {"fig09": BadResult}
        )
        assert cli.main(["fig09"]) == 1
