"""Unit tests for the parallel maintenance executor."""

import pytest

from repro.core.parallel import ParallelScheduler
from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import (
    build_testbed,
    fixed_drop_attribute,
    fixed_rename_relation,
)
from repro.views.consistency import check_convergence


def _du_testbed(workers, du_count=24, tuples=60, seed=11):
    testbed = build_testbed(
        PESSIMISTIC, tuples_per_relation=tuples, parallel_workers=workers
    )
    testbed.engine.schedule_workload(
        testbed.random_du_workload(
            du_count, start=0.05, interval=0.005, seed=seed
        )
    )
    return testbed


def test_worker_count_validation():
    testbed = build_testbed(PESSIMISTIC, tuples_per_relation=10)
    with pytest.raises(ValueError):
        ParallelScheduler(testbed.manager, PESSIMISTIC, workers=0)


def test_makespan_beats_serial_arm():
    serial = _du_testbed(1)
    serial.run()
    parallel = _du_testbed(4)
    parallel.run()
    assert parallel.metrics.makespan < serial.metrics.makespan
    assert parallel.metrics.peak_parallelism > 1
    # Identical observable outcome.
    assert sorted(map(tuple, parallel.manager.mv.extent.rows())) == sorted(
        map(tuple, serial.manager.mv.extent.rows())
    )


def test_makespan_bounded_by_busy_time():
    """Makespan can never exceed the serial sum of worker busy time
    plus coordinator charges — and with real concurrency it is
    strictly below the busy-time sum."""
    testbed = _du_testbed(4)
    testbed.run()
    metrics = testbed.metrics
    busy_sum = sum(metrics.worker_busy_time.values())
    assert metrics.makespan < busy_sum
    utilization = metrics.worker_utilization()
    assert 0.0 < max(utilization.values()) <= 1.0


def test_channel_contention_creates_batches():
    """More workers than channel slots per source: waiting batchable
    probes must coalesce into combined round trips."""
    testbed = _du_testbed(6, du_count=30)
    testbed.run()
    metrics = testbed.metrics
    assert metrics.batched_queries > 0
    assert metrics.batch_round_trips > 0
    # A batch carries at least two queries per round trip.
    assert metrics.batched_queries >= 2 * metrics.batch_round_trips


def test_sc_units_run_as_barriers():
    testbed = build_testbed(
        PESSIMISTIC, tuples_per_relation=60, parallel_workers=4
    )
    workload = testbed.random_du_workload(
        20, start=0.05, interval=0.005, seed=3
    )
    workload.add(0.11, "src1", fixed_drop_attribute(0))
    workload.add(0.14, "src2", fixed_rename_relation(2))
    testbed.engine.schedule_workload(workload)
    testbed.run()
    barrier_dispatches = 0
    for record in testbed.scheduler.dispatch_audit:
        if any(not message.is_data_update for message in record["unit"]):
            barrier_dispatches += 1
            assert record["in_flight"] == []
    # Correction may merge the two SCs into one batch unit; at least
    # one barrier dispatch must have happened, always with no company.
    assert barrier_dispatches >= 1
    assert check_convergence(testbed.manager).consistent


def test_broken_query_aborts_only_one_worker():
    """A broken query (optimistic, SC raced past a DU) aborts that
    unit, requeues it, and the run still converges."""
    testbed = build_testbed(
        OPTIMISTIC, tuples_per_relation=60, parallel_workers=4
    )
    workload = testbed.random_du_workload(
        24, start=0.05, interval=0.004, seed=5
    )
    workload.add(0.07, "src1", fixed_drop_attribute(0))
    testbed.engine.schedule_workload(workload)
    testbed.run()
    assert testbed.manager.umq.is_empty()
    assert check_convergence(testbed.manager).consistent
    # Every message committed exactly once despite any aborts.
    processed = testbed.scheduler.stats.processed_messages
    assert len(processed) == len(set(processed)) == 25


def test_dispatch_accounting():
    testbed = _du_testbed(4)
    testbed.run()
    metrics = testbed.metrics
    stats = testbed.scheduler.stats
    assert metrics.dispatched_units >= len(stats.processed_messages) > 0
    assert metrics.makespan == pytest.approx(testbed.engine.clock.now)
    assert stats.iterations == metrics.dispatched_units


def test_workers_one_is_serial_semantics():
    """The 1-worker arm must process units strictly one at a time."""
    testbed = _du_testbed(1)
    testbed.run()
    for record in testbed.scheduler.dispatch_audit:
        assert record["in_flight"] == []
    assert testbed.metrics.peak_parallelism == 1
