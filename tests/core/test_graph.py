"""Dependency graph algorithms, checked against networkx oracles."""

import random

import networkx as nx
import pytest

from repro.core.dependencies import Dependency, DependencyKind
from repro.core.graph import DependencyGraph

CD = DependencyKind.CONCURRENT
SD = DependencyKind.SEMANTIC


def graph_of(node_count: int, edges: list[tuple[int, int]]) -> DependencyGraph:
    return DependencyGraph(
        node_count, [Dependency(a, b, CD) for a, b in edges]
    )


class TestBasics:
    def test_edge_validation(self):
        with pytest.raises(ValueError):
            graph_of(2, [(0, 5)])

    def test_add_and_count(self):
        graph = graph_of(3, [(0, 1)])
        graph.add(Dependency(1, 2, SD))
        assert graph.edge_count == 2

    def test_unsafe_detection(self):
        graph = graph_of(3, [(2, 0), (0, 1)])
        unsafe = graph.unsafe_dependencies()
        assert len(unsafe) == 1
        assert unsafe[0].before_index == 2
        assert graph.has_unsafe()

    def test_edges_of_kind(self):
        graph = graph_of(3, [(0, 1)])
        graph.add(Dependency(1, 2, SD))
        assert len(graph.edges_of_kind(CD)) == 1
        assert len(graph.edges_of_kind(SD)) == 1


class TestSCC:
    def test_simple_cycle(self):
        graph = graph_of(3, [(0, 1), (1, 0)])
        components = graph.strongly_connected_components()
        assert [0, 1] in components
        assert [2] in components
        assert graph.cycle_count() == 1

    def test_matches_networkx_on_random_graphs(self):
        rng = random.Random(42)
        for _trial in range(25):
            node_count = rng.randrange(2, 30)
            edges = [
                (rng.randrange(node_count), rng.randrange(node_count))
                for _ in range(rng.randrange(0, node_count * 2))
            ]
            edges = [(a, b) for a, b in edges if a != b]
            ours = graph_of(node_count, edges)
            mine = {
                frozenset(component)
                for component in ours.strongly_connected_components()
            }
            oracle_graph = nx.DiGraph()
            oracle_graph.add_nodes_from(range(node_count))
            oracle_graph.add_edges_from(edges)
            oracle = {
                frozenset(component)
                for component in nx.strongly_connected_components(
                    oracle_graph
                )
            }
            assert mine == oracle

    def test_large_path_graph_no_recursion_error(self):
        node_count = 50_000
        edges = [(i, i + 1) for i in range(node_count - 1)]
        graph = graph_of(node_count, edges)
        assert len(graph.strongly_connected_components()) == node_count


class TestLegalOrder:
    def assert_legal(self, graph: DependencyGraph) -> list[list[int]]:
        order = graph.legal_order()
        position = {}
        for group_index, group in enumerate(order):
            for member in group:
                position[member] = group_index
        for dependency in graph.dependencies:
            assert (
                position[dependency.before_index]
                <= position[dependency.after_index]
            )
        return order

    def test_respects_edges(self):
        graph = graph_of(4, [(3, 0), (2, 1)])
        order = self.assert_legal(graph)
        flat = [m for group in order for m in group]
        assert flat.index(3) < flat.index(0)
        assert flat.index(2) < flat.index(1)

    def test_preserves_fifo_among_independent(self):
        graph = graph_of(4, [])
        assert graph.legal_order() == [[0], [1], [2], [3]]

    def test_cycle_merged_into_group(self):
        graph = graph_of(4, [(1, 2), (2, 1)])
        order = self.assert_legal(graph)
        assert [1, 2] in order

    def test_figure_5_style_graph(self):
        """Eight nodes with two cycles, like the paper's Figure 5."""
        edges = [
            (0, 1),
            (2, 0),  # unsafe: 2 must precede 0
            (1, 3),
            (3, 1),  # cycle {1, 3}
            (4, 5),
            (6, 4),
            (5, 6),  # cycle {4, 5, 6}
            (6, 7),
        ]
        graph = graph_of(8, edges)
        order = self.assert_legal(graph)
        groups = {tuple(group) for group in order}
        assert (1, 3) in groups
        assert (4, 5, 6) in groups
        flat = [m for group in order for m in group]
        assert flat.index(2) < flat.index(0)

    def test_matches_networkx_condensation_count(self):
        rng = random.Random(7)
        for _trial in range(15):
            node_count = rng.randrange(2, 25)
            edges = [
                (rng.randrange(node_count), rng.randrange(node_count))
                for _ in range(rng.randrange(0, node_count * 2))
            ]
            edges = [(a, b) for a, b in edges if a != b]
            graph = graph_of(node_count, edges)
            order = graph.legal_order()
            oracle_graph = nx.DiGraph()
            oracle_graph.add_nodes_from(range(node_count))
            oracle_graph.add_edges_from(edges)
            assert len(order) == len(
                list(nx.strongly_connected_components(oracle_graph))
            )

    def test_all_nodes_present_exactly_once(self):
        graph = graph_of(6, [(0, 1), (1, 0), (5, 4)])
        order = graph.legal_order()
        flat = sorted(m for group in order for m in group)
        assert flat == list(range(6))
