"""Anomaly taxonomy of Section 3.1."""

from repro.core.anomalies import AnomalyType, classify
from repro.relational.schema import RelationSchema
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    UpdateMessage,
)

R = RelationSchema.of("R", ["a"])


def du() -> UpdateMessage:
    return UpdateMessage("s", 1, 0.0, DataUpdate.insert(R, [("x",)]))


def sc() -> UpdateMessage:
    return UpdateMessage("s", 2, 0.0, DropAttribute("R", "a"))


class TestClassify:
    def test_type_1(self):
        assert classify(du(), du()) is AnomalyType.DU_CONFLICTS_WITH_M_DU

    def test_type_2(self):
        assert classify(du(), sc()) is AnomalyType.DU_CONFLICTS_WITH_M_SC

    def test_type_3(self):
        assert classify(sc(), du()) is AnomalyType.SC_CONFLICTS_WITH_M_DU

    def test_type_4(self):
        assert classify(sc(), sc()) is AnomalyType.SC_CONFLICTS_WITH_M_SC


class TestProperties:
    def test_broken_query_types(self):
        assert AnomalyType.SC_CONFLICTS_WITH_M_DU.is_broken_query
        assert AnomalyType.SC_CONFLICTS_WITH_M_SC.is_broken_query
        assert not AnomalyType.DU_CONFLICTS_WITH_M_DU.is_broken_query
        assert not AnomalyType.DU_CONFLICTS_WITH_M_SC.is_broken_query

    def test_compensatable_is_complement(self):
        for anomaly in AnomalyType:
            assert anomaly.is_compensatable != anomaly.is_broken_query

    def test_enum_values_match_paper_numbering(self):
        assert AnomalyType.DU_CONFLICTS_WITH_M_DU.value == 1
        assert AnomalyType.DU_CONFLICTS_WITH_M_SC.value == 2
        assert AnomalyType.SC_CONFLICTS_WITH_M_DU.value == 3
        assert AnomalyType.SC_CONFLICTS_WITH_M_SC.value == 4
