"""Direct unit tests of the broken-query handler and the safety valve.

``_handle_broken_query`` is the single funnel for every mid-maintenance
failure; these tests drive it directly (no engine loop) to pin down the
classification contract: genuine :class:`BrokenQueryError` flags feed
the strategy's policy (correct / merge-all / skip), transient outages
are quarantined and must never touch the anomaly machinery.
"""

import pytest

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import (
    BLIND_MERGE,
    NAIVE,
    OPTIMISTIC,
    PESSIMISTIC,
)
from repro.sim.costs import CostModel
from repro.sources.errors import (
    BrokenQueryError,
    SourceUnavailableError,
    TransientSourceError,
)
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    RestructureRelations,
)
from repro.sources.workload import FixedUpdate, Workload
from tests.conftest import (
    CATALOG_SCHEMA,
    STOREITEMS_SCHEMA,
    build_bookstore,
)

BOTH = pytest.mark.parametrize(
    "strategy", [PESSIMISTIC, OPTIMISTIC], ids=["pessimistic", "optimistic"]
)


def queue(engine, payloads):
    workload = Workload()
    for source, payload in payloads:
        workload.add(0.0, source, FixedUpdate(payload))
    engine.schedule_workload(workload)
    engine.drain_events()


def catalog_insert() -> DataUpdate:
    return DataUpdate.insert(
        CATALOG_SCHEMA,
        [("Data Integration Guide", "Adams", "Eng", "P", "new")],
    )


def broken(source: str) -> BrokenQueryError:
    return BrokenQueryError(source, "SELECT ...", "relation dropped")


class TestClassification:
    @BOTH
    def test_genuine_flag_feeds_correction(self, strategy):
        engine, manager = build_bookstore(CostModel.free())
        queue(engine, [("library", catalog_insert())])
        scheduler = DynoScheduler(manager, strategy)
        scheduler._handle_broken_query(manager.umq.head(), broken("library"))
        assert scheduler.stats.genuine_broken_flags == 1
        assert scheduler.stats.false_flags_avoided == 0
        assert scheduler.stats.corrections == 1  # CORRECT policy ran

    @BOTH
    def test_transient_is_quarantined_not_corrected(self, strategy):
        engine, manager = build_bookstore(CostModel.free())
        queue(engine, [("library", catalog_insert())])
        scheduler = DynoScheduler(manager, strategy)
        error = TransientSourceError("library", "hiccup", retry_at=5.0)
        scheduler._handle_broken_query(manager.umq.head(), error)
        assert scheduler.stats.false_flags_avoided == 1
        assert scheduler.stats.genuine_broken_flags == 0
        assert scheduler.stats.corrections == 0
        assert scheduler._quarantined["library"] == pytest.approx(5.0)
        assert len(manager.umq) == 1  # queue untouched

    @BOTH
    def test_exhausted_retries_use_recovery_hint(self, strategy):
        engine, manager = build_bookstore(CostModel.free())
        queue(engine, [("library", catalog_insert())])
        scheduler = DynoScheduler(manager, strategy)
        last = TransientSourceError("retailer", "crashed", retry_at=7.5)
        down = SourceUnavailableError(
            "retailer", 4, "exhausted", last_error=last
        )
        scheduler._handle_broken_query(manager.umq.head(), down)
        assert scheduler._quarantined["retailer"] == pytest.approx(7.5)
        assert scheduler.stats.quarantine_events == [(0.0, "retailer", 7.5)]

    @BOTH
    def test_requarantine_only_extends(self, strategy):
        engine, manager = build_bookstore(CostModel.free())
        scheduler = DynoScheduler(manager, strategy)
        scheduler._quarantine("library", 5.0)
        scheduler._quarantine("library", 2.0)  # earlier hint: ignored
        assert scheduler._quarantined["library"] == pytest.approx(5.0)


class TestPolicies:
    def test_naive_skips_the_head(self):
        engine, manager = build_bookstore(CostModel.free())
        queue(
            engine,
            [("library", catalog_insert()), ("library", catalog_insert())],
        )
        scheduler = DynoScheduler(manager, NAIVE)
        scheduler._handle_broken_query(manager.umq.head(), broken("library"))
        assert scheduler.stats.skipped_updates == 1
        assert len(manager.umq) == 1

    def test_blind_merge_collapses_the_queue(self):
        engine, manager = build_bookstore(CostModel.free())
        queue(
            engine,
            [
                ("library", catalog_insert()),
                ("retailer", DropAttribute("Item", "Price")),
                ("library", catalog_insert()),
            ],
        )
        scheduler = DynoScheduler(manager, BLIND_MERGE)
        scheduler._handle_broken_query(manager.umq.head(), broken("retailer"))
        assert len(list(manager.umq.units)) == 1
        assert manager.umq.head().is_batch


class TestForcedProgress:
    @BOTH
    def test_repeat_break_with_stable_order_merges_head(self, strategy):
        """Correction that leaves the breaking head in place twice in a
        row triggers the safety valve: the head absorbs the breaking
        source's queued schema changes into one atomic batch."""
        engine, manager = build_bookstore(CostModel.free())
        queue(
            engine,
            [
                ("library", catalog_insert()),
                # Catalog.Author is not referenced by the view, so this
                # SC conflicts with nothing and correction keeps FIFO.
                ("library", DropAttribute("Catalog", "Author")),
            ],
        )
        scheduler = DynoScheduler(manager, strategy)
        head = manager.umq.head()
        scheduler._handle_broken_query(head, broken("library"))
        assert scheduler.stats.forced_merges == 0  # first break: corrected
        # Correction rebuilds unit objects but keeps the same messages
        # at the head (the scheduler's repeat test uses message ids).
        assert [id(m) for m in manager.umq.head()] == [id(m) for m in head]
        scheduler._handle_broken_query(head, broken("library"))
        assert scheduler.stats.forced_merges == 1
        merged = manager.umq.head()
        assert merged.is_batch
        assert len(merged) == 2  # DU + absorbed SC
        assert len(list(manager.umq.units)) == 1

    @BOTH
    def test_cyclic_dependencies_merge_into_batch(self, strategy):
        """Figure 4's cycle, reached through the broken-query path: the
        correction round inside the handler merges the cycle."""
        engine, manager = build_bookstore(CostModel.free())
        queue(
            engine,
            [
                ("library", catalog_insert()),
                (
                    "retailer",
                    RestructureRelations(
                        dropped=("Store", "Item"),
                        new_schema=STOREITEMS_SCHEMA,
                    ),
                ),
                ("library", DropAttribute("Catalog", "Review")),
            ],
        )
        scheduler = DynoScheduler(manager, strategy)
        scheduler._handle_broken_query(
            manager.umq.head(), broken("retailer")
        )
        assert engine.metrics.cycle_merges >= 1
        assert len(list(manager.umq.units)) == 1
        batch = manager.umq.head()
        assert batch.is_batch
        assert len(batch) == 3
        # Commit order survives inside the merged batch.
        assert [m.seqno for m in batch] == sorted(m.seqno for m in batch)

    @BOTH
    def test_nothing_to_absorb_waits_for_arrival(self, strategy):
        engine, manager = build_bookstore(CostModel.free())
        queue(engine, [("library", catalog_insert())])
        engine.schedule(1.0, lambda: None)
        scheduler = DynoScheduler(manager, strategy)
        before = list(manager.umq.messages())
        scheduler._force_progress("retailer")  # no retailer SC queued
        assert manager.umq.messages() == before
        assert scheduler.stats.forced_merges == 0
        assert engine.clock.now == pytest.approx(1.0)  # waited instead
