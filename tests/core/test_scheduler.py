"""The Dyno scheduler loop under every strategy."""

import pytest

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import (
    BLIND_MERGE,
    NAIVE,
    OPTIMISTIC,
    PESSIMISTIC,
)
from repro.sim.costs import CostModel
from repro.sources.messages import DataUpdate, DropAttribute, RenameRelation
from repro.sources.workload import FixedUpdate, Workload
from repro.views.consistency import check_convergence
from tests.conftest import CATALOG_SCHEMA, ITEM_SCHEMA, build_bookstore


def schedule(engine, items):
    workload = Workload()
    for at, source, payload in items:
        workload.add(at, source, FixedUpdate(payload))
    engine.schedule_workload(workload)


def catalog_insert() -> DataUpdate:
    return DataUpdate.insert(
        CATALOG_SCHEMA,
        [("Data Integration Guide", "Adams", "Eng", "P", "new")],
    )


class TestQuiescence:
    def test_empty_run_terminates(self):
        engine, manager = build_bookstore(CostModel.free())
        stats = DynoScheduler(manager, PESSIMISTIC).run()
        assert stats.iterations == 0

    def test_processes_pending_events(self):
        engine, manager = build_bookstore(CostModel.free())
        schedule(engine, [(5.0, "library", catalog_insert())])
        DynoScheduler(manager, PESSIMISTIC).run()
        assert manager.umq.is_empty()
        assert engine.metrics.maintained_updates == 1


class TestPessimistic:
    def test_co_arrival_avoids_abort(self):
        """DU and conflicting SC flood in together: pre-exec detection
        reorders before any doomed query is sent (Figure 9's point)."""
        engine, manager = build_bookstore(CostModel.paper_default())
        schedule(
            engine,
            [
                (0.0, "library", catalog_insert()),
                (0.0, "retailer", DropAttribute("Item", "Price")),
            ],
        )
        DynoScheduler(manager, PESSIMISTIC).run()
        assert engine.metrics.aborts == 0
        assert check_convergence(manager).consistent

    def test_detection_skipped_without_flag(self):
        engine, manager = build_bookstore(CostModel.free())
        schedule(
            engine,
            [(0.0, "library", catalog_insert()),
             (0.0, "library", catalog_insert())],
        )
        DynoScheduler(manager, PESSIMISTIC).run()
        assert engine.metrics.detection_rounds == 0  # DU-only: O(1) path

    def test_flag_triggers_detection_once(self):
        engine, manager = build_bookstore(CostModel.free())
        schedule(
            engine,
            [
                (0.0, "library", catalog_insert()),
                # Catalog.Author is not referenced by the view (the view
                # projects I.Author), so this SC conflicts with nothing.
                (0.0, "library", DropAttribute("Catalog", "Author")),
            ],
        )
        DynoScheduler(manager, PESSIMISTIC).run()
        assert engine.metrics.detection_rounds == 1


class TestOptimistic:
    def test_broken_query_aborts_then_corrects(self):
        engine, manager = build_bookstore(CostModel.paper_default())
        schedule(
            engine,
            [
                (0.0, "library", catalog_insert()),
                (0.0, "retailer", DropAttribute("Item", "Price")),
            ],
        )
        DynoScheduler(manager, OPTIMISTIC).run()
        assert engine.metrics.aborts >= 1
        assert engine.metrics.abort_cost > 0
        assert check_convergence(manager).consistent

    def test_never_checks_flag(self):
        engine, manager = build_bookstore(CostModel.free())
        schedule(engine, [(0.0, "library", catalog_insert())])
        DynoScheduler(manager, OPTIMISTIC).run()
        assert manager.umq.new_schema_change_flag is False
        assert engine.metrics.detection_rounds == 0


class TestNaive:
    def test_broken_query_skips_update(self):
        engine, manager = build_bookstore(CostModel.paper_default())
        schedule(
            engine,
            [
                (0.0, "library", catalog_insert()),
                (0.0, "retailer", DropAttribute("Item", "Price")),
            ],
        )
        scheduler = DynoScheduler(manager, NAIVE)
        stats = scheduler.run()
        # The broken-query anomaly occurred and the update was lost —
        # the failure mode the paper sets out to fix.
        assert stats.skipped_updates >= 1
        assert engine.metrics.broken_queries >= 1


class TestBlindMerge:
    def test_merges_whole_queue_on_break(self):
        engine, manager = build_bookstore(CostModel.paper_default())
        schedule(
            engine,
            [
                (0.0, "library", catalog_insert()),
                (0.0, "retailer", DataUpdate.insert(ITEM_SCHEMA, [
                    (1, "Data Integration Guide", "Adams", 35.99)
                ])),
                (0.0, "retailer", DropAttribute("Item", "Price")),
            ],
        )
        DynoScheduler(manager, BLIND_MERGE).run()
        assert engine.metrics.cycle_merges >= 1
        assert check_convergence(manager).consistent


class TestForcedProgress:
    def test_repeat_breaking_head_gets_merged(self):
        """A schema change committing mid-maintenance repeatedly breaks
        the same head; the safety valve merges and converges."""
        engine, manager = build_bookstore(CostModel.paper_default())
        schedule(
            engine,
            [
                (0.0, "library", DropAttribute("Catalog", "Review")),
                # lands mid-adaptation of the first SC
                (5.0, "retailer", RenameRelation("Item", "Item2")),
                (10.0, "retailer", RenameRelation("Item2", "Item3")),
            ],
        )
        scheduler = DynoScheduler(manager, PESSIMISTIC)
        scheduler.run()
        assert check_convergence(manager).consistent

    def test_max_iterations_guard(self):
        engine, manager = build_bookstore(CostModel.free())
        schedule(engine, [(0.0, "library", catalog_insert())])
        scheduler = DynoScheduler(manager, PESSIMISTIC, max_iterations=0)
        stats = scheduler.run()
        assert stats.iterations == 0
        assert engine.metrics.maintained_updates == 0


class TestAccounting:
    def test_abort_cost_below_total(self):
        # query_base=1.0 stretches the adaptation scans so the rename
        # at t=3.5 lands inside the Item scan window and breaks it.
        engine, manager = build_bookstore(CostModel(query_base=1.0))
        schedule(
            engine,
            [
                (0.0, "library", DropAttribute("Catalog", "Review")),
                (3.5, "retailer", RenameRelation("Item", "Item2")),
            ],
        )
        scheduler = DynoScheduler(manager, OPTIMISTIC)
        scheduler.run()
        metrics = engine.metrics
        assert 0 < metrics.abort_cost < metrics.maintenance_cost
        assert metrics.aborts >= 1
        assert len(scheduler.stats.abort_events) == metrics.aborts

    def test_stats_iterations_counted(self):
        engine, manager = build_bookstore(CostModel.free())
        schedule(
            engine,
            [(0.0, "library", catalog_insert()) for _ in range(3)],
        )
        scheduler = DynoScheduler(manager, PESSIMISTIC)
        stats = scheduler.run()
        assert stats.iterations == 3


class TestStepAPI:
    def test_step_processes_one_unit(self):
        engine, manager = build_bookstore(CostModel.free())
        schedule(
            engine,
            [(0.0, "library", catalog_insert()) for _ in range(3)],
        )
        scheduler = DynoScheduler(manager, PESSIMISTIC)
        assert scheduler.step()  # fire the commits
        assert scheduler.step()  # maintain unit 1
        assert engine.metrics.maintained_updates == 1
        assert len(manager.umq) == 2

    def test_step_false_when_quiescent(self):
        engine, manager = build_bookstore(CostModel.free())
        scheduler = DynoScheduler(manager, PESSIMISTIC)
        assert not scheduler.step()

    def test_stepping_to_completion_equals_run(self):
        results = []
        for mode in ("run", "step"):
            engine, manager = build_bookstore(CostModel.paper_default())
            schedule(
                engine,
                [
                    (0.0, "library", catalog_insert()),
                    (0.5, "retailer", DropAttribute("Item", "Price")),
                ],
            )
            scheduler = DynoScheduler(manager, PESSIMISTIC)
            if mode == "run":
                scheduler.run()
            else:
                while scheduler.step():
                    pass
            results.append(
                (
                    round(engine.metrics.maintenance_cost, 9),
                    engine.metrics.maintained_updates,
                    sorted(manager.mv.extent.rows()),
                )
            )
        assert results[0] == results[1]


class TestForceProgressPreservesQueue:
    def test_nothing_to_absorb_keeps_other_units(self):
        """The safety valve must never drop queued units when the
        breaking source has no queued schema changes."""
        engine, manager = build_bookstore(CostModel.free())
        schedule(
            engine,
            [
                (0.0, "library", catalog_insert()),
                (0.0, "library", catalog_insert()),
                (0.0, "library", catalog_insert()),
            ],
        )
        engine.drain_events()
        scheduler = DynoScheduler(manager, PESSIMISTIC)
        before = list(manager.umq.messages())
        scheduler._force_progress("retailer")  # no retailer SC queued
        assert manager.umq.messages() == before  # untouched

    def test_absorbing_keeps_unrelated_units(self):
        engine, manager = build_bookstore(CostModel.free())
        schedule(
            engine,
            [
                (0.0, "library", catalog_insert()),
                (0.0, "retailer", DropAttribute("Item", "Price")),
                (0.0, "library", catalog_insert()),
            ],
        )
        engine.drain_events()
        scheduler = DynoScheduler(manager, PESSIMISTIC)
        before = set(id(m) for m in manager.umq.messages())
        scheduler._force_progress("retailer")
        after = set(id(m) for m in manager.umq.messages())
        assert before == after  # multiset preserved
        assert scheduler.stats.forced_merges == 1
        assert manager.umq.head().is_batch  # head absorbed the SC
