"""Deferred data-update maintenance (the [5]-style scheduler option)."""

import pytest

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.views.consistency import check_convergence


def loaded_testbed(defer=None, du_count=20, sc=False, seed=3):
    testbed = build_testbed(PESSIMISTIC, tuples_per_relation=40, seed=seed)
    testbed.scheduler.detach()  # drop the default scheduler's UMQ listener
    testbed.scheduler = DynoScheduler(
        testbed.manager, PESSIMISTIC, defer_du_interval=defer
    )
    testbed.engine.schedule_workload(
        testbed.random_du_workload(du_count, 0.0, 0.5, seed=seed + 1)
    )
    if sc:
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(1, 3.0, 1.0, seed=seed + 2)
        )
    return testbed


class TestDeferredMode:
    def test_fewer_refreshes_same_result(self):
        eager = loaded_testbed(defer=None)
        eager.run()
        deferred = loaded_testbed(defer=20.0)
        deferred.run()
        assert check_convergence(eager.manager).consistent
        assert check_convergence(deferred.manager).consistent
        assert sorted(deferred.manager.mv.extent.rows()) == sorted(
            eager.manager.mv.extent.rows()
        )
        assert (
            deferred.metrics.view_refreshes < eager.metrics.view_refreshes
        )

    def test_refresh_cadence_respected(self):
        testbed = loaded_testbed(defer=5.0, du_count=20)
        refresh_times = []

        original_apply = testbed.manager.mv.apply

        def recording_apply(delta):
            refresh_times.append(testbed.engine.clock.now)
            original_apply(delta)

        testbed.manager.mv.apply = recording_apply
        testbed.run()
        # refreshes land at/after the 5s boundaries, not per update
        assert refresh_times
        assert all(at >= 5.0 for at in refresh_times)
        gaps = [b - a for a, b in zip(refresh_times, refresh_times[1:])]
        assert all(gap >= 4.0 for gap in gaps)

    def test_schema_change_preempts_deferral(self):
        testbed = loaded_testbed(defer=1000.0, du_count=10, sc=True)
        testbed.run()
        # the SC at t=3 forced processing long before the 1000s deferral
        assert testbed.manager.view.version >= 1
        assert check_convergence(testbed.manager).consistent
        assert testbed.metrics.maintained_updates == 11

    def test_disabled_by_default(self):
        testbed = loaded_testbed(defer=None, du_count=5)
        testbed.run()
        # eager: one refresh per view-relevant DU (some may miss the view)
        assert testbed.metrics.view_refreshes >= 1
        assert testbed.scheduler.defer_du_interval is None
