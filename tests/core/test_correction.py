"""Dependency correction: legal orders, Figure 4 merge, blind merge."""

from repro.core.correction import correct, merge_all
from repro.core.dependencies import find_dependencies
from repro.relational.schema import RelationSchema
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameRelation,
    RestructureRelations,
    UpdateMessage,
)
from tests.conftest import (
    CATALOG_SCHEMA,
    ITEM_SCHEMA,
    STOREITEMS_SCHEMA,
    bookinfo_query,
)

QUERY = bookinfo_query()


def message(source, seqno, payload) -> UpdateMessage:
    return UpdateMessage(source, seqno, float(seqno), payload)


def assert_legal(messages, units):
    """Def. 7: within the corrected order all dependencies are safe."""
    ordered = [m for unit in units for m in unit]
    position = {id(m): index for index, m in enumerate(ordered)}
    unit_of = {}
    for unit_index, unit in enumerate(units):
        for m in unit:
            unit_of[id(m)] = unit_index
    deps = find_dependencies(messages, QUERY)
    by_id = {index: m for index, m in enumerate(messages)}
    for dep in deps:
        before = by_id[dep.before_index]
        after = by_id[dep.after_index]
        assert unit_of[id(before)] <= unit_of[id(after)], (
            f"dependency violated: {before.describe()} must precede "
            f"{after.describe()}"
        )


class TestCorrect:
    def test_du_only_queue_unchanged(self):
        messages = [
            message("retailer", i, DataUpdate.insert(ITEM_SCHEMA, []))
            for i in range(1, 5)
        ]
        result = correct(messages, QUERY)
        assert not result.changed
        assert result.merges == 0
        assert [m for u in result.units for m in u] == messages

    def test_unsafe_sc_moved_forward(self):
        du = message("library", 1, DataUpdate.insert(CATALOG_SCHEMA, []))
        sc = message("retailer", 2, DropRelation("Store"))
        result = correct([du, sc], QUERY)
        assert result.changed
        ordered = [m for u in result.units for m in u]
        assert ordered[0] is sc
        assert_legal([du, sc], result.units)

    def test_figure_4_merges_cycle(self):
        du1 = message("library", 1, DataUpdate.insert(CATALOG_SCHEMA, []))
        sc1 = message(
            "retailer",
            2,
            RestructureRelations(
                dropped=("Store", "Item"), new_schema=STOREITEMS_SCHEMA
            ),
        )
        sc2 = message("library", 3, DropAttribute("Catalog", "Review"))
        result = correct([du1, sc1, sc2], QUERY)
        assert result.merges == 1
        assert len(result.units) == 1
        batch = result.units[0]
        assert len(batch) == 3
        # commit order preserved inside the batch
        assert [m.seqno for m in batch] == [1, 2, 3]
        assert_legal([du1, sc1, sc2], result.units)

    def test_mutual_sc_conflict_merges(self):
        sc1 = message("library", 1, DropAttribute("Catalog", "Review"))
        sc2 = message("retailer", 2, RenameRelation("Item", "Item2"))
        result = correct([sc1, sc2], QUERY)
        assert result.merges == 1
        assert len(result.units) == 1

    def test_independent_updates_keep_fifo(self):
        first = message("retailer", 1, DataUpdate.insert(ITEM_SCHEMA, []))
        second = message(
            "library", 2, DataUpdate.insert(CATALOG_SCHEMA, [])
        )
        non_conflicting = message(
            "library", 3, DropAttribute("Catalog", "Year")
        )
        result = correct([first, second, non_conflicting], QUERY)
        assert [m for u in result.units for m in u] == [
            first,
            second,
            non_conflicting,
        ]

    def test_empty_queue(self):
        result = correct([], QUERY)
        assert result.units == []
        assert not result.changed

    def test_detection_counts_exposed(self):
        du = message("library", 1, DataUpdate.insert(CATALOG_SCHEMA, []))
        sc = message("retailer", 2, DropRelation("Store"))
        result = correct([du, sc], QUERY)
        assert result.node_count == 2
        assert result.edge_count >= 1


class TestMergeAll:
    def test_single_batch(self):
        du = message("library", 1, DataUpdate.insert(CATALOG_SCHEMA, []))
        sc = message("retailer", 2, DropRelation("Store"))
        result = merge_all([du, sc], QUERY)
        assert len(result.units) == 1
        assert len(result.units[0]) == 2
        assert result.changed

    def test_empty(self):
        result = merge_all([], QUERY)
        assert result.units == []
