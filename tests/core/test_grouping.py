"""Adaptive group maintenance: safe-run formation and scheduling.

Unit tests for :mod:`repro.maintenance.grouping` (run scanning, run
merging, delta coalescing) plus deterministic scheduler integration:
batches actually form and cut rounds, an SC between two DU runs splits
them — never merges across — and Theorem 1's broken-query detection
still fires with batching armed.
"""

import pytest

from repro.core.dependencies import Dependency, DependencyKind
from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import (
    build_testbed,
    fixed_drop_attribute,
)
from repro.maintenance.grouping import (
    BatchPolicy,
    coalesce_data_updates,
    find_safe_runs,
    merge_runs,
)
from repro.relational.schema import RelationSchema
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    UpdateMessage,
)
from repro.sources.workload import Workload
from repro.views.consistency import check_convergence
from repro.views.umq import MaintenanceUnit

R = RelationSchema.of("R", ["a"])
S = RelationSchema.of("S", ["a"])


def du(seqno: int, schema: RelationSchema = R) -> MaintenanceUnit:
    return MaintenanceUnit.single(
        UpdateMessage(
            "s",
            seqno,
            float(seqno),
            DataUpdate.insert(schema, [(seqno,)]),
        )
    )


def sc(seqno: int) -> MaintenanceUnit:
    return MaintenanceUnit.single(
        UpdateMessage("s", seqno, float(seqno), DropAttribute("R", "a"))
    )


class TestFindSafeRuns:
    def test_all_du_queue_is_one_run(self):
        units = [du(1), du(2), du(3)]
        assert find_safe_runs(units, BatchPolicy()) == [(0, 3)]

    def test_sc_splits_runs_and_is_never_merged(self):
        """The acceptance regression: an SC between two DU runs yields
        two separate runs — neither spans nor includes the SC."""
        units = [du(1), du(2), sc(3), du(4), du(5)]
        runs = find_safe_runs(units, BatchPolicy())
        assert runs == [(0, 2), (3, 5)]
        for start, end in runs:
            assert not any(
                unit.has_schema_change for unit in units[start:end]
            )

    def test_single_unit_never_a_run(self):
        assert find_safe_runs([du(1)], BatchPolicy()) == []
        units = [du(1), sc(2), du(3)]
        assert find_safe_runs(units, BatchPolicy()) == []

    def test_disabled_policy_forms_nothing(self):
        units = [du(1), du(2)]
        assert find_safe_runs(units, BatchPolicy(enabled=False)) == []

    def test_max_batch_size_caps_messages_not_units(self):
        units = [du(n) for n in range(1, 6)]
        runs = find_safe_runs(units, BatchPolicy(max_batch_size=2))
        assert runs == [(0, 2), (2, 4)]

    def test_oversized_candidate_ends_the_run(self):
        batch = MaintenanceUnit.merged([du(1), du(2), du(3)])
        units = [du(4), du(5), batch]
        runs = find_safe_runs(units, BatchPolicy(max_batch_size=4))
        assert runs == [(0, 2)]

    def test_batch_window_caps_committed_at_span(self):
        units = [du(1), du(2), du(30)]
        runs = find_safe_runs(units, BatchPolicy(batch_window=5.0))
        assert runs == [(0, 2)]

    def test_mixed_mode_admits_sc_without_partners(self):
        units = [du(1), sc(2), du(3)]
        runs = find_safe_runs(units, BatchPolicy(du_only=False))
        assert runs == [(0, 3)]

    def test_mixed_mode_concurrent_partners_never_merge(self):
        """A CD edge between two units blocks their run even when the
        policy would otherwise admit both members."""
        units = [du(1), sc(2), du(3)]
        edge = Dependency(2, 1, DependencyKind.CONCURRENT)
        runs = find_safe_runs(
            units, BatchPolicy(du_only=False), [edge]
        )
        # Message index 1 (the SC) and 2 (the second DU) are partners:
        # the run starting at unit 0 may absorb the SC but must stop
        # before the partnered DU.
        assert runs == [(0, 2)]

    def test_semantic_edges_do_not_block(self):
        units = [du(1), du(2)]
        edge = Dependency(0, 1, DependencyKind.SEMANTIC)
        assert find_safe_runs(units, BatchPolicy(), [edge]) == [(0, 2)]


class TestMergeRuns:
    def test_merge_preserves_surrounding_order(self):
        units = [du(1), du(2), sc(3), du(4), du(5)]
        order, grouped = merge_runs(units, [(0, 2), (3, 5)])
        assert len(order) == 3
        assert [len(unit) for unit in order] == [2, 1, 2]
        assert order[1] is units[2]
        assert grouped == 4
        flattened = [
            message for unit in order for message in unit.messages
        ]
        assert flattened == [
            message for unit in units for message in unit.messages
        ]

    def test_extending_a_batch_counts_only_fresh_messages(self):
        batch = MaintenanceUnit.merged([du(1), du(2), du(3)])
        units = [batch, du(4)]
        order, grouped = merge_runs(units, [(0, 2)])
        assert len(order) == 1
        assert len(order[0]) == 4
        assert grouped == 1


class TestCoalesce:
    def test_same_relation_deltas_merge_into_one_message(self):
        messages = [
            du(1).head_message,
            du(2).head_message,
            du(3, S).head_message,
        ]
        merged = coalesce_data_updates(messages)
        assert len(merged) == 2
        assert merged[0].payload.relation == "R"
        assert sorted(
            count for _row, count in merged[0].payload.delta.items()
        ) == [1, 1]
        assert merged[0].committed_at == 2.0
        assert merged[1] is messages[2]

    def test_cancelling_pair_drops_out(self):
        insert = UpdateMessage(
            "s", 1, 1.0, DataUpdate.insert(R, [(7,)])
        )
        delete = UpdateMessage(
            "s", 2, 2.0, DataUpdate.delete(R, [(7,)])
        )
        other = du(3, S).head_message
        merged = coalesce_data_updates([insert, delete, other])
        assert merged == [other]

    def test_mixed_schemas_in_one_group_bail_out(self):
        """Two deltas for relation R whose schemas differ (updates
        straddling an untranslated schema gap) must be left alone."""
        renamed = RelationSchema.of("R", ["b"])
        messages = [
            du(1).head_message,
            UpdateMessage(
                "s",
                2,
                2.0,
                DataUpdate("R", du(2, renamed).head_message.payload.delta),
            ),
        ]
        assert coalesce_data_updates(messages) == messages

    def test_all_singletons_untouched(self):
        messages = [du(1).head_message, du(2, S).head_message]
        assert coalesce_data_updates(messages) == messages


class TestSchedulerIntegration:
    def _stream(self, testbed, count, start=0.05, interval=0.01):
        testbed.engine.schedule_workload(
            testbed.random_du_workload(count, start, interval)
        )

    @pytest.mark.parametrize("strategy", [PESSIMISTIC, OPTIMISTIC])
    def test_batches_cut_rounds_and_converge(self, strategy):
        testbed = build_testbed(
            strategy,
            tuples_per_relation=30,
            batch_policy=BatchPolicy(max_batch_size=24),
        )
        self._stream(testbed, 30)
        testbed.run()
        metrics = testbed.metrics
        assert metrics.batches_formed > 0
        assert metrics.grouped_messages > 0
        assert metrics.maintenance_rounds < 30
        report = check_convergence(testbed.manager)
        assert report.consistent, report.summary()

    def test_no_policy_means_no_batches(self):
        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=30)
        self._stream(testbed, 10)
        testbed.run()
        assert testbed.metrics.batches_formed == 0
        assert testbed.metrics.grouped_messages == 0
        assert testbed.metrics.maintenance_rounds == 10

    def test_theorem_one_detection_still_fires(self):
        """Optimistic + batching: an SC committing mid-maintenance must
        still break the in-flight query (Theorem 1), abort it, and the
        run must still converge — the voluntary batch never swallows
        the conflict."""
        testbed = build_testbed(
            OPTIMISTIC,
            tuples_per_relation=200,
            batch_policy=BatchPolicy(max_batch_size=24),
        )
        workload = Workload()
        du_intent = testbed.random_du_workload(1, 0.0, 1.0).items[0].intent
        workload.add(0.0, "src1", du_intent)
        # Drop a non-key attribute of R6 — the last relation the DU
        # sweep probes — committed while that sweep is in flight.
        workload.add(0.0, "src3", fixed_drop_attribute(5))
        testbed.engine.schedule_workload(workload)
        testbed.run()
        assert testbed.metrics.broken_queries >= 1
        assert testbed.metrics.aborts >= 1
        report = check_convergence(testbed.manager)
        assert report.consistent, report.summary()
