"""The pre-exec detection entry point and the rename-lineage resolver."""

from repro.core.dependencies import NameResolver
from repro.core.detection import detect
from repro.relational.schema import RelationSchema
from repro.sources.messages import (
    CreateRelation,
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameAttribute,
    RenameRelation,
    UpdateMessage,
)
from tests.conftest import CATALOG_SCHEMA, ITEM_SCHEMA, bookinfo_query

QUERY = bookinfo_query()


def message(source, seqno, payload) -> UpdateMessage:
    return UpdateMessage(source, seqno, float(seqno), payload)


class TestDetect:
    def test_empty_queue(self):
        result = detect([], QUERY)
        assert not result.has_unsafe
        assert result.node_count == 0
        assert result.edge_count == 0

    def test_du_only_safe(self):
        messages = [
            message("retailer", i, DataUpdate.insert(ITEM_SCHEMA, []))
            for i in range(1, 4)
        ]
        result = detect(messages, QUERY)
        assert not result.has_unsafe
        assert result.node_count == 3

    def test_unsafe_reported(self):
        du = message("library", 1, DataUpdate.insert(CATALOG_SCHEMA, []))
        sc = message("retailer", 2, DropRelation("Store"))
        result = detect([du, sc], QUERY)
        assert result.has_unsafe
        assert any(
            dep.before_index == 1 and dep.after_index == 0
            for dep in result.unsafe
        )

    def test_multi_view_sequence_accepted(self):
        du = message("library", 1, DataUpdate.insert(CATALOG_SCHEMA, []))
        sc = message("retailer", 2, DropRelation("Store"))
        result = detect([du, sc], (QUERY, QUERY))
        assert result.has_unsafe


class TestNameResolver:
    def test_rename_chain_resolves_to_root(self):
        messages = [
            message("s", 1, RenameRelation("R", "R__v2")),
            message("s", 2, RenameRelation("R__v2", "R__v3")),
        ]
        resolver = NameResolver(messages)
        assert resolver.relation("s", "R__v3") == "R"
        assert resolver.relation("s", "R__v2") == "R"
        assert resolver.relation("s", "R") == "R"

    def test_unrelated_names_identity(self):
        resolver = NameResolver([])
        assert resolver.relation("s", "X") == "X"
        assert resolver.attribute("s", "R", "a") == ("R", "a")

    def test_per_source_isolation(self):
        messages = [message("s1", 1, RenameRelation("R", "R2"))]
        resolver = NameResolver(messages)
        assert resolver.relation("s1", "R2") == "R"
        assert resolver.relation("s2", "R2") == "R2"

    def test_attribute_chain_through_relation_rename(self):
        messages = [
            message("s", 1, RenameAttribute("R", "a", "a2")),
            message("s", 2, RenameRelation("R", "R2")),
            message("s", 3, RenameAttribute("R2", "a2", "a3")),
        ]
        resolver = NameResolver(messages)
        assert resolver.attribute("s", "R2", "a3") == ("R", "a")

    def test_created_relation_starts_fresh_lineage(self):
        from repro.sources.messages import RestructureRelations

        messages = [
            message("s", 1, RenameRelation("R", "Flat")),
            message(
                "s",
                2,
                RestructureRelations(
                    dropped=("T",),
                    new_schema=RelationSchema.of("Flat2", ["a"]),
                ),
            ),
            message("s", 3, RenameRelation("Flat2", "Flat3")),
        ]
        resolver = NameResolver(messages)
        # Flat3 roots at Flat2 (created), not at anything earlier.
        assert resolver.relation("s", "Flat3") == "Flat2"

    def test_rename_chain_detection_merges_tail(self):
        """The FIG-10 interval-0 regression: every link of a rename
        chain must join the conflict set."""
        du = message("library", 1, DataUpdate.insert(CATALOG_SCHEMA, []))
        renames = [
            message("retailer", 2, RenameRelation("Item", "Item__v2")),
            message("retailer", 3, RenameRelation("Item__v2", "Item__v3")),
            message("retailer", 4, RenameRelation("Item__v3", "Item__v4")),
        ]
        result = detect([du] + renames, QUERY)
        # every rename must have a CD edge to the DU (whose footprint
        # includes Item), so all are unsafe w.r.t. the DU ahead of them
        cd_edges = [
            dep
            for dep in result.graph.dependencies
            if dep.kind.value == "cd" and dep.after_index == 0
        ]
        assert {dep.before_index for dep in cd_edges} == {1, 2, 3}
