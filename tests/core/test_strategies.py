"""Strategy definitions."""

from repro.core.strategies import (
    BLIND_MERGE,
    NAIVE,
    OPTIMISTIC,
    PESSIMISTIC,
    BrokenQueryPolicy,
    Strategy,
)


def test_pessimistic_is_pre_exec_plus_correct():
    assert PESSIMISTIC.pre_exec
    assert PESSIMISTIC.on_broken_query is BrokenQueryPolicy.CORRECT


def test_optimistic_is_in_exec_only():
    assert not OPTIMISTIC.pre_exec
    assert OPTIMISTIC.on_broken_query is BrokenQueryPolicy.CORRECT


def test_naive_skips():
    assert not NAIVE.pre_exec
    assert NAIVE.on_broken_query is BrokenQueryPolicy.SKIP


def test_blind_merge_merges_all():
    assert not BLIND_MERGE.pre_exec
    assert BLIND_MERGE.on_broken_query is BrokenQueryPolicy.MERGE_ALL


def test_str_is_name():
    assert str(PESSIMISTIC) == "pessimistic"


def test_custom_strategy():
    custom = Strategy(
        "eager", pre_exec=True, on_broken_query=BrokenQueryPolicy.MERGE_ALL
    )
    assert custom.pre_exec
    assert custom.name == "eager"


def test_strategies_are_frozen():
    import dataclasses

    import pytest

    with pytest.raises(dataclasses.FrozenInstanceError):
        PESSIMISTIC.pre_exec = False  # type: ignore[misc]
