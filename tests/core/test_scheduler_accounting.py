"""Scheduler accounting: deferral passes must be charged and counted.

Regression tests for three accounting bugs:

* a quarantine-deferral pass that demotes nothing used to charge no
  detection time and count no graph build, even though it computed the
  full dependency graph;
* ``stats.deferred_units`` used to re-count every held unit on every
  pass, inflating the counter by held-count x rounds over one outage;
* the deferred-DU refresh used to schedule the next deadline from
  ``now`` (drifting the cadence by the processing lateness) instead of
  from the previous deadline.
"""

from __future__ import annotations

from repro.core.scheduler import DynoScheduler
from repro.core.strategies import PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.sources.messages import DataUpdate, UpdateMessage
from tests.conftest import CATALOG_SCHEMA, ITEM_SCHEMA, build_bookstore


def _catalog_du(seqno: int) -> UpdateMessage:
    """Footprint: retailer.Store + retailer.Item (never library)."""
    return UpdateMessage(
        "library",
        seqno,
        float(seqno),
        DataUpdate.insert(CATALOG_SCHEMA, []),
    )


def _item_du(seqno: int) -> UpdateMessage:
    """Footprint includes library.Catalog."""
    return UpdateMessage(
        "retailer",
        seqno,
        float(seqno),
        DataUpdate.insert(ITEM_SCHEMA, []),
    )


class TestDeferralPassAccounting:
    def test_pass_without_demotion_is_charged_and_counted(self):
        engine, manager = build_bookstore()
        scheduler = DynoScheduler(manager)
        # Active unit already ahead of the deferred one: no demotion.
        manager.umq.receive(_catalog_du(1))
        manager.umq.receive(_item_du(1))
        scheduler._quarantine("library", engine.clock.now + 50.0)

        builds = engine.metrics.graph_builds
        charged = engine.metrics.busy_time["detection"]
        assert scheduler._make_runnable_head() is True
        assert engine.metrics.graph_builds == builds + 1
        assert engine.metrics.busy_time["detection"] > charged

    def test_all_deferred_pass_is_charged_and_counted(self):
        engine, manager = build_bookstore()
        scheduler = DynoScheduler(manager)
        manager.umq.receive(_catalog_du(1))
        manager.umq.receive(_item_du(1))
        # Every unit's footprint reads retailer: nothing is runnable.
        scheduler._quarantine("retailer", engine.clock.now + 50.0)

        builds = engine.metrics.graph_builds
        charged = engine.metrics.busy_time["detection"]
        assert scheduler._make_runnable_head() is False
        assert engine.metrics.graph_builds == builds + 1
        assert engine.metrics.busy_time["detection"] > charged

    def test_demotion_reorders_and_charges(self):
        engine, manager = build_bookstore()
        scheduler = DynoScheduler(manager)
        deferred_head = _item_du(1)
        runnable = _catalog_du(1)
        manager.umq.receive(deferred_head)
        manager.umq.receive(runnable)
        scheduler._quarantine("library", engine.clock.now + 50.0)

        charged = engine.metrics.busy_time["detection"]
        assert scheduler._make_runnable_head() is True
        assert manager.umq.head().head_message is runnable
        assert engine.metrics.busy_time["detection"] > charged


class TestDeferredUnitCounting:
    def test_counted_once_per_stay_not_once_per_pass(self):
        engine, manager = build_bookstore()
        scheduler = DynoScheduler(manager)
        manager.umq.receive(_catalog_du(1))
        manager.umq.receive(_item_du(1))
        scheduler._quarantine("library", engine.clock.now + 50.0)

        scheduler._make_runnable_head()
        assert scheduler.stats.deferred_units == 1
        # Further passes over the same outage must not re-count.
        scheduler._make_runnable_head()
        scheduler._make_runnable_head()
        assert scheduler.stats.deferred_units == 1

    def test_new_unit_joining_the_outage_is_counted(self):
        engine, manager = build_bookstore()
        scheduler = DynoScheduler(manager)
        manager.umq.receive(_catalog_du(1))
        manager.umq.receive(_item_du(1))
        scheduler._quarantine("library", engine.clock.now + 50.0)

        scheduler._make_runnable_head()
        assert scheduler.stats.deferred_units == 1
        manager.umq.receive(_item_du(2))
        scheduler._make_runnable_head()
        assert scheduler.stats.deferred_units == 2

    def test_next_outage_counts_afresh(self):
        engine, manager = build_bookstore()
        scheduler = DynoScheduler(manager)
        manager.umq.receive(_catalog_du(1))
        manager.umq.receive(_item_du(1))
        scheduler._quarantine("library", engine.clock.now + 1.0)
        scheduler._make_runnable_head()
        assert scheduler.stats.deferred_units == 1

        engine.advance_to(engine.clock.now + 2.0)
        scheduler._lift_due_quarantines()
        assert not scheduler._quarantined

        scheduler._quarantine("library", engine.clock.now + 50.0)
        scheduler._make_runnable_head()
        assert scheduler.stats.deferred_units == 2


class TestDeferredRefreshCadence:
    def test_deadlines_anchor_to_the_cadence_not_to_lateness(self):
        """DUs arriving at t=12 are processed late (the t=5 and t=10
        deadlines passed while the queue was empty); the next deadline
        must still be the cadence point 15, not now+interval=17."""
        testbed = build_testbed(PESSIMISTIC, tuples_per_relation=40, seed=3)
        testbed.scheduler.detach()
        testbed.scheduler = DynoScheduler(
            testbed.manager, PESSIMISTIC, defer_du_interval=5.0
        )
        testbed.engine.schedule_workload(
            testbed.random_du_workload(2, 12.0, 0.4, seed=4)
        )
        testbed.engine.schedule_workload(
            testbed.random_du_workload(2, 16.0, 0.2, seed=5)
        )

        refresh_times = []
        original_apply = testbed.manager.mv.apply

        def recording_apply(delta):
            refresh_times.append(testbed.engine.clock.now)
            original_apply(delta)

        testbed.manager.mv.apply = recording_apply
        testbed.run()

        # Catch-up processing at ~12, then the anchored deadline at 15;
        # with the drifting bug the second refresh lands at ~17 instead.
        assert any(15.0 <= at < 16.0 for at in refresh_times)
        assert not any(16.5 <= at < 19.5 for at in refresh_times)
