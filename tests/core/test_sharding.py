"""Unit tests for view placement, the footprint router, and the
sharded-warehouse coordinator."""

import pytest

from repro.core.sharding import ShardedWarehouse, ShardRouter, assign_views
from repro.core.strategies import PESSIMISTIC
from repro.experiments.testbed import (
    build_sharded_testbed,
    subview_query,
)
from repro.sim.metrics import Metrics
from repro.sources.messages import DataUpdate, RenameRelation, UpdateMessage
from repro.views.definition import ViewDefinition


def _views(*spans):
    return [
        ViewDefinition(f"V{index + 1}", subview_query(first, last))
        for index, (first, last) in enumerate(spans)
    ]


def _du(source, relation, seqno=1, at=1.0):
    # The router only inspects source + touched_relations(); the delta
    # payload itself is never dereferenced on the routing path.
    return UpdateMessage(source, seqno, at, DataUpdate(relation, None))


def _rename(source, old, new, seqno=1, at=1.0):
    return UpdateMessage(source, seqno, at, RenameRelation(old, new))


class TestAssignViews:
    def test_every_view_placed_exactly_once(self):
        views = _views((0, 2), (1, 3), (3, 5), (4, 6))
        buckets = assign_views(views, 3)
        placed = [view.name for bucket in buckets for view in bucket]
        assert sorted(placed) == sorted(view.name for view in views)

    def test_effective_shards_capped_by_view_count(self):
        views = _views((0, 2), (2, 4))
        buckets = assign_views(views, 8)
        assert len(buckets) == 2
        assert all(bucket for bucket in buckets)

    def test_deterministic(self):
        views = _views((0, 2), (1, 3), (3, 5), (4, 6))
        first = assign_views(views, 2)
        second = assign_views(list(views), 2)
        assert [[v.name for v in b] for b in first] == [
            [v.name for v in b] for b in second
        ]

    def test_lpt_balances_relation_weight(self):
        # One heavy 4-relation view and three light 2-relation views on
        # two shards: LPT keeps the heavy view alone against two lights.
        views = _views((0, 4), (4, 6), (0, 2), (2, 4))
        buckets = assign_views(views, 2)
        loads = sorted(
            sum(len(view.query.relations) for view in bucket)
            for bucket in buckets
        )
        assert loads == [4, 6]

    def test_caller_order_preserved_within_bucket(self):
        views = _views((0, 2), (1, 3), (3, 5), (4, 6))
        order = {view.name: index for index, view in enumerate(views)}
        for bucket in assign_views(views, 2):
            indices = [order[view.name] for view in bucket]
            assert indices == sorted(indices)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            assign_views(_views((0, 2)), 0)
        with pytest.raises(ValueError):
            assign_views([], 2)


class TestShardRouter:
    def _router(self):
        router = ShardRouter()
        views = _views((0, 2), (3, 5))
        router.register_view(0, views[0])  # R1, R2
        router.register_view(1, views[1])  # R4, R5
        return router

    def test_footprint_covers_view_relations(self):
        router = self._router()
        assert ("src1", "R1") in router.footprint(0)
        assert ("src1", "R2") in router.footprint(0)
        assert ("src2", "R4") in router.footprint(1)

    def test_accepts_only_in_footprint(self):
        router = self._router()
        message = _du("src1", "R1")
        assert router.accepts(0, message)
        assert not router.accepts(1, message)
        assert not router.accepts(0, _du("src1", "R3"))
        assert not router.accepts(7, message)  # unregistered shard

    def test_source_distinguishes_identical_relation_names(self):
        router = ShardRouter()
        router.register_relation(0, "srcA", "R")
        assert router.accepts(0, _du("srcA", "R"))
        assert not router.accepts(0, _du("srcB", "R"))

    def test_rename_grows_footprint_monotonically(self):
        router = self._router()
        assert not router.accepts(0, _du("src1", "R1x"))
        assert router.accepts(0, _rename("src1", "R1", "R1x"))
        assert ("src1", "R1x") in router.footprint(0)
        assert router.accepts(0, _du("src1", "R1x", seqno=2, at=2.0))
        # Chains keep following.
        assert router.accepts(0, _rename("src1", "R1x", "R1y", seqno=3))
        assert router.accepts(0, _du("src1", "R1y", seqno=4, at=3.0))

    def test_rejected_rename_leaves_footprint_untouched(self):
        router = self._router()
        assert not router.accepts(1, _rename("src1", "R1", "R1x"))
        assert ("src1", "R1x") not in router.footprint(1)

    def test_shards_for_lists_every_covering_shard(self):
        router = self._router()
        router.register_relation(1, "src1", "R1")
        assert router.shards_for(_du("src1", "R1")) == (0, 1)
        assert router.shards_for(_du("src3", "R9")) == ()

    def test_delivery_filter_counts_into_metrics(self):
        router = self._router()
        metrics = Metrics()
        accept = router.delivery_filter(0, metrics)
        assert accept(_du("src1", "R1"))
        assert not accept(_du("src1", "R3", seqno=2))
        assert metrics.router_delivered == 1
        assert metrics.router_dropped == 1


class TestShardedWarehouse:
    def test_rejects_duplicate_view_registration(self):
        testbed = build_sharded_testbed(
            PESSIMISTIC, shards=2, tuples_per_relation=20
        )
        shards = testbed.warehouse.shards
        clone = shards[1]
        clone.view_names = shards[0].view_names
        with pytest.raises(ValueError):
            ShardedWarehouse([shards[0], clone], testbed.warehouse.router)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedWarehouse([], ShardRouter())

    def test_run_reaches_quiescence_and_matches_oracle(self):
        def run(shards):
            testbed = build_sharded_testbed(
                PESSIMISTIC, shards=shards, tuples_per_relation=40
            )
            testbed.schedule_du_workload(24, start=0.05, interval=0.05)
            testbed.run()
            assert testbed.check_consistency()
            return testbed

        oracle = run(1)
        sharded = run(2)
        assert sharded.extent_rows() == oracle.extent_rows()
        assert sharded.committed_updates() == oracle.committed_updates()

    def test_aggregate_makespan_is_slowest_shard(self):
        testbed = build_sharded_testbed(
            PESSIMISTIC, shards=2, tuples_per_relation=40
        )
        testbed.schedule_du_workload(16, start=0.05, interval=0.05)
        testbed.run()
        warehouse = testbed.warehouse
        assert warehouse.aggregate_makespan() == max(
            shard.engine.metrics.elapsed for shard in warehouse.shards
        )
        merged = warehouse.aggregate_metrics()
        assert merged.makespan == warehouse.aggregate_makespan()
        assert merged.router_delivered == sum(
            shard.engine.metrics.router_delivered
            for shard in warehouse.shards
        )

    def test_sc_barrier_defers_and_still_converges(self):
        def run(shards):
            testbed = build_sharded_testbed(
                PESSIMISTIC, shards=shards, tuples_per_relation=40
            )
            testbed.schedule_du_workload(20, start=0.05, interval=0.05)
            testbed.schedule_sc_workload(2, start=0.8, interval=8.0)
            testbed.run()
            assert testbed.check_consistency()
            return testbed

        oracle = run(1)
        sharded = run(4)
        assert sharded.extent_rows() == oracle.extent_rows()
        assert sharded.committed_updates() == oracle.committed_updates()
        # With several shards an SC-bearing head waits for peers at
        # least once in this workload.
        assert sharded.metrics.barrier_deferrals > 0

    def test_router_drops_out_of_footprint_messages_only_when_sharded(self):
        testbed = build_sharded_testbed(
            PESSIMISTIC, shards=4, tuples_per_relation=40
        )
        testbed.schedule_du_workload(24, start=0.05, interval=0.05)
        testbed.run()
        metrics = testbed.metrics
        assert metrics.router_dropped > 0
        oracle = build_sharded_testbed(
            PESSIMISTIC, shards=1, tuples_per_relation=40
        )
        oracle.schedule_du_workload(24, start=0.05, interval=0.05)
        oracle.run()
        assert oracle.metrics.router_dropped == 0
