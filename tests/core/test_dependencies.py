"""Concurrent and semantic dependencies (Section 3), incl. Figure 4."""

from repro.core.dependencies import (
    Dependency,
    DependencyKind,
    find_dependencies,
    footprint_of_query,
    footprint_of_update,
)
from repro.relational.schema import RelationSchema
from repro.sources.messages import (
    DataUpdate,
    DropAttribute,
    DropRelation,
    RenameRelation,
    RestructureRelations,
    UpdateMessage,
)
from tests.conftest import (
    CATALOG_SCHEMA,
    ITEM_SCHEMA,
    STOREITEMS_SCHEMA,
    bookinfo_query,
)

QUERY = bookinfo_query()


def message(source, seqno, payload) -> UpdateMessage:
    return UpdateMessage(source, seqno, float(seqno), payload)


class TestFootprints:
    def test_query_footprint_covers_relations_and_attrs(self):
        footprint = footprint_of_query(QUERY)
        assert ("retailer", "Store") in footprint.relations
        assert ("library", "Catalog", "Review") in footprint.attributes
        assert ("retailer", "Item", "SID") in footprint.attributes

    def test_excluded_alias_removed(self):
        footprint = footprint_of_query(QUERY, frozenset({"C"}))
        assert ("library", "Catalog") not in footprint.relations
        assert all(rel != "Catalog" for _s, rel, _a in footprint.attributes)

    def test_dangling_alias_reference_is_skipped(self):
        """A rewrite pipeline can hand ``footprint_of_query`` a query
        whose predicate references an alias no longer in the FROM list
        (SPJQuery's constructor validation is bypassed here to pin the
        contract); the footprint must skip the dangling reference
        instead of raising a bare KeyError."""
        from repro.relational.predicate import Comparison, attr
        from repro.relational.query import SPJQuery

        dangling = SPJQuery.__new__(SPJQuery)
        object.__setattr__(dangling, "relations", QUERY.relations)
        object.__setattr__(dangling, "projection", QUERY.projection)
        object.__setattr__(dangling, "joins", QUERY.joins)
        object.__setattr__(
            dangling, "selection", Comparison(attr("Z", "Ghost"), "=", 1)
        )
        footprint = footprint_of_query(dangling)
        assert ("retailer", "Store") in footprint.relations
        assert all(
            attribute != "Ghost"
            for _s, _r, attribute in footprint.attributes
        )

    def test_du_footprint_excludes_own_relation(self):
        du = message(
            "library", 1, DataUpdate.insert(CATALOG_SCHEMA, [])
        )
        footprint = footprint_of_update(du, QUERY)
        assert ("library", "Catalog") not in footprint.relations
        assert ("retailer", "Item") in footprint.relations

    def test_sc_footprint_covers_whole_view(self):
        sc = message("library", 1, DropAttribute("Catalog", "Review"))
        footprint = footprint_of_update(sc, QUERY)
        assert ("library", "Catalog") in footprint.relations

    def test_sc_footprint_includes_speculative_rewrite(self):
        sc = message("retailer", 1, DropRelation("Store"))

        def rewritten(_message):
            return QUERY.with_relation_renamed("library", "Catalog", "Cat2")

        footprint = footprint_of_update(sc, QUERY, rewritten)
        assert ("library", "Cat2") in footprint.relations
        assert ("library", "Catalog") in footprint.relations  # old too

    def test_conflict_tests(self):
        footprint = footprint_of_query(QUERY)
        assert footprint.conflicted_by(
            "retailer", RenameRelation("Store", "S2")
        )
        assert not footprint.conflicted_by(
            "retailer", RenameRelation("Other", "O2")
        )
        assert footprint.conflicted_by(
            "library", DropAttribute("Catalog", "Review")
        )
        assert not footprint.conflicted_by(
            "library", DropAttribute("Catalog", "Year")
        )
        assert footprint.conflicted_by(
            "retailer",
            RestructureRelations(
                dropped=("Store",), new_schema=STOREITEMS_SCHEMA
            ),
        )


class TestSemanticDependencies:
    def test_same_relation_chain(self):
        first = message("retailer", 1, DataUpdate.insert(ITEM_SCHEMA, []))
        second = message("retailer", 2, DataUpdate.insert(ITEM_SCHEMA, []))
        third = message("retailer", 3, DataUpdate.insert(ITEM_SCHEMA, []))
        deps = find_dependencies([first, second, third], QUERY)
        semantic = [d for d in deps if d.kind is DependencyKind.SEMANTIC]
        assert Dependency(0, 1, DependencyKind.SEMANTIC) in semantic
        assert Dependency(1, 2, DependencyKind.SEMANTIC) in semantic
        # adjacency only: no direct 0 -> 2 edge (transitivity suffices)
        assert Dependency(0, 2, DependencyKind.SEMANTIC) not in semantic

    def test_different_relations_no_edge(self):
        item = message("retailer", 1, DataUpdate.insert(ITEM_SCHEMA, []))
        catalog = message("library", 2, DataUpdate.insert(CATALOG_SCHEMA, []))
        deps = find_dependencies([item, catalog], QUERY)
        assert not [d for d in deps if d.kind is DependencyKind.SEMANTIC]

    def test_rename_bridges_buckets(self):
        du_old = message("retailer", 1, DataUpdate.insert(ITEM_SCHEMA, []))
        rename = message("retailer", 2, RenameRelation("Item", "Item2"))
        renamed_schema = ITEM_SCHEMA.renamed("Item2")
        du_new = message(
            "retailer", 3, DataUpdate.insert(renamed_schema, [])
        )
        deps = find_dependencies([du_old, rename, du_new], QUERY)
        semantic = [d for d in deps if d.kind is DependencyKind.SEMANTIC]
        assert Dependency(0, 1, DependencyKind.SEMANTIC) in semantic
        assert Dependency(1, 2, DependencyKind.SEMANTIC) in semantic


class TestConcurrentDependencies:
    def test_view_conflicting_sc_points_at_other_updates(self):
        du = message("library", 1, DataUpdate.insert(CATALOG_SCHEMA, []))
        sc = message("retailer", 2, DropRelation("Store"))
        deps = find_dependencies([du, sc], QUERY)
        concurrent = [d for d in deps if d.kind is DependencyKind.CONCURRENT]
        # SC (index 1) must precede the DU (index 0): an unsafe edge.
        assert Dependency(1, 0, DependencyKind.CONCURRENT) in concurrent
        assert any(d.is_unsafe() for d in concurrent)

    def test_sc_on_du_own_relation_no_edge(self):
        """Figure 4: SC2 (drop on Catalog) has no CD to DU1 (on Catalog)
        because DU1's maintenance never probes its own relation."""
        du = message("library", 1, DataUpdate.insert(CATALOG_SCHEMA, []))
        sc = message("library", 2, DropAttribute("Catalog", "Review"))
        deps = find_dependencies([du, sc], QUERY)
        concurrent = [d for d in deps if d.kind is DependencyKind.CONCURRENT]
        assert concurrent == []
        # but the semantic edge keeps their commit order
        semantic = [d for d in deps if d.kind is DependencyKind.SEMANTIC]
        assert Dependency(0, 1, DependencyKind.SEMANTIC) in semantic

    def test_figure_4_graph(self):
        """DU1 (insert Catalog), SC1 (restructure Store+Item), SC2 (drop
        Catalog.Review): the three-node cycle of Figure 4."""
        du1 = message("library", 1, DataUpdate.insert(CATALOG_SCHEMA, []))
        sc1 = message(
            "retailer",
            2,
            RestructureRelations(
                dropped=("Store", "Item"), new_schema=STOREITEMS_SCHEMA
            ),
        )
        sc2 = message("library", 3, DropAttribute("Catalog", "Review"))
        deps = find_dependencies([du1, sc1, sc2], QUERY)
        kinds = {(d.before_index, d.after_index, d.kind) for d in deps}
        # SC1 -> DU1 (CD: Store/Item are in DU1's probe footprint)
        assert (1, 0, DependencyKind.CONCURRENT) in kinds
        # DU1 -> SC2 (SD: same source relation, commit order)
        assert (0, 2, DependencyKind.SEMANTIC) in kinds
        # SC1 <-> SC2 (mutual CDs: both conflict with the view query)
        assert (1, 2, DependencyKind.CONCURRENT) in kinds
        assert (2, 1, DependencyKind.CONCURRENT) in kinds

    def test_du_only_queue_has_no_concurrent_edges(self):
        messages = [
            message("retailer", i, DataUpdate.insert(ITEM_SCHEMA, []))
            for i in range(1, 6)
        ]
        deps = find_dependencies(messages, QUERY)
        assert all(d.kind is DependencyKind.SEMANTIC for d in deps)
        assert all(not d.is_unsafe() for d in deps)

    def test_non_conflicting_sc_no_edges(self):
        du = message("retailer", 1, DataUpdate.insert(ITEM_SCHEMA, []))
        sc = message("library", 2, DropAttribute("Catalog", "Year"))
        deps = find_dependencies([du, sc], QUERY)
        assert not [d for d in deps if d.kind is DependencyKind.CONCURRENT]

    def test_edges_deduplicated(self):
        du = message("library", 1, DataUpdate.insert(CATALOG_SCHEMA, []))
        sc = message("retailer", 2, DropRelation("Store"))
        deps = find_dependencies([du, sc], QUERY)
        keys = [(d.before_index, d.after_index, d.kind) for d in deps]
        assert len(keys) == len(set(keys))


class TestSafety:
    def test_unsafe_orientation(self):
        assert Dependency(2, 0, DependencyKind.CONCURRENT).is_unsafe()
        assert not Dependency(0, 2, DependencyKind.CONCURRENT).is_unsafe()
