"""Crash-anywhere equivalence: the headline recovery property.

For every registered crash point, under both correcting strategies, with
the snapshot cache and voluntary batching on and off, and with worker
counts 1..8: kill the warehouse at the Nth visit of the point, recover
from checkpoint + journal, run to quiescence — and the final view
extents plus the set of committed (source, seqno) updates must be
**identical** to the same configuration run without any crash.

A crash point the configuration never reaches fires nothing, so the
"crashed" run trivially equals the oracle — the sweep additionally
asserts every *reachable* point actually fired at least once somewhere,
so the property is not vacuous.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import OPTIMISTIC, PESSIMISTIC
from repro.experiments.testbed import build_testbed, build_multiview_testbed
from repro.maintenance.grouping import BatchPolicy
from repro.recovery import (
    CRASH_POINTS,
    CrashPlan,
    SchedulerCrash,
    simulate_crash,
)

SERIAL_POINTS = tuple(
    p for p in CRASH_POINTS if not p.startswith("parallel.")
)
PARALLEL_ONLY = tuple(p for p in CRASH_POINTS if p.startswith("parallel."))


def run_config(
    strategy,
    crash_plan=None,
    *,
    workers=None,
    cache=False,
    batch=False,
    checkpoint_every=2,
    schema_changes=False,
):
    testbed = build_testbed(
        strategy,
        tuples_per_relation=20,
        snapshot_cache=cache,
        parallel_workers=workers,
        batch_policy=BatchPolicy(max_batch_size=3) if batch else None,
        journal=True,
        checkpoint_every=checkpoint_every,
        crash_plan=crash_plan,
    )
    testbed.engine.schedule_workload(
        testbed.random_du_workload(8, start=0.0, interval=0.01, seed=1)
    )
    if schema_changes:
        testbed.engine.schedule_workload(
            testbed.schema_change_workload(
                3, start=0.02, interval=0.03, seed=5
            )
        )
    testbed.run()
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    return extent, testbed.committed_updates(), testbed


def test_crash_anywhere_serial_all_points_both_strategies():
    for strategy in (PESSIMISTIC, OPTIMISTIC):
        oracle_extent, oracle_committed, _ = run_config(strategy)
        fired_points = set()
        for point, hit in itertools.product(SERIAL_POINTS, (1, 2)):
            extent, committed, testbed = run_config(
                strategy, CrashPlan(point, hit)
            )
            injector = testbed.engine.crash_injector
            if injector.fired is not None:
                fired_points.add(injector.fired.point)
            assert extent == oracle_extent, (strategy.name, point, hit)
            assert committed == oracle_committed, (strategy.name, point, hit)
        # recover.replay only fires inside recover(); everything else
        # that is serially reachable must have actually crashed a run.
        reachable = set(SERIAL_POINTS) - {"recover.replay"}
        assert reachable <= fired_points


def test_crash_anywhere_parallel_points_with_cache_and_batching():
    for strategy, workers, cache, batch in itertools.product(
        (PESSIMISTIC, OPTIMISTIC), (2, 4), (False, True), (False, True)
    ):
        oracle_extent, oracle_committed, _ = run_config(
            strategy, workers=workers, cache=cache, batch=batch
        )
        fired_points = set()
        for point in PARALLEL_ONLY + ("install.post_journal",):
            extent, committed, testbed = run_config(
                strategy,
                CrashPlan(point, 1),
                workers=workers,
                cache=cache,
                batch=batch,
            )
            injector = testbed.engine.crash_injector
            if injector.fired is not None:
                fired_points.add(injector.fired.point)
            key = (strategy.name, workers, cache, batch, point)
            assert extent == oracle_extent, key
            assert committed == oracle_committed, key
        assert set(PARALLEL_ONLY) <= fired_points


def test_crash_anywhere_with_schema_changes():
    for strategy in (PESSIMISTIC, OPTIMISTIC):
        for workers in (None, 3):
            oracle_extent, oracle_committed, _ = run_config(
                strategy, workers=workers, schema_changes=True
            )
            for point in (
                "serial.pre_commit",
                "install.post_journal",
                "install.post_apply",
                "checkpoint.mid",
            ):
                for hit in (1, 2):
                    extent, committed, _ = run_config(
                        strategy,
                        CrashPlan(point, hit),
                        workers=workers,
                        schema_changes=True,
                    )
                    key = (strategy.name, workers, point, hit)
                    assert extent == oracle_extent, key
                    assert committed == oracle_committed, key


@given(
    workers=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    strategy=st.sampled_from([PESSIMISTIC, OPTIMISTIC]),
)
@settings(max_examples=20, deadline=None)
def test_crash_anywhere_random_plans_workers_1_to_8(
    workers, seed, strategy
):
    oracle_extent, oracle_committed, _ = run_config(
        strategy, workers=workers
    )
    extent, committed, _ = run_config(
        strategy, CrashPlan.random(seed), workers=workers
    )
    assert extent == oracle_extent
    assert committed == oracle_committed


def test_crash_during_replay_recovers():
    """A crash injected *during recovery* is survived by retrying
    recovery from the same durable state (idempotent replay)."""
    oracle_extent, oracle_committed, _ = run_config(
        PESSIMISTIC, checkpoint_every=100
    )
    testbed = build_testbed(
        PESSIMISTIC,
        tuples_per_relation=20,
        journal=True,
        checkpoint_every=100,
        crash_plan=CrashPlan("serial.pre_detect", 5),
    )
    testbed.engine.schedule_workload(
        testbed.random_du_workload(8, start=0.0, interval=0.01, seed=1)
    )
    try:
        testbed.scheduler.run()
        raise AssertionError("expected the planned crash")
    except SchedulerCrash:
        pass
    # Re-arm so the recovery attempt itself dies mid-replay, then run
    # the same loop run_recovering uses.
    testbed.engine.crash_injector.arm(CrashPlan("recover.replay", 2))
    attempts = 0
    while True:
        simulate_crash(testbed.engine)
        try:
            recovered = testbed.recovery.recover()
            break
        except SchedulerCrash:
            attempts += 1
    testbed.manager = recovered.manager
    testbed.scheduler = recovered.scheduler
    testbed.recovery = recovered.harness
    testbed.run()
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    assert attempts >= 1, "replay crash never fired"
    assert extent == oracle_extent
    assert testbed.committed_updates() == oracle_committed


def test_crash_recovery_multiview():
    def run_multi(crash_plan=None):
        testbed = build_multiview_testbed(
            PESSIMISTIC,
            tuples_per_relation=20,
            journal=True,
            checkpoint_every=2,
            crash_plan=crash_plan,
        )
        testbed.engine.schedule_workload(
            testbed.random_du_workload(8, start=0.0, interval=0.01, seed=1)
        )
        testbed.run()
        extents = {
            manager.view.name: tuple(
                sorted(map(tuple, manager.mv.extent.rows()))
            )
            for manager in testbed.manager.managers
        }
        return extents, testbed.committed_updates(), testbed

    oracle_extents, oracle_committed, _ = run_multi()
    for point in (
        "serial.pre_detect",
        "install.pre_journal",
        "install.post_journal",
        "install.post_apply",
        "checkpoint.mid",
        "serial.post_commit",
    ):
        extents, committed, testbed = run_multi(CrashPlan(point, 1))
        assert extents == oracle_extents, point
        assert committed == oracle_committed, point
        if testbed.engine.crash_injector.fired is not None:
            assert testbed.crash_reports


def test_file_backed_journal_and_checkpoint(tmp_path):
    oracle_extent, oracle_committed, _ = run_config(PESSIMISTIC)
    testbed = build_testbed(
        PESSIMISTIC,
        tuples_per_relation=20,
        journal=True,
        checkpoint_every=2,
        crash_plan=CrashPlan("serial.pre_commit", 2),
        journal_dir=tmp_path,
    )
    testbed.engine.schedule_workload(
        testbed.random_du_workload(8, start=0.0, interval=0.01, seed=1)
    )
    testbed.run()
    extent = tuple(sorted(map(tuple, testbed.manager.mv.extent.rows())))
    assert extent == oracle_extent
    assert testbed.committed_updates() == oracle_committed
    assert (tmp_path / "journal.jsonl").exists()
    assert (tmp_path / "checkpoint.json").exists()
    assert testbed.metrics.recoveries == 1


def test_journal_on_no_crash_run_is_bit_identical_to_journal_off():
    """Arming the journal must not perturb maintenance at all: the
    journal-on no-crash run *is* the oracle the equivalence tests use,
    so it has to match the plain run exactly (extent, committed set,
    and virtual finish time)."""
    plain = build_testbed(PESSIMISTIC, tuples_per_relation=20)
    plain.engine.schedule_workload(
        plain.random_du_workload(8, start=0.0, interval=0.01, seed=1)
    )
    plain.run()
    journaled = build_testbed(
        PESSIMISTIC, tuples_per_relation=20, journal=True
    )
    journaled.engine.schedule_workload(
        journaled.random_du_workload(8, start=0.0, interval=0.01, seed=1)
    )
    journaled.run()
    assert tuple(sorted(map(tuple, plain.manager.mv.extent.rows()))) == (
        tuple(sorted(map(tuple, journaled.manager.mv.extent.rows())))
    )
    assert frozenset(plain.scheduler.stats.processed_messages) == (
        journaled.committed_updates()
    )
    assert plain.engine.clock.now == journaled.engine.clock.now
    assert journaled.metrics.journal_entries > 0
