"""Unit tests for the recovery substrate: codecs, sinks, stores,
journal bookkeeping, checkpoint truncation, and crash plans."""

from __future__ import annotations

import json

import pytest

from repro.core.strategies import PESSIMISTIC
from repro.experiments.testbed import build_testbed
from repro.recovery import (
    CRASH_POINTS,
    CrashInjector,
    CrashPlan,
    FileCheckpointStore,
    FileJournalSink,
    MemoryCheckpointStore,
    MemoryJournalSink,
    RecoveryError,
    SchedulerCrash,
)
from repro.recovery.codec import (
    decode_refs,
    definition_from_json,
    definition_to_json,
    delta_from_json,
    delta_to_json,
    schema_from_json,
    schema_to_json,
    table_from_json,
    table_to_json,
)
from repro.relational.delta import Delta
from repro.relational.schema import RelationSchema
from repro.relational.table import Table
from repro.relational.types import AttributeType

SCHEMA = RelationSchema.of(
    "R", [("K", AttributeType.INT), ("Name", AttributeType.STRING)]
)


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------


def test_schema_roundtrip():
    assert schema_from_json(schema_to_json(SCHEMA)) == SCHEMA


def test_table_roundtrip_preserves_bag_counts():
    table = Table(SCHEMA)
    table.insert((1, "a"))
    table.insert((1, "a"))
    table.insert((2, "o'hara"))
    data = json.loads(json.dumps(table_to_json(table)))
    back = table_from_json(data)
    assert sorted(back.items()) == sorted(table.items())
    assert back.schema == SCHEMA


def test_delta_roundtrip_preserves_signed_counts():
    delta = Delta(SCHEMA)
    delta.add((1, "a"), 2)
    delta.add((2, "b"), -1)
    back = delta_from_json(json.loads(json.dumps(delta_to_json(delta))))
    assert sorted(back.items()) == sorted(delta.items())


def test_definition_roundtrip_through_sourced_sql():
    testbed = build_testbed(PESSIMISTIC, tuples_per_relation=3)
    definition = testbed.manager.view
    back = definition_from_json(
        json.loads(json.dumps(definition_to_json(definition)))
    )
    assert back.name == definition.name
    assert back.version == definition.version
    assert back.query == definition.query


def test_decode_refs():
    assert decode_refs([["a", 1], ["b", 2]]) == [("a", 1), ("b", 2)]


# ----------------------------------------------------------------------
# sinks and stores
# ----------------------------------------------------------------------


def test_memory_sink_append_entries_truncate():
    sink = MemoryJournalSink()
    written = sink.append({"kind": "receive", "seq": 1})
    assert written > 0
    assert sink.entries() == [{"kind": "receive", "seq": 1}]
    sink.truncate()
    assert sink.entries() == []


def test_file_sink_is_jsonl_and_truncates(tmp_path):
    path = tmp_path / "journal.jsonl"
    sink = FileJournalSink(path)
    sink.append({"kind": "install", "seq": 1})
    sink.append({"kind": "skip", "seq": 2})
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["kind"] == "install"
    assert [e["seq"] for e in sink.entries()] == [1, 2]
    sink.truncate()
    assert path.read_text() == ""
    assert sink.entries() == []


def test_checkpoint_stores_roundtrip(tmp_path):
    state = {"journal_seq": 7, "views": [], "umq": []}
    memory = MemoryCheckpointStore()
    assert memory.load() is None
    memory.save(state)
    assert memory.load() == state
    # isolation: mutating a loaded copy must not corrupt the store
    memory.load()["journal_seq"] = 99
    assert memory.load()["journal_seq"] == 7

    file_store = FileCheckpointStore(tmp_path / "ckpt.json")
    assert file_store.load() is None
    file_store.save(state)
    assert file_store.load() == state


# ----------------------------------------------------------------------
# journal bookkeeping via a real run
# ----------------------------------------------------------------------


def run_journaled(checkpoint_every=100):
    testbed = build_testbed(
        PESSIMISTIC,
        tuples_per_relation=10,
        journal=True,
        checkpoint_every=checkpoint_every,
    )
    testbed.engine.schedule_workload(
        testbed.random_du_workload(6, start=0.0, interval=0.01, seed=3)
    )
    testbed.run()
    return testbed


def test_journal_seq_is_monotone_and_gapless():
    testbed = run_journaled()
    seqs = [e["seq"] for e in testbed.recovery.sink.entries()]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
    # genesis checkpoint truncated nothing (taken before any entry), so
    # the retained tail is the full gapless run
    assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))


def test_journal_records_receive_and_install_kinds():
    testbed = run_journaled()
    kinds = {e["kind"] for e in testbed.recovery.sink.entries()}
    assert "receive" in kinds
    assert "install" in kinds


def test_install_entries_carry_monotone_watermark():
    testbed = run_journaled()
    last: dict[str, int] = {}
    for entry in testbed.recovery.sink.entries():
        if entry["kind"] not in ("install", "skip"):
            continue
        for source, mark in entry["watermark"].items():
            assert mark >= last.get(source, 0)
            last[source] = mark


def test_checkpoint_truncates_and_seq_survives():
    testbed = run_journaled(checkpoint_every=2)
    assert testbed.metrics.checkpoints_taken >= 2
    state = testbed.recovery.store.load()
    # everything retained in the sink is strictly newer than the
    # checkpoint's journal_seq (the replay filter invariant)
    for entry in testbed.recovery.sink.entries():
        assert entry["seq"] > state["journal_seq"]
    # and the checkpointed resolved units cover the live bookkeeping
    checkpointed = {
        tuple(ref) for unit in state["installed_units"] for ref in unit
    }
    assert checkpointed <= testbed.recovery.installed_refs()


def test_journal_metrics_accumulate():
    testbed = run_journaled()
    assert testbed.metrics.journal_entries == len(
        testbed.recovery.sink.entries()
    )
    assert testbed.metrics.journal_bytes > 0
    assert testbed.metrics.busy_time["journal"] > 0


def test_recover_without_checkpoint_raises():
    testbed = run_journaled()
    testbed.recovery.store._state = None  # empty the memory store
    with pytest.raises(RecoveryError):
        testbed.recovery.recover()


# ----------------------------------------------------------------------
# crash plans and the injector
# ----------------------------------------------------------------------


def test_crash_plan_validates_point():
    with pytest.raises(ValueError):
        CrashPlan("not.a.point", 1)
    with pytest.raises(ValueError):
        CrashPlan("serial.pre_detect", 0)


def test_crash_plan_random_is_deterministic():
    assert CrashPlan.random(42) == CrashPlan.random(42)
    plans = {CrashPlan.random(seed).point for seed in range(50)}
    assert len(plans) > 3  # spreads over the point set


def test_injector_fires_on_nth_hit_then_disarms():
    injector = CrashInjector(CrashPlan("serial.pre_detect", 3))
    injector.on_point("serial.pre_detect", 0.0)
    injector.on_point("serial.pre_maintain", 0.1)  # other points ignored
    injector.on_point("serial.pre_detect", 0.2)
    with pytest.raises(SchedulerCrash) as exc:
        injector.on_point("serial.pre_detect", 0.3)
    assert exc.value.point == "serial.pre_detect"
    assert exc.value.hit == 3
    assert not injector.armed
    # disarmed: further visits never raise
    injector.on_point("serial.pre_detect", 0.4)
    assert injector.counts["serial.pre_detect"] == 4


def test_injector_rearm_resets_counts():
    injector = CrashInjector(CrashPlan("serial.pre_detect", 1))
    with pytest.raises(SchedulerCrash):
        injector.on_point("serial.pre_detect", 0.0)
    injector.arm(CrashPlan("recover.replay", 1))
    assert injector.armed
    assert injector.fired is None
    assert injector.counts["serial.pre_detect"] == 0
    with pytest.raises(SchedulerCrash):
        injector.on_point("recover.replay", 1.0)


def test_crash_point_registry_is_complete():
    assert len(CRASH_POINTS) == len(set(CRASH_POINTS))
    prefixes = {point.split(".")[0] for point in CRASH_POINTS}
    assert prefixes == {
        "serial",
        "install",
        "parallel",
        "checkpoint",
        "recover",
    }
