"""Shared fixtures: the paper's bookstore scenario and a tiny testbed."""

from __future__ import annotations

import pytest

from repro import (
    AttributeReplacement,
    AttributeType,
    CostModel,
    DataSource,
    JoinCondition,
    MetaKnowledgeBase,
    RelationRef,
    RelationReplacement,
    RelationSchema,
    SPJQuery,
    SimEngine,
    ViewDefinition,
    ViewManager,
    attr,
)

STORE_SCHEMA = RelationSchema.of(
    "Store", [("SID", AttributeType.INT), "Store"]
)
ITEM_SCHEMA = RelationSchema.of(
    "Item",
    [
        ("SID", AttributeType.INT),
        "Book",
        "Author",
        ("Price", AttributeType.FLOAT),
    ],
)
CATALOG_SCHEMA = RelationSchema.of(
    "Catalog", ["Title", "Author", "Category", "Publisher", "Review"]
)
READER_SCHEMA = RelationSchema.of("ReaderDigest", ["Article", "Comments"])
STOREITEMS_SCHEMA = RelationSchema.of(
    "StoreItems",
    ["Store", "Book", "Author", ("Price", AttributeType.FLOAT)],
)


def bookinfo_query() -> SPJQuery:
    """The BookInfo view of Query (1)."""
    return SPJQuery(
        relations=(
            RelationRef("retailer", "Store", "S"),
            RelationRef("retailer", "Item", "I"),
            RelationRef("library", "Catalog", "C"),
        ),
        projection=(
            attr("S", "Store"),
            attr("I", "Book"),
            attr("I", "Author"),
            attr("I", "Price"),
            attr("C", "Publisher"),
            attr("C", "Category"),
            attr("C", "Review"),
        ),
        joins=(
            JoinCondition(attr("S", "SID"), attr("I", "SID")),
            JoinCondition(attr("I", "Book"), attr("C", "Title")),
        ),
    )


def bookstore_mkb() -> MetaKnowledgeBase:
    """Replacement knowledge for the paper's rewritings (Queries 3-5)."""
    mkb = MetaKnowledgeBase()
    mkb.add_relation_replacement(
        RelationReplacement(
            source="retailer",
            covers=("Store", "Item"),
            new_source="retailer",
            new_relation="StoreItems",
            attr_map={
                ("Store", "Store"): "Store",
                ("Item", "Book"): "Book",
                ("Item", "Author"): "Author",
                ("Item", "Price"): "Price",
            },
        )
    )
    mkb.add_attribute_replacement(
        AttributeReplacement(
            source="library",
            relation="Catalog",
            attribute="Review",
            new_source="digest",
            new_relation="ReaderDigest",
            new_attribute="Comments",
            join_on=("Catalog", "Title"),
            join_attribute="Article",
        )
    )
    return mkb


def build_bookstore(
    cost_model: CostModel | None = None,
) -> tuple[SimEngine, ViewManager]:
    """Three sources, the BookInfo view, and the replacement MKB."""
    engine = SimEngine(cost_model or CostModel.paper_default())
    retailer = engine.add_source(DataSource("retailer"))
    library = engine.add_source(DataSource("library"))
    digest = engine.add_source(DataSource("digest"))
    retailer.create_relation(STORE_SCHEMA, [(1, "Amazon"), (2, "BN")])
    retailer.create_relation(
        ITEM_SCHEMA,
        [(1, "Databases", "Gray", 50.0), (2, "Compilers", "Aho", 40.0)],
    )
    library.create_relation(
        CATALOG_SCHEMA,
        [
            ("Databases", "Gray", "CS", "MIT", "good"),
            ("Compilers", "Aho", "CS", "AW", "classic"),
        ],
    )
    digest.create_relation(
        READER_SCHEMA,
        [
            ("Databases", "must read"),
            ("Compilers", "dragon"),
            ("Data Integration Guide", "timely"),
        ],
    )
    manager = ViewManager(
        engine, ViewDefinition("BookInfo", bookinfo_query()), bookstore_mkb()
    )
    return engine, manager


@pytest.fixture
def bookstore() -> tuple[SimEngine, ViewManager]:
    return build_bookstore()


@pytest.fixture
def bookstore_free() -> tuple[SimEngine, ViewManager]:
    """Bookstore with a zero-cost model (pure-logic tests)."""
    return build_bookstore(CostModel.free())
