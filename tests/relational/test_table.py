"""Bag-semantics tables and physical schema evolution."""

import pytest

from repro.relational.delta import Delta
from repro.relational.errors import ArityError, DataError, TypeMismatchError
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.table import Table
from repro.relational.types import AttributeType

R = RelationSchema.of("R", [("k", AttributeType.INT), "v"])


@pytest.fixture
def table() -> Table:
    return Table(R, [(1, "a"), (2, "b")])


class TestDataManipulation:
    def test_insert_validates_types(self, table):
        with pytest.raises(TypeMismatchError):
            table.insert(("not-int", "x"))

    def test_insert_validates_arity(self, table):
        with pytest.raises(ArityError):
            table.insert((1,))

    def test_bag_semantics(self, table):
        table.insert((1, "a"))
        assert table.count((1, "a")) == 2
        assert len(table) == 3
        assert table.distinct_count() == 2

    def test_delete(self, table):
        table.delete((1, "a"))
        assert (1, "a") not in table

    def test_delete_absent_raises(self, table):
        with pytest.raises(DataError):
            table.delete((9, "z"))

    def test_delete_more_than_present_raises(self, table):
        with pytest.raises(DataError):
            table.delete((1, "a"), count=2)

    def test_delete_partial_multiplicity(self, table):
        table.insert((1, "a"), 2)
        table.delete((1, "a"), 2)
        assert table.count((1, "a")) == 1

    def test_nonpositive_counts_rejected(self, table):
        with pytest.raises(DataError):
            table.insert((1, "a"), 0)
        with pytest.raises(DataError):
            table.delete((1, "a"), -1)

    def test_update(self, table):
        table.update((1, "a"), (1, "a2"))
        assert (1, "a2") in table
        assert (1, "a") not in table

    def test_apply_delta(self, table):
        delta = Delta(R)
        delta.add((3, "c"), 2)
        delta.add((1, "a"), -1)
        table.apply_delta(delta)
        assert table.count((3, "c")) == 2
        assert (1, "a") not in table

    def test_apply_delta_arity_mismatch(self, table):
        with pytest.raises(ArityError):
            table.apply_delta(Delta(RelationSchema.of("S", ["x"])))

    def test_clear(self, table):
        table.clear()
        assert len(table) == 0


class TestInspection:
    def test_iteration_with_multiplicity(self, table):
        table.insert((1, "a"))
        assert sorted(table) == [(1, "a"), (1, "a"), (2, "b")]

    def test_as_delta_roundtrip(self, table):
        rebuilt = Table(R)
        rebuilt.apply_delta(table.as_delta())
        assert rebuilt == table

    def test_extent_equality_ignores_names(self, table):
        other = Table(R.renamed("R2"), [(1, "a"), (2, "b")])
        assert table == other

    def test_copy_independent(self, table):
        duplicate = table.copy()
        duplicate.insert((9, "z"))
        assert (9, "z") not in table

    def test_unhashable(self, table):
        with pytest.raises(TypeError):
            hash(table)


class TestPhysicalEvolution:
    def test_rename_attribute_keeps_rows(self, table):
        table.rename_attribute("v", "value")
        assert table.schema.attribute_names == ("k", "value")
        assert (1, "a") in table

    def test_drop_attribute_projects_rows(self, table):
        table.insert((1, "other"))
        table.drop_attribute("v")
        assert table.schema.attribute_names == ("k",)
        # (1,'a') and (1,'other') collapse into (1,) with multiplicity 2
        assert table.count((1,)) == 2
        assert table.count((2,)) == 1

    def test_add_attribute_fills_default(self, table):
        table.add_attribute(Attribute("w", AttributeType.STRING), "dflt")
        assert table.count((1, "a", "dflt")) == 1

    def test_add_attribute_null_default(self, table):
        table.add_attribute(Attribute("w", AttributeType.INT))
        assert table.count((2, "b", None)) == 1

    def test_add_attribute_validates_default(self, table):
        with pytest.raises(TypeMismatchError):
            table.add_attribute(Attribute("w", AttributeType.INT), "x")

    def test_renamed_copy(self, table):
        renamed = table.renamed("R9")
        assert renamed.schema.name == "R9"
        assert renamed == table
