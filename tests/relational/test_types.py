"""Attribute type validation and inference."""

import pytest

from repro.relational.errors import TypeMismatchError
from repro.relational.types import AttributeType


class TestValidate:
    def test_int_accepts_int(self):
        assert AttributeType.INT.validate(42) == 42

    def test_int_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.INT.validate(True)

    def test_int_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.INT.validate(1.5)

    def test_int_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.INT.validate("1")

    def test_float_widens_int(self):
        value = AttributeType.FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_accepts_float(self):
        assert AttributeType.FLOAT.validate(3.5) == 3.5

    def test_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.FLOAT.validate(False)

    def test_string_accepts_str(self):
        assert AttributeType.STRING.validate("abc") == "abc"

    def test_string_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.STRING.validate(1)

    def test_bool_accepts_bool(self):
        assert AttributeType.BOOL.validate(True) is True

    def test_bool_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.BOOL.validate(1)

    @pytest.mark.parametrize("attr_type", list(AttributeType))
    def test_none_is_always_valid(self, attr_type):
        assert attr_type.validate(None) is None


class TestInfer:
    def test_infer_bool_before_int(self):
        assert AttributeType.infer(True) is AttributeType.BOOL

    def test_infer_int(self):
        assert AttributeType.infer(7) is AttributeType.INT

    def test_infer_float(self):
        assert AttributeType.infer(7.5) is AttributeType.FLOAT

    def test_infer_string(self):
        assert AttributeType.infer("x") is AttributeType.STRING

    def test_infer_rejects_none(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.infer(None)

    def test_infer_rejects_list(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.infer([1])


class TestRendering:
    def test_sql_names(self):
        assert AttributeType.INT.sql_name() == "INTEGER"
        assert AttributeType.FLOAT.sql_name() == "REAL"
        assert AttributeType.STRING.sql_name() == "VARCHAR"
        assert AttributeType.BOOL.sql_name() == "BOOLEAN"

    def test_default_is_null(self):
        for attr_type in AttributeType:
            assert attr_type.default() is None
